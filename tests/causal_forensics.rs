//! Causal forensics end-to-end: the trigger lineage recorded during a
//! clique experiment must *account for* the run's own convergence
//! measurements — the longest critical path telescopes exactly to the
//! last routing-table change — and the phase decomposition must explain
//! Figure 2's shape: the BGP-side phases (MRAI batching and path
//! hunting) shrink as the SDN fraction grows.

use bgp_sdn_emu::prelude::*;

fn analyze(exp: &Experiment) -> CausalAnalysis {
    let phase_start = exp.phase_start().as_nanos();
    CausalAnalysis::from_events(
        exp.net
            .sim
            .trace()
            .records()
            .filter(|r| r.time.as_nanos() >= phase_start)
            .map(|r| (r.time.as_nanos(), r.node.map(|n| n.0), &r.event)),
    )
}

#[test]
fn critical_path_matches_last_table_change() {
    let scenario = CliqueScenario {
        n: 8,
        sdn_count: 4,
        mrai: SimDuration::from_secs(5),
        recompute_delay: SimDuration::from_millis(100),
        seed: 1,
        control_loss: 0.0,
    };
    let (out, exp) = run_clique_traced(&scenario, EventKind::Withdrawal);
    assert!(out.converged);
    let analysis = analyze(&exp);
    assert_eq!(analysis.dangling, 0, "lineage must be complete");
    let critical_ns = analysis
        .triggers
        .iter()
        .filter_map(|t| t.convergence_ns())
        .max()
        .expect("withdrawal trigger settles");
    let phase_start = exp.phase_start();
    let settled_ns = [
        Activity::RibChange,
        Activity::FibChange,
        Activity::FlowInstalled,
    ]
    .into_iter()
    .filter_map(|a| exp.net.sim.board().last(a))
    .max()
    .expect("tables changed")
    .saturating_since(phase_start)
    .as_nanos();
    assert_eq!(
        critical_ns, settled_ns,
        "the critical path must telescope exactly to the last table change"
    );
    // And the path's own phase edges sum to its total (telescoping).
    let t = &analysis.triggers[0];
    let longest = &t.paths[0];
    assert!(longest.complete, "walk must reach the trigger root");
    assert_eq!(longest.phases.total(), longest.total_ns);
}

#[test]
fn bgp_phases_shrink_as_centralization_grows() {
    // Three points of the Figure 2 axis: pure BGP, half SDN, full SDN.
    // The curve bends because MRAI batching and path hunting disappear
    // from the critical path as more of the clique is centralized.
    let mut bgp_side = Vec::new();
    for sdn in [0usize, 8, 16] {
        let scenario = CliqueScenario {
            n: 16,
            sdn_count: sdn,
            mrai: SimDuration::from_secs(30),
            recompute_delay: SimDuration::from_millis(100),
            seed: 4242,
            control_loss: 0.0,
        };
        let (out, exp) = run_clique_traced(&scenario, EventKind::Withdrawal);
        assert!(out.converged, "sdn={sdn} must converge");
        let phases = analyze(&exp).phase_totals();
        bgp_side.push(phases.get(CausalPhase::MraiWait) + phases.get(CausalPhase::HuntStep));
    }
    assert!(
        bgp_side[0] >= bgp_side[1] && bgp_side[1] >= bgp_side[2],
        "mrai_wait + hunt_step must shrink with the SDN fraction: {bgp_side:?}"
    );
    assert!(
        bgp_side[0] > bgp_side[2],
        "full centralization must actually remove BGP-side wait time: {bgp_side:?}"
    );
}
