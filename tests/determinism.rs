//! Experiment determinism: the same seed must yield byte-identical
//! artifacts.
//!
//! Campaign jobs run with wall-clock profiling off, so their JSONL
//! artifacts are *raw-byte* reproducible — this is what lets the parallel
//! sweep runner prove itself against serial execution. Profiled runs
//! (`run_clique_traced`) carry host wall times in span events and metric
//! histograms; those canonicalize away with [`canonicalize_jsonl`], and
//! everything the simulation controls must survive identically.

use bgp_sdn_emu::prelude::*;

fn small_grid() -> CampaignGrid {
    CampaignGrid {
        name: "det".to_string(),
        n: 6,
        event: EventKind::Withdrawal,
        cluster_sizes: vec![0, 3],
        clusters: vec![1],
        strategy: "tail",
        loss: vec![0.0],
        ctl_latency: vec![SimDuration::from_millis(1)],
        mrai: SimDuration::from_secs(2),
        recompute_delay: SimDuration::from_millis(100),
        seeds: 1,
        base_seed: 77,
        faults: None,
        verify: false,
    }
}

#[test]
fn same_seed_jobs_produce_byte_identical_artifacts() {
    for job in small_grid().expand() {
        let a = run_job(&job, true);
        let b = run_job(&job, true);
        let (a, b) = (a.artifact.expect("traced"), b.artifact.expect("traced"));
        assert!(!a.is_empty());
        assert_eq!(a, b, "job {} artifact must be byte-stable", job.id);
    }
}

#[test]
fn chaos_fault_jobs_are_equally_deterministic() {
    let mut grid = small_grid();
    grid.faults = Some(FaultSpec {
        outages: 2,
        horizon: SimDuration::from_secs(30),
        classes: FaultClasses::CONTROL_ONLY,
    });
    // Outage schedules derive from the job seed, so reruns replay the
    // exact same fault timeline.
    for job in grid.expand() {
        let a = run_job(&job, true).artifact.expect("traced");
        let b = run_job(&job, true).artifact.expect("traced");
        assert_eq!(a, b, "chaos job {} artifact must be byte-stable", job.id);
    }
}

#[test]
fn mixed_chaos_jobs_are_equally_deterministic() {
    // Router crashes, link flaps and keepalive-loss windows on every cell
    // (the pure-BGP cell included) must replay byte-for-byte: crash wipes,
    // hold expiries, graceful-restart retention and treat-as-withdraw all
    // derive from the job seed alone.
    let mut grid = small_grid();
    grid.faults = Some(FaultSpec {
        outages: 2,
        horizon: SimDuration::from_secs(30),
        classes: FaultClasses::ALL,
    });
    for job in grid.expand() {
        let opts = job.run_options();
        assert!(
            opts.fault_plan.is_some(),
            "job {} (cluster {}) must carry a chaos plan",
            job.id,
            job.cluster
        );
        let a = run_job(&job, true).artifact.expect("traced");
        let b = run_job(&job, true).artifact.expect("traced");
        assert_eq!(
            a, b,
            "mixed-chaos job {} artifact must be byte-stable",
            job.id
        );
    }
}

#[test]
fn profiled_runs_canonicalize_identically() {
    let scenario = CliqueScenario {
        n: 6,
        sdn_count: 3,
        mrai: SimDuration::from_secs(2),
        recompute_delay: SimDuration::from_millis(100),
        seed: 9,
        control_loss: 0.0,
    };
    let (out1, exp1) = run_clique_traced(&scenario, EventKind::Withdrawal);
    let (out2, exp2) = run_clique_traced(&scenario, EventKind::Withdrawal);
    assert!(out1.converged && out2.converged);
    assert_eq!(out1.convergence, out2.convergence, "sim time is exact");

    let a = exp1.net.sim.trace().export_jsonl();
    let b = exp2.net.sim.trace().export_jsonl();
    let (ca, cb) = (canonicalize_jsonl(&a), canonicalize_jsonl(&b));
    assert!(!ca.is_empty());
    assert_eq!(
        ca, cb,
        "profiled traces must agree once wall-clock noise is canonicalized"
    );
}

#[test]
fn queue_backend_swap_is_byte_invisible() {
    use bgp_sdn_emu::core::run_clique_instrumented;
    use bgp_sdn_emu::netsim::QueueBackend;

    let scenario = CliqueScenario {
        n: 6,
        sdn_count: 3,
        mrai: SimDuration::from_secs(2),
        recompute_delay: SimDuration::from_millis(100),
        seed: 9,
        control_loss: 0.0,
    };
    // Same seed, same scenario, opposite queue backends: the calendar
    // queue and the reference heap must produce the identical event order,
    // so the full trace artifact — not just the summary numbers — has to
    // match byte for byte.
    let run = |backend: QueueBackend| {
        let (out, exp) = run_clique_instrumented(&scenario, EventKind::Withdrawal, |sim| {
            sim.set_queue_backend(backend);
            sim.trace_mut().enable_all();
        });
        assert!(out.converged && out.audit_ok);
        assert_eq!(exp.net.sim.queue_backend(), backend);
        (
            out.convergence,
            exp.net.sim.stats().events_processed,
            exp.net.sim.trace().export_jsonl(),
        )
    };
    let (conv_cal, events_cal, trace_cal) = run(QueueBackend::Calendar);
    let (conv_heap, events_heap, trace_heap) = run(QueueBackend::Heap);
    assert_eq!(conv_cal, conv_heap, "convergence time must not move");
    assert_eq!(events_cal, events_heap, "event counts must match");
    assert!(!trace_cal.is_empty());
    assert_eq!(
        trace_cal, trace_heap,
        "trace artifacts must be byte-identical across the queue swap"
    );
}

#[test]
fn campaign_records_are_identical_across_reruns() {
    let grid = small_grid();
    let r1 = run_campaign(&grid, 2, false);
    let r2 = run_campaign(&grid, 1, false);
    assert_eq!(
        r1.records(),
        r2.records(),
        "records must not depend on worker count or rerun"
    );
}

/// The `clusters × strategy` deployment axis obeys the same contract as
/// every other axis: traced job artifacts are raw-byte reproducible and
/// campaign records are independent of the worker count.
#[test]
fn multicluster_campaign_is_equally_deterministic() {
    let mut grid = small_grid();
    grid.name = "det-mc".to_string();
    grid.cluster_sizes = vec![0, 3, 4];
    grid.clusters = vec![1, 2];
    grid.strategy = "degree";

    let jobs = grid.expand();
    assert_eq!(jobs.len(), 6, "3 sizes x 2 cluster counts");
    for job in &jobs {
        let a = run_job(job, true).artifact.expect("traced");
        let b = run_job(job, true).artifact.expect("traced");
        assert!(!a.is_empty());
        assert_eq!(
            a, b,
            "multi-cluster job {} ({}x{}) artifact must be byte-stable",
            job.id, job.clusters, job.strategy
        );
    }

    let r1 = run_campaign(&grid, 2, false);
    let r2 = run_campaign(&grid, 1, false);
    assert_eq!(
        r1.records(),
        r2.records(),
        "multi-cluster records must not depend on worker count or rerun"
    );
}
