//! End-to-end CLI test: `bgpsdn sweep` runs a small campaign on the worker
//! pool, writes a merged campaign artifact, and `bgpsdn report` renders the
//! per-grid-cell table from it.

use std::path::PathBuf;
use std::process::Command;

use bgp_sdn_emu::prelude::*;

fn bgpsdn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bgpsdn"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bgpsdn-sweep-{}-{name}", std::process::id()));
    p
}

#[test]
fn sweep_then_report() {
    let out = tmp("campaign.jsonl");
    let art_dir = tmp("jobs");
    let sweep = bgpsdn()
        .args([
            "sweep",
            "--sizes",
            "0,3",
            "--n",
            "6",
            "--mrai",
            "2",
            "--seeds",
            "2",
            "--workers",
            "2",
        ])
        .arg("--out")
        .arg(&out)
        .arg("--artifacts")
        .arg(&art_dir)
        .output()
        .expect("spawn bgpsdn sweep");
    assert!(
        sweep.status.success(),
        "sweep failed: {}\n{}",
        String::from_utf8_lossy(&sweep.stderr),
        String::from_utf8_lossy(&sweep.stdout)
    );
    let stdout = String::from_utf8_lossy(&sweep.stdout);
    assert!(stdout.contains("2 cells x 2 seeds = 4 jobs"), "{stdout}");
    assert!(stdout.contains("grid cells"), "{stdout}");
    assert!(stdout.contains("0 failed"), "{stdout}");

    // The merged artifact parses as a campaign document: header, one job
    // line per run, one aggregated cell line per grid cell.
    let text = std::fs::read_to_string(&out).expect("artifact written");
    assert!(CampaignArtifact::sniff(&text));
    let campaign = CampaignArtifact::parse(&text).expect("campaign parses");
    assert_eq!(campaign.jobs.len(), 4);
    assert_eq!(campaign.cells.len(), 2);
    assert!(campaign.jobs.iter().all(|j| j.converged && j.audit_ok));

    // Per-job isolated artifacts landed in --artifacts, one per run, and
    // each parses as a plain run artifact.
    let mut per_job: Vec<_> = std::fs::read_dir(&art_dir)
        .expect("artifacts dir")
        .map(|e| e.unwrap().path())
        .collect();
    per_job.sort();
    assert_eq!(per_job.len(), 4);
    let job_text = std::fs::read_to_string(&per_job[0]).unwrap();
    assert!(!CampaignArtifact::sniff(&job_text), "job artifact is a run");
    RunArtifact::parse(&job_text).expect("job artifact parses");

    // `bgpsdn report` routes campaign artifacts to the grid-cell table.
    let report = bgpsdn().arg("report").arg(&out).output().expect("report");
    assert!(
        report.status.success(),
        "report failed: {}",
        String::from_utf8_lossy(&report.stderr)
    );
    let rep = String::from_utf8_lossy(&report.stdout);
    assert!(rep.contains("campaign:"), "{rep}");
    assert!(rep.contains("grid cells (4 jobs)"), "{rep}");
    assert!(rep.contains("== health:"), "{rep}");

    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_dir_all(&art_dir);
}

#[test]
fn sweep_rejects_bad_grids() {
    // No axis at all.
    let none = bgpsdn().arg("sweep").output().expect("spawn");
    assert!(!none.status.success());

    // Cluster size exceeding the clique.
    let too_big = bgpsdn()
        .args(["sweep", "--sizes", "9", "--n", "6"])
        .output()
        .expect("spawn");
    assert!(!too_big.status.success());

    // Zero seeds.
    let zero = bgpsdn()
        .args(["sweep", "--sizes", "2", "--n", "6", "--seeds", "0"])
        .output()
        .expect("spawn");
    assert!(!zero.status.success());
}
