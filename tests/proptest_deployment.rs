//! Property-based tests of cluster deployment strategies.
//!
//! The multi-cluster generalization must be invisible when it is not
//! used: building a network through `with_deployment` with a single
//! tail cluster has to produce the *byte-identical* trace artifact the
//! legacy `with_sdn_members` path produces — same node ids, same event
//! order, same convergence time. And when it *is* used, multi-cluster
//! runs must stay as deterministic as everything else in the framework.

use bgp_sdn_emu::prelude::*;
use proptest::prelude::*;

/// Drive one clique withdrawal experiment with a caller-configured
/// builder, returning the full trace artifact and the convergence time.
fn run_withdrawal(
    n: usize,
    seed: u64,
    configure: impl FnOnce(NetworkBuilder) -> NetworkBuilder,
) -> (String, SimDuration) {
    let deadline = SimDuration::from_secs(3600);
    let ag = AsGraph::all_peer(&gen::clique(n), 65000);
    let timing = TimingConfig::with_mrai(SimDuration::from_secs(2));
    let tp = plan(ag, PolicyMode::AllPermit, timing).expect("address plan");
    let builder = NetworkBuilder::new(tp, seed).with_recompute_delay(SimDuration::from_millis(100));
    let net = configure(builder).build();
    let mut exp = Experiment::new(net);
    exp.net.sim.trace_mut().enable_all();
    let up = exp.start(deadline);
    assert!(up.converged, "bring-up did not converge");
    exp.mark_named("withdrawal");
    exp.withdraw(0, None);
    let report = exp.wait_converged(deadline);
    assert!(report.converged, "withdrawal did not converge");
    exp.finish();
    (exp.net.sim.trace().export_jsonl(), report.duration)
}

proptest! {
    /// A 1-cluster tail deployment resolved through the strategy layer is
    /// byte-for-byte the legacy `with_sdn_members((n - k..n))` network:
    /// identical trace artifact, identical convergence time.
    #[test]
    fn single_tail_cluster_matches_legacy_path_exactly(
        n in 5usize..=7,
        pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let k = 1 + (pick as usize) % n;
        let members: Vec<usize> = (n - k..n).collect();
        let (legacy_trace, legacy_conv) =
            run_withdrawal(n, seed, |b| b.with_sdn_members(members.clone()));
        let (deployed_trace, deployed_conv) = run_withdrawal(n, seed, |b| {
            b.with_deployment(DeploymentStrategy::Tail { clusters: 1, total: k })
        });
        prop_assert_eq!(legacy_conv, deployed_conv);
        prop_assert!(!legacy_trace.is_empty());
        prop_assert_eq!(
            legacy_trace, deployed_trace,
            "1-cluster tail deployment must be byte-identical to the legacy path \
             (n={n}, k={k}, seed={seed})"
        );
    }

    /// Multi-cluster deployments replay byte-for-byte: the same strategy,
    /// topology and seed always build and drive the identical experiment.
    #[test]
    fn multicluster_runs_are_byte_deterministic(
        n in 6usize..=8,
        pick in any::<u64>(),
        which in 0usize..3,
        seed in any::<u64>(),
    ) {
        let clusters = 2usize;
        let total = clusters + (pick as usize) % (n - clusters);
        let strategy = || match which {
            0 => DeploymentStrategy::Tail { clusters, total },
            1 => DeploymentStrategy::HighestDegree { clusters, total },
            _ => DeploymentStrategy::RandomK { clusters, total },
        };
        let (trace_a, conv_a) = run_withdrawal(n, seed, |b| b.with_deployment(strategy()));
        let (trace_b, conv_b) = run_withdrawal(n, seed, |b| b.with_deployment(strategy()));
        prop_assert_eq!(conv_a, conv_b);
        prop_assert!(!trace_a.is_empty());
        prop_assert_eq!(
            trace_a, trace_b,
            "multi-cluster run must be byte-stable (n={n}, total={total}, seed={seed})"
        );
    }
}
