//! End-to-end CLI test: `bgpsdn run --trace-out` must produce a JSONL
//! artifact that `bgpsdn report` parses and analyzes — per-node update
//! counts, recompute latency, and a convergence timeline, all from typed
//! events — and that `bgpsdn explain` turns into causal forensics whose
//! critical path accounts for the run's own convergence time.

use std::path::PathBuf;
use std::process::Command;

use bgp_sdn_emu::prelude::*;

fn bgpsdn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bgpsdn"))
}

fn artifact_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bgpsdn-test-{}-{name}.jsonl", std::process::id()));
    p
}

#[test]
fn run_trace_out_then_report() {
    let path = artifact_path("withdrawal");
    let run = bgpsdn()
        .args([
            "run",
            "--event",
            "withdrawal",
            "--sdn",
            "4",
            "--n",
            "8",
            "--mrai",
            "5",
            "--trace-out",
        ])
        .arg(&path)
        .output()
        .expect("spawn bgpsdn run");
    assert!(
        run.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let run_stdout = String::from_utf8_lossy(&run.stdout);
    assert!(run_stdout.contains("trace artifact:"), "{run_stdout}");

    // The artifact parses with the library API and carries typed events.
    let text = std::fs::read_to_string(&path).expect("artifact written");
    let artifact = RunArtifact::parse(&text).expect("artifact parses");
    assert!(artifact.run.is_some(), "run header line present");
    assert!(!artifact.events.is_empty(), "typed events present");
    assert_eq!(
        artifact.snapshots.len(),
        2,
        "bring-up + withdrawal metric snapshots"
    );
    // Phase markers bracket the event phase.
    assert!(artifact.events.iter().any(|r| matches!(
        &r.event,
        TraceEvent::Phase { name, started: true } if name == "withdrawal"
    )));

    // `bgpsdn report` renders the analysis without string-parsing anything.
    let report = bgpsdn()
        .arg("report")
        .arg(&path)
        .output()
        .expect("spawn report");
    assert!(
        report.status.success(),
        "report failed: {}",
        String::from_utf8_lossy(&report.stderr)
    );
    let out = String::from_utf8_lossy(&report.stdout);
    assert!(out.contains("per-node BGP update counts"), "{out}");
    assert!(out.contains("controller recompute latency"), "{out}");
    assert!(out.contains("convergence timeline"), "{out}");
    assert!(out.contains("phase withdrawal"), "{out}");
    assert!(out.contains("converged in"), "{out}");
    assert!(out.contains("metrics [withdrawal]"), "{out}");

    // `bgpsdn explain` reconstructs the trigger lineage from the same
    // artifact: one withdrawal trigger whose critical path telescopes to
    // the settlement time, decomposed into the phase taxonomy.
    let explain = bgpsdn()
        .arg("explain")
        .arg(&path)
        .output()
        .expect("spawn explain");
    assert!(
        explain.status.success(),
        "explain failed: {}",
        String::from_utf8_lossy(&explain.stderr)
    );
    let out = String::from_utf8_lossy(&explain.stdout);
    assert!(out.contains("== trigger #"), "{out}");
    assert!(out.contains("phase breakdown"), "{out}");
    assert!(out.contains("critical paths"), "{out}");
    assert!(out.contains("hunt_step"), "{out}");

    // --json emits one machine-readable document with the same content,
    // and it is byte-identical across invocations (deterministic).
    let json1 = bgpsdn()
        .arg("explain")
        .arg(&path)
        .arg("--json")
        .output()
        .expect("spawn explain --json");
    assert!(json1.status.success());
    let doc =
        Json::parse(String::from_utf8_lossy(&json1.stdout).trim()).expect("explain --json parses");
    let triggers = doc.get("triggers").and_then(Json::as_arr).unwrap();
    assert_eq!(triggers.len(), 1, "one withdrawal trigger");
    let settled = triggers[0]
        .get("convergence_ns")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(settled > 0);
    let json2 = bgpsdn()
        .arg("explain")
        .arg(&path)
        .arg("--json")
        .output()
        .expect("spawn explain --json again");
    assert_eq!(json1.stdout, json2.stdout, "explain must be deterministic");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn report_degrades_gracefully_on_truncated_tail() {
    // A run artifact whose final line was cut mid-write (crash, full
    // disk) must still report — with a warning — instead of failing.
    let path = artifact_path("truncated");
    let full = bgpsdn()
        .args([
            "run",
            "--event",
            "withdrawal",
            "--sdn",
            "2",
            "--n",
            "6",
            "--mrai",
            "2",
            "--trace-out",
        ])
        .arg(&path)
        .output()
        .expect("spawn bgpsdn run");
    assert!(full.status.success());
    let text = std::fs::read_to_string(&path).unwrap();
    let cut = &text[..text.trim_end().len() - 10];
    std::fs::write(&path, cut).unwrap();

    let report = bgpsdn()
        .arg("report")
        .arg(&path)
        .output()
        .expect("spawn report");
    assert!(
        report.status.success(),
        "truncated tail must degrade gracefully: {}",
        String::from_utf8_lossy(&report.stderr)
    );
    let err = String::from_utf8_lossy(&report.stderr);
    assert!(err.contains("warning:"), "{err}");
    assert!(err.contains("final line"), "{err}");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn report_warns_on_traceless_artifact() {
    // A bare run header with no trace events (tracing was off) renders a
    // warning, not a panic or a garbled table.
    let path = artifact_path("traceless");
    std::fs::write(&path, "{\"type\":\"run\",\"n\":4}\n").unwrap();
    let report = bgpsdn()
        .arg("report")
        .arg(&path)
        .output()
        .expect("spawn report");
    assert!(
        report.status.success(),
        "traceless artifact must still report: {}",
        String::from_utf8_lossy(&report.stderr)
    );
    let err = String::from_utf8_lossy(&report.stderr);
    assert!(err.contains("no trace events"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn explain_rejects_campaign_artifacts_with_pointer() {
    let path = artifact_path("campaign-explain");
    std::fs::write(&path, "{\"type\":\"campaign\",\"name\":\"x\"}\n").unwrap();
    let explain = bgpsdn()
        .arg("explain")
        .arg(&path)
        .output()
        .expect("spawn explain");
    assert!(!explain.status.success(), "campaign artifacts are not runs");
    let err = String::from_utf8_lossy(&explain.stderr);
    assert!(err.contains("bgpsdn report"), "points at report: {err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn report_rejects_malformed_artifacts() {
    let path = artifact_path("garbage");
    std::fs::write(&path, "this is not json\n").unwrap();
    let report = bgpsdn()
        .arg("report")
        .arg(&path)
        .output()
        .expect("spawn report");
    assert!(!report.status.success(), "malformed artifact must fail");
    let _ = std::fs::remove_file(&path);

    let missing = bgpsdn()
        .args(["report", "/nonexistent/nowhere.jsonl"])
        .output()
        .expect("spawn report");
    assert!(!missing.status.success(), "missing file must fail");
}
