//! End-to-end CLI test: `bgpsdn run --trace-out` must produce a JSONL
//! artifact that `bgpsdn report` parses and analyzes — per-node update
//! counts, recompute latency, and a convergence timeline, all from typed
//! events.

use std::path::PathBuf;
use std::process::Command;

use bgp_sdn_emu::prelude::*;

fn bgpsdn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bgpsdn"))
}

fn artifact_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bgpsdn-test-{}-{name}.jsonl", std::process::id()));
    p
}

#[test]
fn run_trace_out_then_report() {
    let path = artifact_path("withdrawal");
    let run = bgpsdn()
        .args([
            "run",
            "--event",
            "withdrawal",
            "--sdn",
            "4",
            "--n",
            "8",
            "--mrai",
            "5",
            "--trace-out",
        ])
        .arg(&path)
        .output()
        .expect("spawn bgpsdn run");
    assert!(
        run.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let run_stdout = String::from_utf8_lossy(&run.stdout);
    assert!(run_stdout.contains("trace artifact:"), "{run_stdout}");

    // The artifact parses with the library API and carries typed events.
    let text = std::fs::read_to_string(&path).expect("artifact written");
    let artifact = RunArtifact::parse(&text).expect("artifact parses");
    assert!(artifact.run.is_some(), "run header line present");
    assert!(!artifact.events.is_empty(), "typed events present");
    assert_eq!(
        artifact.snapshots.len(),
        2,
        "bring-up + withdrawal metric snapshots"
    );
    // Phase markers bracket the event phase.
    assert!(artifact.events.iter().any(|r| matches!(
        &r.event,
        TraceEvent::Phase { name, started: true } if name == "withdrawal"
    )));

    // `bgpsdn report` renders the analysis without string-parsing anything.
    let report = bgpsdn()
        .arg("report")
        .arg(&path)
        .output()
        .expect("spawn report");
    assert!(
        report.status.success(),
        "report failed: {}",
        String::from_utf8_lossy(&report.stderr)
    );
    let out = String::from_utf8_lossy(&report.stdout);
    assert!(out.contains("per-node BGP update counts"), "{out}");
    assert!(out.contains("controller recompute latency"), "{out}");
    assert!(out.contains("convergence timeline"), "{out}");
    assert!(out.contains("phase withdrawal"), "{out}");
    assert!(out.contains("converged in"), "{out}");
    assert!(out.contains("metrics [withdrawal]"), "{out}");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn report_rejects_malformed_artifacts() {
    let path = artifact_path("garbage");
    std::fs::write(&path, "this is not json\n").unwrap();
    let report = bgpsdn()
        .arg("report")
        .arg(&path)
        .output()
        .expect("spawn report");
    assert!(!report.status.success(), "malformed artifact must fail");
    let _ = std::fs::remove_file(&path);

    let missing = bgpsdn()
        .args(["report", "/nonexistent/nowhere.jsonl"])
        .output()
        .expect("spawn report");
    assert!(!missing.status.success(), "missing file must fail");
}
