//! Cross-validation of the static analyzer against the simulator: the
//! analyzer's verdicts must be *predictions*, not just lint output.
//!
//! Three directions:
//!
//! * soundness of `Safe` — random Gao–Rexford policy graphs the analyzer
//!   certifies safe must converge in simulation, and the routes the
//!   simulated routers settle on must be exactly the stable assignment the
//!   SPP solver predicted;
//! * soundness of `Wheel` — the canonical BAD GADGET override rules must
//!   be flagged statically with the right rim, and the very same rules
//!   (compiled to route maps and installed on the simulated routers) must
//!   observably oscillate: the simulation never quiesces;
//! * tightness of the path-hunting bound — the measured hunt-chain depth
//!   of traced Figure 2 runs must stay within `hunt_depth_bound` at every
//!   centralization level.

use bgp_sdn_emu::analyze::spp::{bad_gadget_rules, PathRule, SppCaps, SppInstance, SppOutcome};
use bgp_sdn_emu::prelude::*;
use bgp_sdn_emu::topology::{AsEdge, EdgeKind};
use proptest::prelude::*;

const HOUR: SimDuration = SimDuration::from_secs(3600);

/// A random Gao–Rexford AS graph that is safe by construction: node 0 is
/// the unique top provider (every other node picks a provider of lower
/// index, so the provider hierarchy is an acyclic tree rooted at 0) plus a
/// sprinkling of peering links between unrelated pairs.
fn gr_graph(n: usize, provider_picks: &[usize], peer_picks: &[(usize, usize)]) -> AsGraph {
    let asns: Vec<Asn> = (0..n).map(|i| Asn(65001 + i as u32)).collect();
    let mut edges = Vec::new();
    for i in 1..n {
        let p = provider_picks[(i - 1) % provider_picks.len()] % i;
        edges.push(AsEdge {
            a: p,
            b: i,
            kind: EdgeKind::ProviderCustomer,
        });
    }
    for &(x, y) in peer_picks {
        let (a, b) = (x % n, y % n);
        if a == b {
            continue;
        }
        let (a, b) = (a.min(b), a.max(b));
        if edges.iter().any(|e| (e.a, e.b) == (a, b)) {
            continue;
        }
        edges.push(AsEdge {
            a,
            b,
            kind: EdgeKind::PeerPeer,
        });
    }
    AsGraph { asns, edges }
}

proptest! {
    /// Graphs the analyzer certifies safe converge in simulation, and the
    /// converged RIBs match the SPP solver's predicted stable assignment
    /// route-for-route.
    #[test]
    fn analyzer_safe_graphs_converge_to_the_predicted_state(
        n in 4usize..=6,
        provider_picks in prop::collection::vec(0usize..100, 5..=5),
        peer_picks in prop::collection::vec((0usize..100, 0usize..100), 0..4),
        seed in 1u64..10_000,
    ) {
        let g = gr_graph(n, &provider_picks, &peer_picks);

        // The safety pass must certify the graph (GR + acyclic hierarchy).
        let report = check_safety(&SafetyInput {
            graph: &g,
            mode: PolicyMode::GaoRexford,
            members: &[],
            rules: &[],
        });
        prop_assert!(report.ok(), "analyzer rejected a GR DAG:\n{}", report.render());

        // The explicit solver must agree and produce a stable assignment
        // for routes to node 0.
        let inst = SppInstance::build(&g, PolicyMode::GaoRexford, 0, &[], SppCaps::default())
            .expect("instance within caps");
        let stable = match inst.solve() {
            SppOutcome::Safe { stable } => stable,
            other => return Err(TestCaseError::Fail(format!("expected Safe, got {other:?}"))),
        };

        // Run the graph for real and compare every router's best path for
        // the origin's prefix against the prediction.
        let tp = plan(
            g.clone(),
            PolicyMode::GaoRexford,
            TimingConfig::with_mrai(SimDuration::from_secs(1)),
        )
        .expect("plan");
        let net = NetworkBuilder::new(tp, seed).build();
        let mut exp = Experiment::new(net);
        let up = exp.start(HOUR);
        prop_assert!(up.converged, "analyzer-safe graph failed to converge");

        let p0 = exp.net.ases[0].prefix;
        for (v, predicted) in stable.iter().enumerate().skip(1) {
            let node = exp.net.ases[v].node;
            let got: Option<Vec<Asn>> = exp
                .net
                .sim
                .node_ref::<Router>(node)
                .best(p0)
                .map(|e| e.attrs.as_path.flatten());
            // The predicted path is owner-first and includes the owner; the
            // wire AS path starts at the first hop.
            let want: Option<Vec<Asn>> = predicted
                .as_ref()
                .map(|path| path[1..].iter().map(|&w| g.asns[w]).collect());
            prop_assert_eq!(
                got.clone(),
                want.clone(),
                "node {} settled on {:?}, solver predicted {:?}",
                v,
                got,
                want
            );
        }
    }
}

#[test]
fn bad_gadget_is_flagged_statically_with_the_rim() {
    let g = AsGraph::all_peer(&gen::clique(4), 65000);
    let rules = bad_gadget_rules();
    let inst = SppInstance::build(&g, PolicyMode::AllPermit, 0, &rules, SppCaps::default())
        .expect("instance within caps");
    match inst.solve() {
        SppOutcome::Wheel { mut rim } => {
            rim.sort_unstable();
            assert_eq!(rim, vec![1, 2, 3], "the rim is the three overriding nodes");
        }
        other => panic!("expected a dispute wheel, got {other:?}"),
    }
    // And the full safety pass surfaces it as an error finding.
    let report = check_safety(&SafetyInput {
        graph: &g,
        mode: PolicyMode::AllPermit,
        members: &[],
        rules: &rules,
    });
    assert!(!report.ok());
    let first = report.first_error().expect("an error finding");
    assert_eq!(first.code, "safety.dispute_wheel");
}

/// The other half of the `Wheel` cross-validation: compile the same rules
/// to route maps, install them on the simulated routers, and watch the
/// network fail to quiesce. BAD GADGET has *no* stable assignment, so any
/// quiescent state would contradict the static verdict.
#[test]
fn bad_gadget_observably_oscillates_in_simulation() {
    let tp = plan(
        AsGraph::all_peer(&gen::clique(4), 65000),
        PolicyMode::AllPermit,
        TimingConfig::with_mrai(SimDuration::ZERO),
    )
    .expect("plan");
    let asns = tp.as_graph.asns.clone();
    let maps = PathRule::route_maps(&bad_gadget_rules(), &asns);

    let net = NetworkBuilder::new(tp, 7).build();
    let mut exp = Experiment::new(net);
    for (at, from, map) in maps {
        let node = exp.net.ases[at].node;
        let peer_asn = asns[from];
        exp.net.sim.with_node::<Router, _>(node, |r| {
            let cfg = r.config_mut();
            let idx = cfg
                .neighbors
                .iter()
                .position(|nb| nb.remote_asn == peer_asn)
                .expect("session to the rim neighbor");
            cfg.neighbors[idx].import_map = Some(map.clone());
        });
    }

    // With MRAI at zero nothing paces the dispute; 30 simulated seconds is
    // thousands of times around the wheel.
    let up = exp.start(SimDuration::from_secs(30));
    assert!(
        !up.converged,
        "BAD GADGET quiesced — the static Wheel verdict would be wrong"
    );
}

/// Table S14: the ghost paths explored during traced Figure 2 withdrawals
/// must stay within the analyzer's static hunt-depth bound
/// (contracted-component size − 1) at every centralization level. The
/// bound caps the *length* of any transient best path a BGP router can
/// hold while hunting; at full centralization it reaches zero and BGP
/// path exploration must vanish entirely.
#[test]
fn measured_ghost_paths_stay_within_the_static_hunt_bound() {
    let g = AsGraph::all_peer(&gen::clique(16), 65000);
    for sdn in [0usize, 8, 16] {
        let members: Vec<usize> = (16 - sdn..16).collect();
        let bound = hunt_depth_bound(&g, &members, 0);
        assert_eq!(bound, 16 - sdn.max(1), "clique bound is component size - 1");

        let scenario = CliqueScenario {
            n: 16,
            sdn_count: sdn,
            mrai: SimDuration::from_secs(30),
            recompute_delay: SimDuration::from_millis(100),
            seed: 4242,
            control_loss: 0.0,
        };
        let (out, exp) = run_clique_traced(&scenario, EventKind::Withdrawal);
        assert!(out.converged);
        let phase_start = exp.phase_start();
        let measured = exp
            .net
            .sim
            .trace()
            .records()
            .filter(|r| r.time >= phase_start)
            .filter_map(|r| match &r.event {
                TraceEvent::RibChange {
                    new_path: Some(p), ..
                } => Some(p.len()),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        println!("sdn={sdn}: static bound {bound}, deepest transient path {measured}");
        assert!(
            measured <= bound,
            "sdn={sdn}: a transient best path of {measured} hops exceeds the static bound {bound}"
        );
    }
}
