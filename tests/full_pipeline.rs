//! Workspace-level integration: drive the complete pipeline across all
//! crates — topology generation → address plan → hybrid network → live
//! experiment → collector log analysis → visualization export.

use bgp_sdn_emu::collector::{render_dot, LogAction, VizNode, VizRole};
use bgp_sdn_emu::prelude::*;
use bgp_sdn_emu::topology::iplane::{self, PopSynthesisParams};

const HOUR: SimDuration = SimDuration::from_secs(3600);

#[test]
fn topology_to_analysis_pipeline() {
    // 1. Topology from a generator + relationship inference.
    let g = gen::barabasi_albert(12, 2, &mut SimRng::seed_from_u64(1));
    let ag = AsGraph::infer_by_degree(&g, 65000, 1.5);
    assert!(ag.provider_hierarchy_acyclic());

    // 2. Address plan + router templates.
    let tp = plan(
        ag,
        PolicyMode::GaoRexford,
        TimingConfig::with_mrai(SimDuration::from_secs(2)),
    )
    .expect("plan");
    assert_eq!(tp.routers.len(), 12);
    let conf = tp.render_quagga(0);
    assert!(conf.contains("router bgp 65000"));

    // 3. Hybrid network with a 3-member cluster at the densest ASes.
    let mut by_degree: Vec<usize> = (0..12).collect();
    let g2 = tp.as_graph.to_graph();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g2.degree(v)));
    let members: Vec<usize> = by_degree[..3].to_vec();
    let net = NetworkBuilder::new(tp, 2).with_sdn_members(members).build();

    // 4. Bring-up, event, convergence.
    let mut exp = Experiment::new(net);
    assert!(exp.start(HOUR).converged);
    let audit = exp.connectivity_audit();
    assert!(audit.fully_connected(), "{:?}", audit.failures);

    let victim = *by_degree.last().unwrap();
    let victim_prefix = exp.net.ases[victim].prefix;
    exp.mark();
    exp.withdraw(victim, None);
    let rep = exp.wait_converged(HOUR);
    assert!(rep.converged);
    assert!(exp.prefix_fully_gone(victim_prefix));

    // 5. Collector log analysis: the withdrawal must be visible.
    let collector = exp.net.collector.expect("collector on");
    let log = exp
        .net
        .sim
        .node_ref::<bgp_sdn_emu::core::Collector>(collector)
        .log();
    assert!(
        log.entries()
            .iter()
            .any(|e| e.prefix == victim_prefix && e.action == LogAction::Withdraw),
        "collector never saw the withdrawal"
    );
    let timeline = log.render_timeline(victim_prefix);
    assert!(timeline.contains("withdrawn"));

    // 6. Visualization export.
    let nodes: Vec<VizNode> = exp
        .net
        .ases
        .iter()
        .map(|a| VizNode {
            id: a.node,
            label: a.asn.to_string(),
            role: match a.kind {
                AsKind::Legacy => VizRole::LegacyRouter,
                AsKind::SdnMember => VizRole::SdnSwitch,
            },
        })
        .collect();
    let edges: Vec<_> = exp
        .net
        .plan
        .as_graph
        .edges
        .iter()
        .map(|e| (exp.net.ases[e.a].node, exp.net.ases[e.b].node))
        .collect();
    let dot = render_dot("pipeline", &nodes, &edges, &[]);
    assert!(dot.contains("AS65000"));
}

#[test]
fn iplane_latencies_feed_the_simulation() {
    // Synthesize an iPlane-style PoP graph, collapse to AS level and run a
    // network whose link latencies come from the dataset.
    let mut rng = SimRng::seed_from_u64(7);
    let params = PopSynthesisParams {
        ases: 10,
        ..Default::default()
    };
    let pg = iplane::synthesize(&params, &mut rng);
    // Exercise the dataset format both directions.
    let pg = iplane::parse(&iplane::write(&pg)).expect("format roundtrip");
    let (ag, latencies) = pg.to_as_graph_all_peer();
    assert_eq!(ag.len(), 10);

    let tp = plan(
        ag,
        PolicyMode::AllPermit,
        TimingConfig::with_mrai(SimDuration::ZERO),
    )
    .expect("plan");
    let net = NetworkBuilder::new(tp, 8)
        .with_edge_latencies(latencies)
        .with_sdn_members([8, 9])
        .build();
    let mut exp = Experiment::new(net);
    assert!(exp.start(HOUR).converged);
    let audit = exp.connectivity_audit();
    assert!(audit.fully_connected(), "{:?}", audit.failures);
}

#[test]
fn facade_prelude_runs_a_scenario() {
    let out = run_clique(
        &CliqueScenario {
            n: 5,
            sdn_count: 2,
            mrai: SimDuration::from_secs(2),
            recompute_delay: SimDuration::from_millis(50),
            seed: 3,
            control_loss: 0.0,
        },
        EventKind::Withdrawal,
    );
    assert!(out.converged && out.audit_ok);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let out = run_clique(
            &CliqueScenario {
                n: 6,
                sdn_count: 3,
                mrai: SimDuration::from_secs(5),
                recompute_delay: SimDuration::from_millis(100),
                seed: 9,
                control_loss: 0.0,
            },
            EventKind::Failover,
        );
        (out.convergence, out.updates, out.flow_mods)
    };
    assert_eq!(run(), run());
}

#[test]
fn random_waxman_topology_builds_and_converges() {
    // Arbitrary random geometric topology through the whole stack: Waxman
    // graph, connectivity repair, degree-inferred identities, hybrid build,
    // convergence, full-mesh forwarding audit.
    let mut rng = SimRng::seed_from_u64(33);
    let (mut g, coords) = gen::waxman(25, 0.9, 0.4, &mut rng);
    assert_eq!(coords.len(), 25);
    gen::ensure_connected(&mut g, &mut rng);
    let ag = AsGraph::all_peer(&g, 65000);
    let tp = plan(
        ag,
        PolicyMode::AllPermit,
        TimingConfig::with_mrai(SimDuration::from_secs(1)),
    )
    .expect("plan");

    // Cluster = the three highest-degree vertices.
    let mut order: Vec<usize> = (0..25).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let net = NetworkBuilder::new(tp, 34)
        .with_sdn_members(order[..3].iter().copied())
        .build();
    let mut exp = Experiment::new(net);
    assert!(exp.start(SimDuration::from_secs(3600)).converged);
    let audit = exp.connectivity_audit();
    assert!(
        audit.fully_connected(),
        "waxman hybrid failures: {:?}",
        audit.failures.len()
    );
    // A random victim withdrawal cleans up globally.
    let victim = order[24];
    exp.mark();
    exp.withdraw(victim, None);
    assert!(exp.wait_converged(SimDuration::from_secs(3600)).converged);
    assert!(exp.prefix_fully_gone(exp.net.ases[victim].prefix));
}
