//! End-to-end CLI test of `bgpsdn check`: the built-in pre-flight suite
//! must self-check clean, its `--json` output must be byte-deterministic
//! across runs, and a grid with an impossible cluster size must be
//! rejected with a nonzero exit naming the finding.

use std::process::Command;
use std::time::Instant;

fn bgpsdn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bgpsdn"))
}

#[test]
fn builtin_suite_is_clean_and_json_is_byte_deterministic() {
    let start = Instant::now();
    let a = bgpsdn().args(["check", "--json"]).output().expect("spawn");
    let elapsed = start.elapsed();
    assert!(
        a.status.success(),
        "self-check failed: {}\n{}",
        String::from_utf8_lossy(&a.stderr),
        String::from_utf8_lossy(&a.stdout)
    );
    // The release acceptance bar is <100 ms on the Fig. 2 grid; leave the
    // unoptimized test build generous headroom while still catching an
    // accidental switch to exhaustive simulation.
    assert!(
        elapsed.as_secs() < 20,
        "static check took {elapsed:?} — is it simulating?"
    );

    let b = bgpsdn().args(["check", "--json"]).output().expect("spawn");
    assert!(b.status.success());
    assert_eq!(
        a.stdout, b.stdout,
        "check --json must be byte-identical across runs"
    );

    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("\"type\":"), "typed JSON envelope");
    assert!(text.contains("grid:fig2"), "Fig. 2 grid target present");
    assert!(text.contains("hunt_bound"), "hunt bounds reported");
}

#[test]
fn human_output_summarizes_the_suite() {
    let out = bgpsdn().args(["check"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("grid:fig2"));
    assert!(text.contains("ok"));
}

#[test]
fn impossible_grid_is_rejected_with_the_finding_code() {
    let out = bgpsdn()
        .args(["check", "--sizes", "20", "--n", "16"])
        .output()
        .expect("spawn");
    assert!(
        !out.status.success(),
        "a 20-member cluster on 16 ASes must fail the check"
    );
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        text.contains("grid.cluster_size"),
        "finding code missing from output:\n{text}"
    );
}
