//! Quickstart: build a small hybrid clique, withdraw a prefix, and watch
//! how centralization changes convergence time.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bgp_sdn_emu::prelude::*;

fn main() {
    println!("hybrid BGP-SDN quickstart: route withdrawal on an 8-AS clique");
    println!("MRAI 10 s, controller recompute delay 100 ms\n");
    println!(
        "{:>10} {:>16} {:>10} {:>10}",
        "SDN ASes", "convergence", "updates", "flowmods"
    );

    for sdn_count in [0, 2, 4, 6, 8] {
        let scenario = CliqueScenario {
            n: 8,
            sdn_count,
            mrai: SimDuration::from_secs(10),
            recompute_delay: SimDuration::from_millis(100),
            seed: 42,
            control_loss: 0.0,
        };
        let out = run_clique(&scenario, EventKind::Withdrawal);
        assert!(out.converged, "did not converge");
        assert!(out.audit_ok, "stale routing state after withdrawal");
        println!(
            "{:>9}/8 {:>16} {:>10} {:>10}",
            sdn_count,
            out.convergence.to_string(),
            out.updates,
            out.flow_mods
        );
    }

    println!("\nThe trend is the paper's headline: the more ASes hand their");
    println!("routing decisions to the centralized IDR controller, the less");
    println!("MRAI-paced path exploration remains, and withdrawal convergence");
    println!("drops roughly linearly toward zero.");
}
