//! Internet-like experiment: a CAIDA-style synthetic AS topology under
//! Gao–Rexford policies, with the SDN cluster at the top of the hierarchy.
//! Exports the network graph as Graphviz DOT and a sample Quagga-style
//! router configuration, then measures a stub withdrawal.
//!
//! ```sh
//! cargo run --release --example internet_topology
//! dot -Tsvg target/internet_topology.dot -o topology.svg   # optional
//! ```

use bgp_sdn_emu::collector::{render_dot, VizNode, VizRole};
use bgp_sdn_emu::prelude::*;
use bgp_sdn_emu::topology::caida::{self, SynthesisParams};

fn main() {
    // Synthesize a CAIDA-like hierarchy: 3 tier-1s, 8 regionals, 30 stubs.
    let mut rng = SimRng::seed_from_u64(2024);
    let params = SynthesisParams {
        tier1: 3,
        mid: 8,
        stubs: 30,
        ..Default::default()
    };
    let ag = caida::synthesize(&params, &mut rng);
    let n = ag.len();
    let (pc, pp) = ag.relationship_counts();
    println!(
        "synthetic CAIDA-style topology: {n} ASes, {pc} provider-customer + {pp} peering links"
    );
    println!("(the parser in bgpsdn_topology::caida reads the real as-rel.txt format too)\n");

    // The same content as a CAIDA as-rel file, roundtripped for show.
    let rel_file = caida::write(&ag);
    println!(
        "as-rel excerpt:\n{}",
        rel_file.lines().take(5).collect::<Vec<_>>().join("\n")
    );

    let topo = plan(
        ag,
        PolicyMode::GaoRexford,
        TimingConfig::with_mrai(SimDuration::from_secs(5)),
    )
    .expect("plan");

    // A sample of the generated Quagga-style configuration.
    println!("\ngenerated bgpd.conf for the first tier-1:\n");
    for line in topo.render_quagga(0).lines().take(12) {
        println!("  {line}");
    }

    // Cluster = the tier-1 full mesh.
    let net = NetworkBuilder::new(topo, 9)
        .with_sdn_members([0, 1, 2])
        .with_data_latency(LatencyModel::Jittered {
            base: SimDuration::from_millis(2),
            jitter: SimDuration::from_millis(8),
        })
        .build();
    let mut exp = Experiment::new(net);
    let up = exp.start(SimDuration::from_secs(3600));
    assert!(up.converged);
    let audit = exp.connectivity_audit();
    println!(
        "\nbring-up: converged in {}, connectivity {}/{} pairs",
        up.duration,
        audit.delivered,
        audit.total()
    );

    // Export the graph for Graphviz.
    let nodes: Vec<VizNode> = exp
        .net
        .ases
        .iter()
        .map(|a| VizNode {
            id: a.node,
            label: format!("{}", a.asn),
            role: match a.kind {
                AsKind::Legacy => VizRole::LegacyRouter,
                AsKind::SdnMember => VizRole::SdnSwitch,
            },
        })
        .collect();
    let edges: Vec<_> = exp
        .net
        .plan
        .as_graph
        .edges
        .iter()
        .map(|e| (exp.net.ases[e.a].node, exp.net.ases[e.b].node))
        .collect();
    let dot = render_dot("internet-like hybrid topology", &nodes, &edges, &[]);
    let path = "target/internet_topology.dot";
    std::fs::create_dir_all("target").ok();
    std::fs::write(path, dot).expect("write dot");
    println!("graphviz export written to {path}");

    // Withdraw a stub's prefix and measure.
    let stub = n - 1;
    println!(
        "\nwithdrawing {} (stub AS{}) ...",
        exp.net.ases[stub].prefix, exp.net.ases[stub].asn.0
    );
    exp.mark();
    exp.withdraw(stub, None);
    let rep = exp.wait_converged(SimDuration::from_secs(3600));
    println!(
        "re-converged: {} (updates: {}, flow mods: {})",
        rep.duration,
        exp.updates_sent(),
        exp.flows_installed()
    );
    assert!(exp.prefix_fully_gone(exp.net.ases[stub].prefix));
    println!("post-withdrawal audit: no stale state anywhere");
}
