//! The demo's end-to-end application check: a "video stream" (periodic
//! probes) from a legacy AS to a server inside an SDN member AS, while the
//! direct link between them fails and later recovers — the scenario the
//! paper demonstrates visually with a video application.
//!
//! ```sh
//! cargo run --release --example video_failover
//! ```

use bgp_sdn_emu::prelude::*;

fn main() {
    // 6-AS clique; ASes 3..5 form the SDN cluster. The viewer is legacy
    // AS 1 (index 1), the video server lives inside member AS 5's prefix.
    let topo = plan(
        AsGraph::all_peer(&gen::clique(6), 65000),
        PolicyMode::AllPermit,
        TimingConfig::with_mrai(SimDuration::from_secs(5)),
    )
    .expect("plan");
    let net = NetworkBuilder::new(topo, 7)
        .with_sdn_members([3, 4, 5])
        .build();
    let mut exp = Experiment::new(net);
    let up = exp.start(SimDuration::from_secs(3600));
    assert!(up.converged, "bring-up failed");

    let viewer = 1usize;
    let server = 5usize;
    let viewer_node = exp.net.ases[viewer].node;
    let viewer_ip = exp.net.ases[viewer].router_ip;
    let server_ip = exp.net.ases[server].prefix.nth(0x77);

    println!(
        "video stream: AS{} -> {} (inside SDN member AS{})",
        65001, server_ip, 65005
    );
    println!("probe every 100 ms; direct link fails at t=+2.0s, heals at t=+6.0s\n");

    let step = SimDuration::from_millis(100);
    let mut seq = 0u64;
    let mut last_delivered = {
        let r = exp.net.sim.node_ref::<Router>(viewer_node);
        r.stats().data_delivered
    };
    let t0 = exp.net.sim.now();
    let mut outage_intervals = 0u32;
    let mut timeline = String::new();

    for tick in 0..100 {
        // One probe per tick.
        seq += 1;
        exp.net.sim.inject(
            viewer_node,
            ClusterMsg::Data(DataPacket::echo_request(viewer_ip, server_ip, seq)),
        );
        // Scenario control.
        if tick == 20 {
            exp.fail_edge(viewer, server);
        }
        if tick == 60 {
            exp.restore_edge(viewer, server);
        }
        let deadline = t0 + step * (tick + 1);
        exp.net.sim.run_until(deadline);

        let delivered = exp
            .net
            .sim
            .node_ref::<Router>(viewer_node)
            .stats()
            .data_delivered;
        let got_reply = delivered > last_delivered;
        last_delivered = delivered;
        if !got_reply && tick > 0 {
            outage_intervals += 1;
        }
        timeline.push(if got_reply { '#' } else { '.' });
    }

    println!("reply timeline (100 ms per column, '#'=stream alive, '.'=outage):");
    for (i, chunk) in timeline.as_bytes().chunks(50).enumerate() {
        println!(
            "  t+{:>4.1}s  {}",
            i as f64 * 5.0,
            String::from_utf8_lossy(chunk)
        );
    }
    println!("\nprobes sent: {seq}, outage intervals: {outage_intervals}");
    println!(
        "outage ≈ {} ms (failover re-routes the stream through the cluster's",
        outage_intervals * 100
    );
    println!("alternative announcements; healing brings the direct path back)");

    let audit = exp.connectivity_audit();
    assert!(audit.fully_connected(), "network should be whole again");
    println!(
        "\nfinal connectivity audit: {} pairs delivered, 0 failures",
        audit.delivered
    );
}
