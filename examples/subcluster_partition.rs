//! Sub-cluster partition demo (the paper's §2 goal): an intra-cluster link
//! fails, the cluster splits into two sub-clusters under the same
//! controller, and connectivity survives over the legacy Internet; healing
//! the link restores internal routing.
//!
//! ```sh
//! cargo run --release --example subcluster_partition
//! ```

use bgp_sdn_emu::prelude::*;
use bgp_sdn_emu::topology::{AsEdge, EdgeKind};

fn main() {
    // l0 ── l1     (legacy peers)
    //  │     │
    //  A ═══ B     (SDN members; ═══ is the intra-cluster bridge)
    let ag = AsGraph {
        asns: vec![Asn(65000), Asn(65001), Asn(65002), Asn(65003)],
        edges: vec![
            AsEdge {
                a: 0,
                b: 1,
                kind: EdgeKind::PeerPeer,
            },
            AsEdge {
                a: 0,
                b: 2,
                kind: EdgeKind::PeerPeer,
            },
            AsEdge {
                a: 1,
                b: 3,
                kind: EdgeKind::PeerPeer,
            },
            AsEdge {
                a: 2,
                b: 3,
                kind: EdgeKind::PeerPeer,
            },
        ],
    };
    let topo = plan(
        ag,
        PolicyMode::AllPermit,
        TimingConfig::with_mrai(SimDuration::ZERO),
    )
    .expect("plan");
    let net = NetworkBuilder::new(topo, 5)
        .with_sdn_members([2, 3])
        .build();
    let mut exp = Experiment::new(net);
    assert!(exp.start(SimDuration::from_secs(3600)).converged);

    let describe = |exp: &Experiment| {
        let c = exp.net.controller.unwrap();
        let subclusters = exp
            .net
            .sim
            .node_ref::<Controller>(c)
            .switch_graph()
            .components()
            .1;
        let audit = exp.connectivity_audit();
        println!(
            "  sub-clusters: {subclusters}; connectivity: {}/{} pairs; loops: {}",
            audit.delivered,
            audit.total(),
            audit.looped
        );
    };

    println!("initial state (cluster whole):");
    describe(&exp);

    println!("\nfailing the intra-cluster bridge A═══B ...");
    exp.mark();
    exp.fail_edge(2, 3);
    let rep = exp.wait_converged(SimDuration::from_secs(3600));
    println!("  re-converged in {}", rep.duration);
    describe(&exp);
    println!("  (each sub-cluster now reaches the other over the legacy ASes,");
    println!("   using external routes whose paths contain the other sub-cluster's");
    println!("   member ASNs — usable precisely because they are in a different");
    println!("   component, the paper's loop-avoidance insight)");

    println!("\nhealing the bridge ...");
    exp.mark();
    exp.restore_edge(2, 3);
    let rep = exp.wait_converged(SimDuration::from_secs(3600));
    println!("  re-converged in {}", rep.duration);
    describe(&exp);
    println!("  (internal routing restored)");
}
