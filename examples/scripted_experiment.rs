//! Scripted experiment lifecycle — the framework's replacement for the
//! paper's Python experiment setups: declare the scenario as data, replay
//! it, get a verified transcript.
//!
//! ```sh
//! cargo run --release --example scripted_experiment
//! ```

use bgp_sdn_emu::core::Script;
use bgp_sdn_emu::prelude::*;

fn main() {
    let topo = plan(
        AsGraph::all_peer(&gen::clique(8), 65000),
        PolicyMode::AllPermit,
        TimingConfig::with_mrai(SimDuration::from_secs(5)),
    )
    .expect("plan");
    let net = NetworkBuilder::new(topo, 3)
        .with_sdn_members([4, 5, 6, 7])
        .build();
    let mut exp = Experiment::new(net);
    assert!(exp.start(SimDuration::from_secs(3600)).converged);

    let hour = SimDuration::from_secs(3600);
    let p0 = exp.net.ases[0].prefix;

    let script = Script::new()
        .expect_full_connectivity()
        // Withdrawal round-trip.
        .mark()
        .withdraw(0)
        .wait_converged(hour)
        .expect_gone(p0)
        .mark()
        .announce(0)
        .wait_converged(hour)
        .expect_reachable(p0, 0)
        // A link failure and repair, with connectivity verified throughout.
        .mark()
        .fail_edge(0, 1)
        .wait_converged(hour)
        .expect_reachable(p0, 0)
        .mark()
        .restore_edge(0, 1)
        .wait_converged(hour)
        .expect_full_connectivity();

    let report = exp.run_script(&script);
    print!("{}", report.render());
    if report.ok() {
        println!(
            "\nscript completed: all {} steps passed",
            report.steps.len()
        );
    } else {
        println!(
            "\nscript FAILED at step {:?}",
            report.first_failure().map(|s| s.index)
        );
        std::process::exit(1);
    }
}
