//! Reproduce the paper's Figure 2 at full scale: IDR convergence time of a
//! route withdrawal on a 16-AS clique versus the fraction of ASes with
//! centralized route control — boxplots over 10 seeded runs per point.
//!
//! ```sh
//! cargo run --release --example fig2_withdrawal          # 10 runs/point
//! cargo run --release --example fig2_withdrawal -- 3     # quicker: 3 runs
//! ```

use bgp_sdn_emu::prelude::*;

fn main() {
    let runs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    println!("Figure 2: withdrawal convergence vs SDN fraction");
    println!("16-AS clique, full transit, MRAI 30 s, {runs} runs per point\n");
    println!(
        "{:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "fraction", "min", "q1", "median", "q3", "max", "mean"
    );

    for sdn_count in (0..=16).step_by(2) {
        let base = CliqueScenario::fig2(sdn_count, 1000);
        let times = clique_sweep_point(&base, EventKind::Withdrawal, runs);
        let s = Summary::of_durations(&times).expect("non-empty");
        println!(
            "{:>8}% {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            sdn_count * 100 / 16,
            s.min,
            s.q1,
            s.median,
            s.q3,
            s.max,
            s.mean
        );
    }
    println!("\n(values in seconds; compare the shape with the paper's boxplots:");
    println!(" a roughly linear decrease, collapsing at full deployment)");
}
