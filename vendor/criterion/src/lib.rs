//! Offline benchmarking shim.
//!
//! The workspace builds without crates.io access, so the real `criterion`
//! cannot be fetched. This crate keeps the same bench-source syntax
//! (`Criterion`, `bench_function`, `b.iter(..)`, `criterion_group!`,
//! `criterion_main!`) and implements a straightforward wall-clock
//! measurement: warm up briefly, then time batches of iterations and report
//! the best per-iteration time (the least-noise estimator for short,
//! deterministic bodies).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver, API-compatible with the criterion subset we use.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Measure `f` and print a `name ... time: [..]` line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let (best, median) = b.summarize();
        println!(
            "{name:<44} time: [best {:>12} median {:>12}]",
            fmt_ns(best),
            fmt_ns(median)
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Run the routine repeatedly, collecting per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: how many iterations fit in ~2 ms?
        let start = Instant::now();
        let mut calib_iters: u64 = 0;
        while start.elapsed() < Duration::from_millis(2) {
            black_box(routine());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let batch = calib_iters.max(1);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / batch as f64);
        }
    }

    fn summarize(&self) -> (f64, f64) {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return (0.0, 0.0);
        }
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (s[0], s[s.len() / 2])
    }
}

/// Collects benchmark functions under one group name, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut c = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }
}
