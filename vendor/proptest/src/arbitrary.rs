//! `any::<T>()` and the [`Arbitrary`] trait behind it.

use std::marker::PhantomData;

use crate::strategy::Any;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" generator.
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::new(rng.next_u64())
    }
}
