//! Deterministic per-case RNG and the test-case result types.

/// Why a property case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was skipped by `prop_assume!` (not a failure).
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Result type the generated property bodies return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Splitmix64 generator seeded from the test name and case index, so runs
/// are reproducible without any persisted state.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = TestRng::for_case("unit", 0);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
