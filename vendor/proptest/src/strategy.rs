//! The [`Strategy`] trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Something that can generate values of one type from an RNG.
///
/// Unlike real proptest there is no shrinking: `generate` returns a final
/// value directly.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.below(hi - lo + 1)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 / 0);
tuple_strategy!(S0 / 0, S1 / 1);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7
);
tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7,
    S8 / 8
);
tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7,
    S8 / 8,
    S9 / 9
);

/// Strategy produced by [`crate::arbitrary::any`].
pub struct Any<T>(pub(crate) PhantomData<fn() -> T>);

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u8..=32).generate(&mut rng);
            assert!(w <= 32);
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::for_case("compose", 0);
        let s = crate::prop_oneof![(1u32..10).prop_map(|v| v * 2), Just(100u32),];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 100 || (2..20).contains(&v));
        }
    }
}
