//! Offline property-testing shim.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real `proptest` cannot be fetched. This crate provides the (small) subset
//! of its API the test suite uses, with the same surface syntax:
//!
//! * the [`proptest!`] macro with `name in strategy` parameters,
//! * [`strategy::Strategy`] (`prop_map`, `boxed`), [`strategy::Just`], range and tuple
//!   strategies, `prop::collection::vec`, `prop::option::of`,
//!   `prop::sample::Index`, `any::<T>()`,
//! * `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!` and
//!   [`prop_oneof!`].
//!
//! Generation is purely random (splitmix64 seeded from the test name and
//! case index) — there is no shrinking. Failures report the case number so a
//! run can be reproduced: case seeds are deterministic per test name, so
//! every `cargo test` executes the identical sequence. The case count
//! defaults to 64 and can be overridden with `PROPTEST_CASES`.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The canonical prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Number of cases each property runs (`PROPTEST_CASES` overrides).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::case_count();
                let mut rejected: u32 = 0;
                for case in 0..cases {
                    let mut __pt_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __pt_rng);
                    )+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < cases * 8,
                                "property {} rejected too many cases ({rejected})",
                                stringify!($name),
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed at case {case}: {msg}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the enclosing property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the enclosing property when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Picks uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
