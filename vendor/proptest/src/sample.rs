//! Sampling helpers (`prop::sample::Index`).

/// An index into a collection whose length is only known at use time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn new(raw: u64) -> Index {
        Index(raw)
    }

    /// Resolve against a collection of `len` elements; `len` must be > 0.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}
