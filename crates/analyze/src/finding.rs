//! Findings and reports — the analyzer's output vocabulary.
//!
//! Every pass produces [`Finding`]s collected into an [`AnalysisReport`].
//! Reports render to humans and to deterministic JSON: finding order is the
//! (deterministic) order the passes emit them in, and every field is
//! plain data, so the same inputs always produce byte-identical output.

use bgpsdn_obs::Json;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but runnable: the experiment will execute, though it may
    /// not measure what the author intended.
    Warning,
    /// The configuration is wrong: running it would panic, oscillate, or
    /// assert an expectation that can never hold.
    Error,
}

impl Severity {
    /// Lower-case label used in renders and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One statically detected problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code, `pass.kind` (e.g.
    /// `safety.provider_cycle`, `script.index_range`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Concrete evidence when the pass can produce one — e.g. the witness
    /// cycle of a dispute wheel (`AS1 -> AS2 -> AS3 -> AS1`).
    pub witness: Option<String>,
}

impl Finding {
    /// JSON object for one finding (stable key order).
    pub fn to_json(&self) -> Json {
        let mut kv = vec![
            (
                "severity".to_string(),
                Json::Str(self.severity.label().to_string()),
            ),
            ("code".to_string(), Json::Str(self.code.to_string())),
            ("message".to_string(), Json::Str(self.message.clone())),
        ];
        if let Some(w) = &self.witness {
            kv.push(("witness".to_string(), Json::Str(w.clone())));
        }
        Json::Obj(kv)
    }
}

/// Accumulated output of one or more analyzer passes.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Findings in emission order (deterministic per input).
    pub findings: Vec<Finding>,
    /// Number of individual checks evaluated (clean checks count too, so a
    /// "0 findings" report can show how much was actually examined).
    pub checks: u64,
}

impl AnalysisReport {
    /// Empty report.
    pub fn new() -> AnalysisReport {
        AnalysisReport::default()
    }

    /// Record one evaluated check.
    pub fn checked(&mut self) {
        self.checks += 1;
    }

    /// Record `n` evaluated checks.
    pub fn checked_n(&mut self, n: u64) {
        self.checks += n;
    }

    /// Push an error finding.
    pub fn error(&mut self, code: &'static str, message: impl Into<String>) {
        self.findings.push(Finding {
            severity: Severity::Error,
            code,
            message: message.into(),
            witness: None,
        });
    }

    /// Push an error finding with a witness.
    pub fn error_with(
        &mut self,
        code: &'static str,
        message: impl Into<String>,
        witness: impl Into<String>,
    ) {
        self.findings.push(Finding {
            severity: Severity::Error,
            code,
            message: message.into(),
            witness: Some(witness.into()),
        });
    }

    /// Push a warning finding.
    pub fn warning(&mut self, code: &'static str, message: impl Into<String>) {
        self.findings.push(Finding {
            severity: Severity::Warning,
            code,
            message: message.into(),
            witness: None,
        });
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: AnalysisReport) {
        self.findings.extend(other.findings);
        self.checks += other.checks;
    }

    /// True when there are no error-severity findings (warnings allowed).
    pub fn ok(&self) -> bool {
        self.errors() == 0
    }

    /// True when there are no findings at all.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Error-severity finding count.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Warning-severity finding count.
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.errors()
    }

    /// The first error-severity finding, if any.
    pub fn first_error(&self) -> Option<&Finding> {
        self.findings.iter().find(|f| f.severity == Severity::Error)
    }

    /// Human-readable rendering: one line per finding, or a clean summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        if self.findings.is_empty() {
            return format!("ok ({} checks)\n", self.checks);
        }
        let mut out = String::new();
        for f in &self.findings {
            let _ = write!(out, "{:>7} [{}] {}", f.severity.label(), f.code, f.message);
            if let Some(w) = &f.witness {
                let _ = write!(out, "\n        witness: {w}");
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{} error(s), {} warning(s), {} checks",
            self.errors(),
            self.warnings(),
            self.checks
        );
        out
    }

    /// JSON object for the whole report (stable key order, deterministic).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "findings".to_string(),
                Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
            ),
            ("errors".to_string(), Json::U64(self.errors() as u64)),
            ("warnings".to_string(), Json::U64(self.warnings() as u64)),
            ("checks".to_string(), Json::U64(self.checks)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accounting() {
        let mut r = AnalysisReport::new();
        assert!(r.ok() && r.clean());
        r.checked_n(3);
        r.warning("test.warn", "just a warning");
        assert!(r.ok() && !r.clean());
        r.error_with("test.err", "broken", "AS1 -> AS2 -> AS1");
        assert!(!r.ok());
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert_eq!(r.first_error().unwrap().code, "test.err");
        let rendered = r.render();
        assert!(rendered.contains("witness: AS1 -> AS2 -> AS1"));
        assert!(rendered.contains("1 error(s), 1 warning(s), 3 checks"));
    }

    #[test]
    fn json_is_deterministic() {
        let mut r = AnalysisReport::new();
        r.checked();
        r.error("x.y", "boom");
        let a = r.to_json().to_compact();
        let b = r.to_json().to_compact();
        assert_eq!(a, b);
        assert!(a.contains("\"code\":\"x.y\""));
        let parsed = Json::parse(&a).unwrap();
        assert_eq!(parsed.get("errors").and_then(Json::as_u64), Some(1));
    }
}
