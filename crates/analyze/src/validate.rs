//! Validation pass — scripts, fault plans, timing, and campaign grids.
//!
//! The framework's builders accept anything and fail late: an out-of-range
//! AS index panics deep inside the simulator, a fault scheduled past the
//! chaos horizon silently never fires, and an `expect_reachable` against a
//! never-announced prefix burns a full convergence run before failing. This
//! pass walks the declarative experiment inputs — an action sequence, a
//! timed fault plan, the timer configuration, a campaign grid — and reports
//! everything that is statically wrong or statically pointless.
//!
//! The pass works on a neutral [`Action`] IR rather than the framework's
//! own `ScriptAction`/`FaultAction` enums so the analyzer stays below the
//! core crate in the dependency order; core converts losslessly.

use bgpsdn_bgp::Prefix;
use bgpsdn_netsim::SimDuration;

use crate::finding::AnalysisReport;

/// Neutral mirror of the framework's script/fault actions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Announce a prefix (`None` = the AS's own default prefix).
    Announce {
        /// Announcing AS index.
        as_index: usize,
        /// Explicit prefix, or the AS's default.
        prefix: Option<Prefix>,
    },
    /// Withdraw a prefix (`None` = the AS's own default prefix).
    Withdraw {
        /// Withdrawing AS index.
        as_index: usize,
        /// Explicit prefix, or the AS's default.
        prefix: Option<Prefix>,
    },
    /// Take the data link between two ASes down.
    FailEdge(usize, usize),
    /// Bring a failed link back.
    RestoreEdge(usize, usize),
    /// Crash the IDR controller.
    CrashController,
    /// Restart the controller.
    RestoreController,
    /// Partition the speaker↔controller channel.
    PartitionControlChannel,
    /// Heal the control-channel partition.
    HealControlChannel,
    /// Set loss on the control channel.
    SetControlLoss(f64),
    /// Set loss on a data link.
    SetEdgeLoss(usize, usize, f64),
    /// Crash one AS's router.
    CrashRouter(usize),
    /// Restore a crashed router.
    RestoreRouter(usize),
    /// 100% silent loss on a link (hold-timer-only detection).
    DropEdgeTraffic(usize, usize),
    /// End a traffic-drop window.
    RestoreEdgeTraffic(usize, usize),
    /// Collector timeline mark (always valid).
    Mark,
    /// Run until convergence or the deadline.
    WaitConverged {
        /// Convergence deadline.
        max: SimDuration,
    },
    /// Run for a fixed duration.
    RunFor(SimDuration),
    /// Assert a prefix is reachable network-wide with the given origin.
    ExpectReachable {
        /// The prefix asserted present.
        prefix: Prefix,
        /// Expected originating AS index.
        origin: usize,
    },
    /// Assert a prefix is gone network-wide.
    ExpectGone {
        /// The prefix asserted absent.
        prefix: Prefix,
    },
    /// Assert full data-plane connectivity.
    ExpectFullConnectivity,
}

/// Static facts about the network a sequence of actions runs against.
#[derive(Debug, Clone, Copy)]
pub struct ActionContext<'a> {
    /// AS count.
    pub n: usize,
    /// Undirected inter-AS links, as index pairs.
    pub edges: &'a [(usize, usize)],
    /// True when an SDN cluster (controller + speaker) exists.
    pub has_cluster: bool,
    /// BGP hold time in seconds (0 = hold timers disabled).
    pub hold_secs: u64,
    /// Graceful-restart window in seconds (0 = GR disabled).
    pub graceful_restart_secs: u64,
    /// Default announced prefix per AS index, when known (used to resolve
    /// `prefix: None` and to match expectations; empty = unknown).
    pub origin_prefixes: &'a [Prefix],
    /// True when the sequence runs against an already-started network whose
    /// origin prefixes are announced at bring-up (the framework's
    /// `run_script` semantics); false when it starts from a silent network.
    pub origins_announced: bool,
}

impl ActionContext<'_> {
    fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edges
            .iter()
            .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
    }

    fn default_prefix(&self, as_index: usize) -> Option<Prefix> {
        self.origin_prefixes.get(as_index).copied()
    }
}

/// Tracks network degradation across a validated sequence.
#[derive(Default)]
struct WalkState {
    announced: Vec<(Prefix, usize)>, // (prefix, origin) currently announced
    failed_edges: Vec<(usize, usize)>,
    dropped_edges: Vec<(usize, usize)>,
    crashed_routers: Vec<usize>,
    controller_down: bool,
    channel_partitioned: bool,
    degraded: bool, // any data-plane fault happened at some point
}

fn key(a: usize, b: usize) -> (usize, usize) {
    (a.min(b), a.max(b))
}

/// Validate an ordered action sequence (a script, or the actions of a
/// fault plan in offset order) against the network facts.
pub fn check_actions(actions: &[Action], ctx: &ActionContext) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    let mut st = WalkState::default();
    if ctx.origins_announced {
        st.announced
            .extend(ctx.origin_prefixes.iter().enumerate().map(|(i, &p)| (p, i)));
    }
    for (i, action) in actions.iter().enumerate() {
        report.checked();
        check_one(i, action, ctx, &mut st, &mut report);
    }
    report
}

#[allow(clippy::too_many_lines)]
fn check_one(
    i: usize,
    action: &Action,
    ctx: &ActionContext,
    st: &mut WalkState,
    report: &mut AnalysisReport,
) {
    let step = format!("step {i}");
    let mut as_in_range = |idx: usize, what: &str| -> bool {
        if idx >= ctx.n {
            report.error(
                "script.index_range",
                format!("{step}: {what} index {idx} out of range for {} ASes", ctx.n),
            );
            false
        } else {
            true
        }
    };
    match *action {
        Action::Announce { as_index, prefix } => {
            if as_in_range(as_index, "announce AS") {
                let p = prefix.or_else(|| ctx.default_prefix(as_index));
                if let Some(p) = p {
                    if !st.announced.iter().any(|&(q, _)| q == p) {
                        st.announced.push((p, as_index));
                    }
                }
            }
        }
        Action::Withdraw { as_index, prefix } => {
            if as_in_range(as_index, "withdraw AS") {
                let p = prefix.or_else(|| ctx.default_prefix(as_index));
                if let Some(p) = p {
                    match st.announced.iter().position(|&(q, _)| q == p) {
                        Some(pos) => {
                            st.announced.remove(pos);
                        }
                        None => report.warning(
                            "script.withdraw_unannounced",
                            format!("{step}: withdraws {p}, which is not announced at this point"),
                        ),
                    }
                }
            }
        }
        Action::FailEdge(a, b) | Action::DropEdgeTraffic(a, b) => {
            let drop = matches!(action, Action::DropEdgeTraffic(..));
            if as_in_range(a, "edge endpoint") && as_in_range(b, "edge endpoint") {
                if ctx.has_edge(a, b) {
                    let set = if drop {
                        &mut st.dropped_edges
                    } else {
                        &mut st.failed_edges
                    };
                    if set.contains(&key(a, b)) {
                        report.warning(
                            "script.double_fail",
                            format!("{step}: link AS{a}-AS{b} is already down"),
                        );
                    } else {
                        set.push(key(a, b));
                    }
                    st.degraded = true;
                } else {
                    report.error(
                        "script.unknown_edge",
                        format!("{step}: no link between AS{a} and AS{b} in the topology"),
                    );
                }
            }
        }
        Action::RestoreEdge(a, b) | Action::RestoreEdgeTraffic(a, b) => {
            let drop = matches!(action, Action::RestoreEdgeTraffic(..));
            if as_in_range(a, "edge endpoint") && as_in_range(b, "edge endpoint") {
                if ctx.has_edge(a, b) {
                    let set = if drop {
                        &mut st.dropped_edges
                    } else {
                        &mut st.failed_edges
                    };
                    match set.iter().position(|&e| e == key(a, b)) {
                        Some(pos) => {
                            set.remove(pos);
                        }
                        None => report.warning(
                            "script.restore_unfailed",
                            format!("{step}: link AS{a}-AS{b} is not down at this point"),
                        ),
                    }
                } else {
                    report.error(
                        "script.unknown_edge",
                        format!("{step}: no link between AS{a} and AS{b} in the topology"),
                    );
                }
            }
        }
        Action::CrashRouter(idx) => {
            if as_in_range(idx, "router") {
                if st.crashed_routers.contains(&idx) {
                    report.warning(
                        "script.double_fail",
                        format!("{step}: router AS{idx} is already crashed"),
                    );
                } else {
                    st.crashed_routers.push(idx);
                }
                st.degraded = true;
            }
        }
        Action::RestoreRouter(idx) => {
            if as_in_range(idx, "router") {
                match st.crashed_routers.iter().position(|&r| r == idx) {
                    Some(pos) => {
                        st.crashed_routers.remove(pos);
                    }
                    None => report.warning(
                        "script.restore_unfailed",
                        format!("{step}: router AS{idx} is not crashed at this point"),
                    ),
                }
            }
        }
        Action::CrashController
        | Action::RestoreController
        | Action::PartitionControlChannel
        | Action::HealControlChannel
        | Action::SetControlLoss(_) => {
            if ctx.has_cluster {
                match *action {
                    Action::CrashController => st.controller_down = true,
                    Action::RestoreController => {
                        if !st.controller_down {
                            report.warning(
                                "script.restore_unfailed",
                                format!("{step}: controller is not down at this point"),
                            );
                        }
                        st.controller_down = false;
                    }
                    Action::PartitionControlChannel => st.channel_partitioned = true,
                    Action::HealControlChannel => {
                        if !st.channel_partitioned {
                            report.warning(
                                "script.restore_unfailed",
                                format!("{step}: control channel is not partitioned at this point"),
                            );
                        }
                        st.channel_partitioned = false;
                    }
                    Action::SetControlLoss(loss) => check_loss(&step, loss, report),
                    _ => unreachable!(),
                }
            } else {
                report.error(
                    "script.no_cluster",
                    format!("{step}: controller action but the network has no SDN cluster"),
                );
            }
        }
        Action::SetEdgeLoss(a, b, loss) => {
            if as_in_range(a, "edge endpoint") && as_in_range(b, "edge endpoint") {
                if !ctx.has_edge(a, b) {
                    report.error(
                        "script.unknown_edge",
                        format!("{step}: no link between AS{a} and AS{b} in the topology"),
                    );
                }
                check_loss(&step, loss, report);
                if loss > 0.0 {
                    st.degraded = true;
                }
            }
        }
        Action::Mark => {}
        Action::WaitConverged { max } => {
            if max == SimDuration::ZERO {
                report.warning(
                    "script.zero_wait",
                    format!(
                        "{step}: wait_converged with a zero deadline can never observe convergence"
                    ),
                );
            }
        }
        Action::RunFor(d) => {
            if d == SimDuration::ZERO {
                report.warning(
                    "script.zero_wait",
                    format!("{step}: run_for(0) does nothing"),
                );
            }
        }
        Action::ExpectReachable { prefix, origin } => {
            if as_in_range(origin, "expected origin") {
                match st.announced.iter().find(|&&(q, _)| q == prefix) {
                    None => report.error(
                        "script.expect_unreachable",
                        format!(
                            "{step}: expect_reachable({prefix}) but no earlier step announces it"
                        ),
                    ),
                    Some(&(_, actual)) if actual != origin => report.error(
                        "script.expect_origin_mismatch",
                        format!(
                            "{step}: expect_reachable({prefix}) names origin AS{origin} but \
                             AS{actual} announced it"
                        ),
                    ),
                    Some(_) => {
                        if st.crashed_routers.contains(&origin) {
                            report.error(
                                "script.expect_unreachable",
                                format!(
                                    "{step}: expect_reachable({prefix}) while its origin \
                                     AS{origin} is crashed"
                                ),
                            );
                        }
                    }
                }
            }
        }
        Action::ExpectGone { prefix } => {
            if let Some(&(_, origin)) = st.announced.iter().find(|&&(q, _)| q == prefix) {
                if !st.degraded {
                    report.error(
                        "script.expect_gone_announced",
                        format!(
                            "{step}: expect_gone({prefix}) but AS{origin} still announces it \
                             and no fault has been injected"
                        ),
                    );
                }
            }
        }
        Action::ExpectFullConnectivity => {
            if let Some(&r) = st.crashed_routers.first() {
                report.error(
                    "script.expect_unreachable",
                    format!("{step}: expect_full_connectivity while router AS{r} is crashed"),
                );
            }
        }
    }
}

fn check_loss(step: &str, loss: f64, report: &mut AnalysisReport) {
    if !(0.0..=1.0).contains(&loss) || loss.is_nan() {
        report.error(
            "script.loss_range",
            format!("{step}: loss {loss} outside [0, 1]"),
        );
    }
}

/// Validate a timed fault plan: per-action checks (in offset order) plus
/// horizon and hold-timer consistency.
pub fn check_timed(
    events: &[(SimDuration, Action)],
    horizon: SimDuration,
    ctx: &ActionContext,
) -> AnalysisReport {
    let mut ordered: Vec<(SimDuration, Action)> = events.to_vec();
    ordered.sort_by_key(|&(t, _)| t);
    let actions: Vec<Action> = ordered.iter().map(|&(_, a)| a).collect();
    let mut report = check_actions(&actions, ctx);
    for &(t, ref a) in &ordered {
        report.checked();
        if t > horizon {
            report.error(
                "plan.past_horizon",
                format!(
                    "fault at +{}ms is past the plan horizon (+{}ms) and will never fire \
                     within the measured window",
                    t.as_millis(),
                    horizon.as_millis()
                ),
            );
        }
        let needs_hold = matches!(
            a,
            Action::CrashRouter(_)
                | Action::FailEdge(..)
                | Action::DropEdgeTraffic(..)
                | Action::SetEdgeLoss(..)
        );
        if needs_hold && ctx.hold_secs == 0 {
            report.error(
                "plan.hold_timers",
                format!(
                    "fault `{a:?}` needs hold timers to be detectable, but hold time is 0 \
                     (sessions never expire)"
                ),
            );
        }
    }
    report
}

/// Validate the timer configuration itself.
pub fn check_timing(hold_secs: u64, graceful_restart_secs: u64) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    report.checked_n(2);
    if graceful_restart_secs > 0 && hold_secs == 0 {
        report.error(
            "timing.gr_without_hold",
            format!(
                "graceful restart ({graceful_restart_secs}s) is configured but hold timers \
                 are disabled; stale paths would be retained forever"
            ),
        );
    } else if graceful_restart_secs > 0 && graceful_restart_secs < hold_secs {
        report.warning(
            "timing.gr_shorter_than_hold",
            format!(
                "graceful-restart window ({graceful_restart_secs}s) is shorter than the hold \
                 time ({hold_secs}s); peers drop the session before the restart window ends"
            ),
        );
    }
    report
}

/// Neutral mirror of a campaign grid, for fail-fast cell rejection.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Topology size.
    pub n: usize,
    /// Event kind label (`"withdrawal"`, `"announcement"`, `"failover"`).
    pub event: &'static str,
    /// Cluster-size axis.
    pub cluster_sizes: Vec<usize>,
    /// Control-channel loss axis.
    pub losses: Vec<f64>,
    /// Control-latency axis (element count only matters for emptiness).
    pub ctl_latency_count: usize,
    /// Seeds per cell.
    pub seeds: u64,
    /// Chaos fault spec, when configured: `(outages, horizon)`.
    pub faults: Option<(usize, SimDuration)>,
    /// Cluster-count axis (`--clusters`): how many independent SDN clusters
    /// to split each cell's members into. Empty = single-cluster default.
    pub cluster_counts: Vec<usize>,
    /// Deployment strategy name, when one is configured (`--strategy`).
    pub strategy: Option<&'static str>,
}

/// Deployment strategy names the framework recognizes, in canonical order.
pub const STRATEGY_NAMES: &[&str] = &["explicit", "tail", "random", "degree", "kcore", "tier"];

/// Minimum topology size per event kind (failover needs the dual-homed
/// origin construction).
fn event_min_n(event: &str) -> usize {
    match event {
        "failover" => 5,
        _ => 2,
    }
}

/// Validate a campaign grid before any worker spins.
pub fn check_grid(spec: &GridSpec) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    report.checked();
    if spec.seeds == 0 {
        report.error(
            "grid.no_seeds",
            "grid has zero seeds per cell: no jobs would run",
        );
    }
    report.checked();
    if spec.cluster_sizes.is_empty() || spec.losses.is_empty() || spec.ctl_latency_count == 0 {
        report.error(
            "grid.empty_axis",
            "a grid axis is empty: the cell product is zero and no jobs would run",
        );
    }
    for &size in &spec.cluster_sizes {
        report.checked();
        if size > spec.n {
            report.error(
                "grid.cluster_size",
                format!(
                    "cluster size {size} exceeds the topology size {}; members would be out \
                     of range",
                    spec.n
                ),
            );
        }
    }
    for &loss in &spec.losses {
        report.checked();
        if !(0.0..=1.0).contains(&loss) || loss.is_nan() {
            report.error(
                "grid.loss_range",
                format!("control-channel loss {loss} outside [0, 1]"),
            );
        }
    }
    report.checked();
    let min_n = event_min_n(spec.event);
    if spec.n < min_n {
        report.error(
            "grid.event_requires",
            format!(
                "event kind `{}` needs at least {min_n} ASes, grid has n={}",
                spec.event, spec.n
            ),
        );
    }
    if let Some((outages, horizon)) = spec.faults {
        report.checked();
        if outages > 0 && horizon == SimDuration::ZERO {
            report.error(
                "grid.chaos_horizon",
                "chaos fault spec has outages but a zero horizon: no fault could ever fire",
            );
        }
    }
    for &k in &spec.cluster_counts {
        report.checked();
        if k == 0 {
            report.error(
                "grid.cluster_count",
                "cluster count 0 in the clusters axis; use cluster size 0 for a \
                 pure-legacy cell",
            );
            continue;
        }
        for &size in &spec.cluster_sizes {
            if k > 1 && size > 0 && size < k {
                report.checked();
                report.error(
                    "grid.cluster_count",
                    format!("cannot split {size} SDN members into {k} non-empty clusters"),
                );
            }
        }
    }
    if let Some(s) = spec.strategy {
        report.checked();
        if !STRATEGY_NAMES.contains(&s) {
            report.error(
                "grid.unknown_strategy",
                format!(
                    "unknown deployment strategy `{s}`; known: {}",
                    STRATEGY_NAMES.join(", ")
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsdn_bgp::pfx;

    fn ctx<'a>(edges: &'a [(usize, usize)], prefixes: &'a [Prefix]) -> ActionContext<'a> {
        ActionContext {
            n: 4,
            edges,
            has_cluster: false,
            hold_secs: 9,
            graceful_restart_secs: 0,
            origin_prefixes: prefixes,
            origins_announced: false,
        }
    }

    #[test]
    fn out_of_range_index_is_an_error() {
        let edges = [(0, 1)];
        let c = ctx(&edges, &[]);
        let r = check_actions(
            &[Action::Announce {
                as_index: 7,
                prefix: None,
            }],
            &c,
        );
        assert_eq!(r.first_error().unwrap().code, "script.index_range");
    }

    #[test]
    fn unknown_edge_is_an_error() {
        let edges = [(0, 1)];
        let c = ctx(&edges, &[]);
        let r = check_actions(&[Action::FailEdge(2, 3)], &c);
        assert_eq!(r.first_error().unwrap().code, "script.unknown_edge");
    }

    #[test]
    fn loss_range_is_checked() {
        let edges = [(0, 1)];
        let c = ctx(&edges, &[]);
        let r = check_actions(&[Action::SetEdgeLoss(0, 1, 1.5)], &c);
        assert_eq!(r.first_error().unwrap().code, "script.loss_range");
        let r = check_actions(&[Action::SetEdgeLoss(0, 1, f64::NAN)], &c);
        assert_eq!(r.first_error().unwrap().code, "script.loss_range");
    }

    #[test]
    fn controller_actions_need_a_cluster() {
        let edges = [(0, 1)];
        let c = ctx(&edges, &[]);
        let r = check_actions(&[Action::CrashController], &c);
        assert_eq!(r.first_error().unwrap().code, "script.no_cluster");
    }

    #[test]
    fn expectation_lifecycle_is_tracked() {
        let p = pfx("10.0.0.0/24");
        let q = pfx("10.0.1.0/24");
        let edges = [(0, 1)];
        let prefixes = [p, q];
        let c = ctx(&edges, &prefixes);
        // Reachable-before-announce is an error.
        let r = check_actions(
            &[Action::ExpectReachable {
                prefix: p,
                origin: 0,
            }],
            &c,
        );
        assert_eq!(r.first_error().unwrap().code, "script.expect_unreachable");
        // Wrong origin is an error.
        let r = check_actions(
            &[
                Action::Announce {
                    as_index: 0,
                    prefix: Some(p),
                },
                Action::ExpectReachable {
                    prefix: p,
                    origin: 1,
                },
            ],
            &c,
        );
        assert_eq!(
            r.first_error().unwrap().code,
            "script.expect_origin_mismatch"
        );
        // Gone-while-announced with no fault is an error; after a fault it
        // is accepted.
        let r = check_actions(
            &[
                Action::Announce {
                    as_index: 0,
                    prefix: Some(p),
                },
                Action::ExpectGone { prefix: p },
            ],
            &c,
        );
        assert_eq!(
            r.first_error().unwrap().code,
            "script.expect_gone_announced"
        );
        let r = check_actions(
            &[
                Action::Announce {
                    as_index: 0,
                    prefix: Some(p),
                },
                Action::FailEdge(0, 1),
                Action::ExpectGone { prefix: p },
            ],
            &c,
        );
        assert!(r.ok(), "{}", r.render());
        // The happy path (announce, expect, withdraw, expect gone) is clean.
        let r = check_actions(
            &[
                Action::Announce {
                    as_index: 0,
                    prefix: None,
                },
                Action::ExpectReachable {
                    prefix: p,
                    origin: 0,
                },
                Action::Withdraw {
                    as_index: 0,
                    prefix: None,
                },
                Action::ExpectGone { prefix: p },
            ],
            &c,
        );
        assert!(r.clean(), "{}", r.render());
    }

    #[test]
    fn started_network_seeds_origin_announcements() {
        let p = pfx("10.0.0.0/24");
        let q = pfx("10.0.1.0/24");
        let edges = [(0, 1)];
        let prefixes = [p, q];
        let mut c = ctx(&edges, &prefixes);
        c.origins_announced = true;
        // On a started network the origin prefixes are reachable without a
        // script-level announce...
        let r = check_actions(
            &[Action::ExpectReachable {
                prefix: q,
                origin: 1,
            }],
            &c,
        );
        assert!(r.clean(), "{}", r.render());
        // ...and expecting one gone without a withdraw or fault is impossible.
        let r = check_actions(&[Action::ExpectGone { prefix: p }], &c);
        assert_eq!(
            r.first_error().unwrap().code,
            "script.expect_gone_announced"
        );
        // Withdrawing a seeded prefix is not "unannounced".
        let r = check_actions(
            &[
                Action::Withdraw {
                    as_index: 0,
                    prefix: None,
                },
                Action::ExpectGone { prefix: p },
            ],
            &c,
        );
        assert!(r.clean(), "{}", r.render());
    }

    #[test]
    fn restore_and_double_fail_warnings() {
        let edges = [(0, 1)];
        let c = ctx(&edges, &[]);
        let r = check_actions(
            &[
                Action::FailEdge(0, 1),
                Action::FailEdge(0, 1),
                Action::RestoreEdge(0, 1),
                Action::RestoreEdge(0, 1),
                Action::RestoreRouter(2),
            ],
            &c,
        );
        assert!(r.ok());
        let codes: Vec<&str> = r.findings.iter().map(|f| f.code).collect();
        assert_eq!(
            codes,
            vec![
                "script.double_fail",
                "script.restore_unfailed",
                "script.restore_unfailed"
            ]
        );
    }

    #[test]
    fn plan_horizon_and_hold_timers() {
        let edges = [(0, 1)];
        let mut c = ctx(&edges, &[]);
        c.hold_secs = 0;
        let horizon = SimDuration::from_secs(60);
        let events = vec![
            (SimDuration::from_secs(10), Action::FailEdge(0, 1)),
            (SimDuration::from_secs(90), Action::RestoreEdge(0, 1)),
        ];
        let r = check_timed(&events, horizon, &c);
        let codes: Vec<&str> = r
            .findings
            .iter()
            .filter(|f| f.severity == crate::finding::Severity::Error)
            .map(|f| f.code)
            .collect();
        assert!(codes.contains(&"plan.past_horizon"), "{codes:?}");
        assert!(codes.contains(&"plan.hold_timers"), "{codes:?}");
        // With hold timers and an in-horizon restore, clean.
        c.hold_secs = 9;
        let events = vec![
            (SimDuration::from_secs(10), Action::FailEdge(0, 1)),
            (SimDuration::from_secs(30), Action::RestoreEdge(0, 1)),
        ];
        assert!(check_timed(&events, horizon, &c).clean());
    }

    #[test]
    fn timing_consistency() {
        assert!(check_timing(9, 0).clean());
        assert!(check_timing(0, 0).clean());
        let r = check_timing(0, 120);
        assert_eq!(r.first_error().unwrap().code, "timing.gr_without_hold");
        let r = check_timing(9, 5);
        assert!(r.ok());
        assert_eq!(r.findings[0].code, "timing.gr_shorter_than_hold");
    }

    fn base_grid() -> GridSpec {
        GridSpec {
            n: 16,
            event: "withdrawal",
            cluster_sizes: (0..=16).collect(),
            losses: vec![0.0],
            ctl_latency_count: 1,
            seeds: 10,
            faults: None,
            cluster_counts: vec![],
            strategy: None,
        }
    }

    #[test]
    fn fig2_like_grid_is_clean() {
        assert!(check_grid(&base_grid()).clean());
    }

    #[test]
    fn grid_mutations_are_each_caught() {
        let mut g = base_grid();
        g.cluster_sizes = vec![20];
        assert_eq!(
            check_grid(&g).first_error().unwrap().code,
            "grid.cluster_size"
        );
        let mut g = base_grid();
        g.losses = vec![-0.1];
        assert_eq!(
            check_grid(&g).first_error().unwrap().code,
            "grid.loss_range"
        );
        let mut g = base_grid();
        g.seeds = 0;
        assert_eq!(check_grid(&g).first_error().unwrap().code, "grid.no_seeds");
        let mut g = base_grid();
        g.losses = vec![];
        assert_eq!(
            check_grid(&g).first_error().unwrap().code,
            "grid.empty_axis"
        );
        let mut g = base_grid();
        g.event = "failover";
        g.n = 4;
        g.cluster_sizes = vec![0, 4];
        assert_eq!(
            check_grid(&g).first_error().unwrap().code,
            "grid.event_requires"
        );
        let mut g = base_grid();
        g.faults = Some((3, SimDuration::ZERO));
        assert_eq!(
            check_grid(&g).first_error().unwrap().code,
            "grid.chaos_horizon"
        );
    }

    #[test]
    fn cluster_count_axis_is_validated() {
        let mut g = base_grid();
        g.cluster_sizes = vec![0, 8, 16];
        g.cluster_counts = vec![1, 2, 4];
        assert!(check_grid(&g).clean(), "{}", check_grid(&g).render());
        // Size-0 cells (pure legacy) coexist with any cluster count, but a
        // non-zero size smaller than the count is unsplittable.
        let mut g = base_grid();
        g.cluster_sizes = vec![0, 2];
        g.cluster_counts = vec![4];
        assert_eq!(
            check_grid(&g).first_error().unwrap().code,
            "grid.cluster_count"
        );
        let mut g = base_grid();
        g.cluster_counts = vec![0];
        assert_eq!(
            check_grid(&g).first_error().unwrap().code,
            "grid.cluster_count"
        );
    }

    #[test]
    fn strategy_names_are_validated() {
        let mut g = base_grid();
        g.strategy = Some("degree");
        assert!(check_grid(&g).clean());
        g.strategy = Some("bogus");
        assert_eq!(
            check_grid(&g).first_error().unwrap().code,
            "grid.unknown_strategy"
        );
    }
}
