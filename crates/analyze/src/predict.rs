//! Prediction pass — static reachability and path-hunting depth bounds.
//!
//! Two questions answerable from the policy graph alone, before any packet
//! is simulated:
//!
//! 1. **Who can reach a prefix?** Physical connectivity is necessary but
//!    not sufficient — under Gao–Rexford export rules a route learned from
//!    a peer or provider is re-exported to customers only, so a
//!    physically-connected node can still be policy-partitioned from an
//!    origin (the classic valley-free reachability question). The pass
//!    distinguishes hard partitions (`predict.partition`, an error: an
//!    `ExpectReachable` against such a node can never pass) from
//!    policy-blocked nodes (`predict.unreachable`, a warning: the
//!    annotations say no valley-free path exists).
//!
//! 2. **How long can path hunting last?** After a withdrawal, BGP explores
//!    ever-longer alternate paths before giving up — the path-hunting
//!    process the paper measures. Each hunting step extends the best known
//!    (simple) path by at least one AS hop, so the number of `hunt_step`
//!    phases for one prefix is bounded by the longest simple path that can
//!    be explored: at most `component_size - 1` hops inside the origin's
//!    connected component. Centralization shrinks the bound: the SDN
//!    cluster acts as one logical node (the controller hunts internally in
//!    zero exchanged UPDATEs), so the component is measured on the
//!    **member-contracted** graph. For the paper's 16-clique this gives
//!    bounds of 15 (sdn 0), 8 (sdn 8), and 0 (sdn 16) — the static shadow
//!    of Fig. 2's convergence-time curve.

use bgpsdn_bgp::{export_allowed, import_allowed, PolicyMode, Relationship};
use bgpsdn_topology::AsGraph;

use crate::finding::AnalysisReport;
use crate::safety::contract_members;

/// How a route is held at a node, for export gating: `None` = locally
/// originated, `Some(rel)` = learned from a neighbor of that relationship.
type HeldAs = Option<Relationship>;

const CLASSES: [HeldAs; 4] = [
    None,
    Some(Relationship::Customer),
    Some(Relationship::Peer),
    Some(Relationship::Provider),
];

fn class_idx(c: HeldAs) -> usize {
    match c {
        None => 0,
        Some(Relationship::Customer) => 1,
        Some(Relationship::Peer) => 2,
        // Monitor never appears on an AsEdge; class with Provider.
        Some(Relationship::Provider | Relationship::Monitor) => 3,
    }
}

/// Which nodes can hold a route originated at `origin`, under `mode`'s
/// import/export policy — BFS over `(node, learned-from-class)` states.
pub fn policy_reachable(g: &AsGraph, mode: PolicyMode, origin: usize) -> Vec<bool> {
    let n = g.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n]; // edge indices
    for (i, e) in g.edges.iter().enumerate() {
        adj[e.a].push(i);
        adj[e.b].push(i);
    }
    let mut seen = vec![[false; CLASSES.len()]; n];
    seen[origin][0] = true;
    let mut queue = std::collections::VecDeque::from([(origin, None as HeldAs)]);
    while let Some((x, held)) = queue.pop_front() {
        for &ei in &adj[x] {
            let e = &g.edges[ei];
            let y = e.other(x);
            let rel_y_from_x = e.relationship_from(x);
            if !export_allowed(mode, held, rel_y_from_x) {
                continue;
            }
            let rel_x_from_y = e.relationship_from(y);
            if !import_allowed(rel_x_from_y) {
                continue;
            }
            let next = Some(rel_x_from_y);
            if !seen[y][class_idx(next)] {
                seen[y][class_idx(next)] = true;
                queue.push_back((y, next));
            }
        }
    }
    seen.iter().map(|s| s.iter().any(|&b| b)).collect()
}

/// Connected component membership ignoring policy: `component[v] == component[w]`
/// iff `v` and `w` are connected in the undirected graph.
pub fn components(g: &AsGraph) -> Vec<usize> {
    let n = g.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &g.edges {
        adj[e.a].push(e.b);
        adj[e.b].push(e.a);
    }
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for root in 0..n {
        if comp[root] != usize::MAX {
            continue;
        }
        comp[root] = next;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if comp[w] == usize::MAX {
                    comp[w] = next;
                    stack.push(w);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Check that every node can hold a route from each origin in `origins`.
/// Physical partitions are errors; policy-only blocks are warnings.
pub fn check_reachability(g: &AsGraph, mode: PolicyMode, origins: &[usize]) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    let n = g.len();
    let comp = components(g);
    for &origin in origins {
        if origin >= n {
            report.checked();
            report.error(
                "predict.origin_range",
                format!("origin index {origin} out of range for {n} ASes"),
            );
            continue;
        }
        let reach = policy_reachable(g, mode, origin);
        let mut partitioned = Vec::new();
        let mut blocked = Vec::new();
        for v in 0..n {
            report.checked();
            if v == origin || reach[v] {
                continue;
            }
            if comp[v] == comp[origin] {
                blocked.push(v);
            } else {
                partitioned.push(v);
            }
        }
        if !partitioned.is_empty() {
            report.error_with(
                "predict.partition",
                format!(
                    "{} of {} ASes are physically partitioned from origin AS{}; \
                     reachability expectations against them can never hold",
                    partitioned.len(),
                    n,
                    g.asns[origin].0
                ),
                list_asns(g, &partitioned),
            );
        }
        if !blocked.is_empty() {
            report.findings.push(crate::finding::Finding {
                severity: crate::finding::Severity::Warning,
                code: "predict.unreachable",
                message: format!(
                    "{} AS(es) are connected to origin AS{} but have no valley-free path \
                     to it under the {mode:?} policy",
                    blocked.len(),
                    g.asns[origin].0
                ),
                witness: Some(list_asns(g, &blocked)),
            });
        }
    }
    report
}

/// Upper bound on the number of path-hunting steps (`hunt_step` phases in
/// `bgpsdn explain`) any node performs for a prefix originated at `origin`,
/// with the SDN cluster `members` contracted to one logical node. Each hunt
/// step commits to a strictly longer simple AS path, so the count is
/// bounded by the longest simple path available: `component_size - 1`.
pub fn hunt_depth_bound(g: &AsGraph, members: &[usize], origin: usize) -> usize {
    let mut sorted: Vec<usize> = members.iter().copied().filter(|&m| m < g.len()).collect();
    sorted.sort_unstable();
    sorted.dedup();
    let (cg, corigin) = if sorted.len() >= 2 {
        let c = contract_members(g, &sorted);
        let co = c.map[origin];
        (c.graph, co)
    } else {
        (g.clone(), origin)
    };
    let comp = components(&cg);
    let size = comp.iter().filter(|&&c| c == comp[corigin]).count();
    size.saturating_sub(1)
}

/// Multi-cluster variant of [`hunt_depth_bound`]: **every** cluster
/// contracts to its own logical node before the component is measured, so
/// two 4-member clusters on a 16-clique leave `16 - 8 + 2 = 10` logical
/// nodes and a bound of 9. With zero or one clusters this equals
/// [`hunt_depth_bound`] over the flattened member list.
pub fn hunt_depth_bound_clusters(g: &AsGraph, clusters: &[Vec<usize>], origin: usize) -> usize {
    let sanitized: Vec<Vec<usize>> = clusters
        .iter()
        .map(|members| {
            let mut s: Vec<usize> = members.iter().copied().filter(|&m| m < g.len()).collect();
            s.sort_unstable();
            s.dedup();
            s
        })
        .filter(|s| !s.is_empty())
        .collect();
    if sanitized.len() <= 1 {
        let flat: Vec<usize> = sanitized.into_iter().flatten().collect();
        return hunt_depth_bound(g, &flat, origin);
    }
    let c = crate::safety::contract_clusters(g, &sanitized);
    let comp = components(&c.graph);
    let size = comp.iter().filter(|&&k| k == comp[c.map[origin]]).count();
    size.saturating_sub(1)
}

fn list_asns(g: &AsGraph, nodes: &[usize]) -> String {
    nodes
        .iter()
        .map(|&v| format!("AS{}", g.asns[v].0))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsdn_bgp::Asn;
    use bgpsdn_topology::{gen, AsEdge, EdgeKind};

    fn pc(a: usize, b: usize) -> AsEdge {
        AsEdge {
            a,
            b,
            kind: EdgeKind::ProviderCustomer,
        }
    }

    fn pp(a: usize, b: usize) -> AsEdge {
        AsEdge {
            a,
            b,
            kind: EdgeKind::PeerPeer,
        }
    }

    fn graph(n: usize, edges: Vec<AsEdge>) -> AsGraph {
        AsGraph {
            asns: (0..n)
                .map(|i| Asn(65000 + u32::try_from(i).unwrap()))
                .collect(),
            edges,
        }
    }

    #[test]
    fn clique_is_fully_reachable() {
        let g = AsGraph::all_peer(&gen::clique(6), 65000);
        let r = check_reachability(&g, PolicyMode::AllPermit, &[0, 3]);
        assert!(r.clean(), "{}", r.render());
    }

    #[test]
    fn physical_partition_is_an_error() {
        // 0-1 connected, 2 isolated.
        let g = graph(3, vec![pp(0, 1)]);
        let r = check_reachability(&g, PolicyMode::AllPermit, &[0]);
        assert!(!r.ok());
        let f = r.first_error().unwrap();
        assert_eq!(f.code, "predict.partition");
        assert_eq!(f.witness.as_deref(), Some("AS65002"));
    }

    #[test]
    fn valley_blocked_node_is_a_warning() {
        // 1 and 2 are both providers of 0 (a stub); 1 and 2 are NOT
        // connected to each other. A route originated at 1 reaches 0
        // (provider -> customer) but 0 may not re-export a provider route
        // to another provider: 2 is policy-unreachable though connected.
        let g = graph(3, vec![pc(1, 0), pc(2, 0)]);
        let r = check_reachability(&g, PolicyMode::GaoRexford, &[1]);
        assert!(r.ok(), "{}", r.render());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].code, "predict.unreachable");
        assert_eq!(r.findings[0].witness.as_deref(), Some("AS65002"));
        // The same graph under AllPermit has no valley rule: clean.
        let r2 = check_reachability(&g, PolicyMode::AllPermit, &[1]);
        assert!(r2.clean(), "{}", r2.render());
    }

    #[test]
    fn hunt_bound_matches_fig2_cluster_sizes() {
        // The paper's 16-clique: bound 15 legacy-only, 8 at half
        // centralization, 0 fully centralized.
        let g = AsGraph::all_peer(&gen::clique(16), 65000);
        assert_eq!(hunt_depth_bound(&g, &[], 0), 15);
        let members8: Vec<usize> = (8..16).collect();
        assert_eq!(hunt_depth_bound(&g, &members8, 0), 8);
        let members16: Vec<usize> = (0..16).collect();
        assert_eq!(hunt_depth_bound(&g, &members16, 0), 0);
    }

    #[test]
    fn cluster_hunt_bound_counts_each_cluster_as_one_node() {
        let g = AsGraph::all_peer(&gen::clique(16), 65000);
        // One 8-member cluster: same as the single-cluster bound.
        let one: Vec<Vec<usize>> = vec![(8..16).collect()];
        assert_eq!(hunt_depth_bound_clusters(&g, &one, 0), 8);
        // The same 8 members in two clusters hunt against each other: one
        // extra logical node, bound 9.
        let two: Vec<Vec<usize>> = vec![(8..12).collect(), (12..16).collect()];
        assert_eq!(hunt_depth_bound_clusters(&g, &two, 0), 9);
        // No clusters at all: the raw bound.
        assert_eq!(hunt_depth_bound_clusters(&g, &[], 0), 15);
    }

    #[test]
    fn hunt_bound_is_per_component() {
        // Two disjoint triangles: hunting never crosses the partition.
        let g = graph(
            6,
            vec![pp(0, 1), pp(1, 2), pp(2, 0), pp(3, 4), pp(4, 5), pp(5, 3)],
        );
        assert_eq!(hunt_depth_bound(&g, &[], 0), 2);
        assert_eq!(hunt_depth_bound(&g, &[], 3), 2);
    }
}
