//! Safety pass — Gao–Rexford conformance and the cluster boundary.
//!
//! The Gao–Rexford theorem: if (a) the customer→provider digraph is acyclic
//! and (b) every AS prefers customer routes and exports peer/provider routes
//! to customers only, then BGP is safe — it converges to a unique stable
//! state from any starting point and message ordering. The framework's
//! `PolicyMode::GaoRexford` template enforces (b) by construction, so the
//! static proof obligation reduces to (a): acyclicity of the annotated
//! provider hierarchy. This pass checks it with an explicit witness cycle
//! rather than the boolean answer [`AsGraph::provider_hierarchy_acyclic`]
//! gives.
//!
//! The hybrid deployment adds a twist the plain theorem does not cover: the
//! paper's SDN cluster behaves as **one logical routing node** (members
//! share the controller's RIB and decisions), so the relevant policy graph
//! is the original graph with all cluster members *contracted* to a single
//! vertex. Contraction can manufacture a provider cycle that the
//! uncontracted graph does not have — e.g. outside AS X is a provider of
//! member A while member B is a provider of X: after contraction the
//! cluster is simultaneously above and below X in the hierarchy. The pass
//! re-runs the acyclicity proof on the contracted graph and reports
//! boundary-induced relationship conflicts and cycles separately, since the
//! fix (cluster membership) differs from the fix for a plain bad hierarchy
//! (relationship annotations).
//!
//! When explicit per-session override rules are present the template
//! argument no longer applies and the pass falls back to the explicit SPP
//! solver ([`crate::spp`]) per origin, flagging any dispute wheel found.

use bgpsdn_bgp::PolicyMode;
use bgpsdn_topology::{AsEdge, AsGraph, EdgeKind};

use crate::finding::AnalysisReport;
use crate::spp::{render_cycle, PathRule, SppCaps, SppInstance, SppOutcome};

/// Everything the safety pass looks at.
#[derive(Debug, Clone, Copy)]
pub struct SafetyInput<'a> {
    /// The relationship-annotated AS graph.
    pub graph: &'a AsGraph,
    /// The policy template routers run.
    pub mode: PolicyMode,
    /// SDN cluster member indices (empty = pure legacy BGP).
    pub members: &'a [usize],
    /// Explicit per-session LOCAL_PREF override rules, if any.
    pub rules: &'a [PathRule],
}

/// Multi-cluster variant of [`SafetyInput`]: each cluster contracts to its
/// own logical vertex in the boundary proof.
#[derive(Debug, Clone, Copy)]
pub struct SafetyClustersInput<'a> {
    /// The relationship-annotated AS graph.
    pub graph: &'a AsGraph,
    /// The policy template routers run.
    pub mode: PolicyMode,
    /// Disjoint SDN cluster membership lists (empty = pure legacy BGP).
    pub clusters: &'a [Vec<usize>],
    /// Explicit per-session LOCAL_PREF override rules, if any.
    pub rules: &'a [PathRule],
}

/// Run the full safety pass.
#[allow(clippy::too_many_lines)]
pub fn check_safety(input: &SafetyInput) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    let g = input.graph;
    let n = g.len();

    // Cluster membership must name real ASes, without duplicates.
    for &m in input.members {
        report.checked();
        if m >= n {
            report.error(
                "cluster.member_range",
                format!("SDN member index {m} out of range for {n} ASes"),
            );
        }
    }
    let mut sorted_members: Vec<usize> = input.members.iter().copied().filter(|&m| m < n).collect();
    sorted_members.sort_unstable();
    sorted_members.dedup();
    if sorted_members.len() != input.members.iter().filter(|&&m| m < n).count() {
        report.warning(
            "cluster.member_duplicate",
            "SDN member list contains duplicate indices",
        );
    }

    // (a) Provider hierarchy acyclicity on the raw graph.
    check_raw_hierarchy(g, input.mode, &mut report);

    // (b) The legacy<->cluster boundary: contract members to one node and
    // re-prove. Only meaningful with >= 2 members and relationship-sensitive
    // policy.
    if sorted_members.len() >= 2 && input.mode == PolicyMode::GaoRexford {
        let contracted = contract_members(g, &sorted_members);
        for (x, up, down) in &contracted.conflicts {
            report.checked();
            report.error_with(
                "cluster.boundary_conflict",
                format!(
                    "AS{} is provider of cluster member AS{} but customer of member AS{}; \
                     after cluster contraction its relationship to the logical node is \
                     ambiguous",
                    g.asns[*x].0, g.asns[*down].0, g.asns[*up].0
                ),
                format!(
                    "AS{} -> cluster(AS{}), cluster(AS{}) -> AS{}",
                    g.asns[*x].0, g.asns[*down].0, g.asns[*up].0, g.asns[*x].0
                ),
            );
        }
        report.checked();
        if let Some(cycle) = provider_cycle(&contracted.graph) {
            // Only report as boundary-induced when the raw graph was clean;
            // otherwise the raw finding above already covers it.
            if provider_cycle(g).is_none() {
                report.error_with(
                    "cluster.boundary_cycle",
                    "contracting the SDN cluster to one logical node creates a provider \
                     cycle; the hybrid deployment breaks Gao-Rexford safety",
                    render_contracted_cycle(&contracted, &cycle),
                );
            }
        }
    }

    // (c) Explicit overrides void the template proof: run the SPP solver
    // per origin on the (small) instance.
    check_rules(g, input.mode, input.rules, &mut report);

    report
}

/// Multi-cluster safety pass: membership validation across all clusters,
/// the raw-hierarchy proof, the boundary proof with **every** cluster
/// contracted to its own logical vertex, and the rule-driven SPP fallback.
/// With zero or one clusters this is exactly [`check_safety`] over the
/// flattened member list, finding for finding.
pub fn check_safety_clusters(input: &SafetyClustersInput) -> AnalysisReport {
    if input.clusters.len() <= 1 {
        let flat: Vec<usize> = input.clusters.iter().flatten().copied().collect();
        return check_safety(&SafetyInput {
            graph: input.graph,
            mode: input.mode,
            members: &flat,
            rules: input.rules,
        });
    }
    let mut report = AnalysisReport::new();
    let g = input.graph;
    let n = g.len();

    // Membership must name real ASes, and no AS may serve two controllers.
    let mut owner = vec![usize::MAX; n];
    for (c, members) in input.clusters.iter().enumerate() {
        for &m in members {
            report.checked();
            if m >= n {
                report.error(
                    "cluster.member_range",
                    format!("cluster {c}: SDN member index {m} out of range for {n} ASes"),
                );
            } else if owner[m] == usize::MAX {
                owner[m] = c;
            } else {
                report.error(
                    "cluster.member_overlap",
                    format!(
                        "AS index {m} is claimed by clusters {} and {c}; cluster \
                         membership must be disjoint",
                        owner[m]
                    ),
                );
            }
        }
    }
    let membership_valid = report.ok();

    check_raw_hierarchy(g, input.mode, &mut report);

    // Boundary proof: contract every (valid, >= 2 member) cluster to its
    // own vertex simultaneously and re-prove acyclicity.
    let sanitized: Vec<Vec<usize>> = input
        .clusters
        .iter()
        .map(|members| {
            let mut s: Vec<usize> = members.iter().copied().filter(|&m| m < n).collect();
            s.sort_unstable();
            s.dedup();
            s
        })
        .filter(|s| !s.is_empty())
        .collect();
    if membership_valid
        && input.mode == PolicyMode::GaoRexford
        && sanitized.iter().any(|s| s.len() >= 2)
    {
        let contracted = contract_clusters(g, &sanitized);
        for &(c, x, up, down) in &contracted.conflicts {
            report.checked();
            report.error_with(
                "cluster.boundary_conflict",
                format!(
                    "AS{} is provider of cluster {c} member AS{} but customer of member \
                     AS{}; after cluster contraction its relationship to the logical node \
                     is ambiguous",
                    g.asns[x].0, g.asns[down].0, g.asns[up].0
                ),
                format!(
                    "AS{} -> cluster{c}(AS{}), cluster{c}(AS{}) -> AS{}",
                    g.asns[x].0, g.asns[down].0, g.asns[up].0, g.asns[x].0
                ),
            );
        }
        report.checked();
        if let Some(cycle) = provider_cycle(&contracted.graph) {
            // Only boundary-induced when the raw graph was clean.
            if provider_cycle(g).is_none() {
                report.error_with(
                    "cluster.boundary_cycle",
                    "contracting the SDN clusters to logical nodes creates a provider \
                     cycle; the hybrid deployment breaks Gao-Rexford safety",
                    render_clusters_cycle(&contracted, &cycle),
                );
            }
        }
    }

    check_rules(g, input.mode, input.rules, &mut report);

    report
}

/// Provider hierarchy acyclicity on the raw graph. Under AllPermit the
/// annotations are ignored by policy, so a cycle is only suspicious
/// (likely a bad `infer_by_degree` run), not an error.
fn check_raw_hierarchy(g: &AsGraph, mode: PolicyMode, report: &mut AnalysisReport) {
    report.checked();
    if let Some(cycle) = provider_cycle(g) {
        let witness = render_cycle(g, &cycle);
        match mode {
            PolicyMode::GaoRexford => report.error_with(
                "safety.provider_cycle",
                "customer->provider hierarchy has a cycle; Gao-Rexford safety does not hold",
                witness,
            ),
            PolicyMode::AllPermit => report.findings.push(crate::finding::Finding {
                severity: crate::finding::Severity::Warning,
                code: "safety.provider_cycle",
                message: "customer->provider annotations form a cycle (ignored by the active \
                          policy template, but relationship data looks wrong)"
                    .to_string(),
                witness: Some(witness),
            }),
        }
    }
}

/// Explicit overrides void the template proof: run the SPP solver per
/// origin on the (small) instance.
fn check_rules(g: &AsGraph, mode: PolicyMode, rules: &[PathRule], report: &mut AnalysisReport) {
    if rules.is_empty() {
        return;
    }
    for origin in 0..g.len() {
        report.checked();
        match SppInstance::build(g, mode, origin, rules, SppCaps::default()) {
            None => {
                report.warning(
                    "spp.truncated",
                    format!(
                        "policy overrides present but the instance for origin AS{} \
                         exceeds enumeration caps; no safety verdict",
                        g.asns[origin].0
                    ),
                );
                break; // every origin would truncate the same way
            }
            Some(inst) => match inst.solve() {
                SppOutcome::Safe { .. } => {}
                SppOutcome::Truncated => unreachable!("caps checked at build"),
                SppOutcome::Wheel { rim } => report.error_with(
                    "safety.dispute_wheel",
                    format!(
                        "policy overrides create a dispute wheel for routes to AS{}; \
                         BGP may oscillate forever",
                        g.asns[origin].0
                    ),
                    render_cycle(g, &rim),
                ),
            },
        }
    }
}

/// Find a cycle in the customer→provider digraph, as vertex indices in
/// order, or `None` when the hierarchy is a DAG. Edges point customer →
/// provider (i.e. `b → a` for every `ProviderCustomer` edge).
pub fn provider_cycle(g: &AsGraph) -> Option<Vec<usize>> {
    // Iterative DFS with colors; `parent` recovers the cycle.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = g.len();
    let mut up: Vec<Vec<usize>> = vec![Vec::new(); n]; // customer -> providers
    for e in &g.edges {
        if e.kind == EdgeKind::ProviderCustomer {
            up[e.b].push(e.a);
        }
    }
    let mut color = vec![WHITE; n];
    let mut parent = vec![usize::MAX; n];
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        // (node, next child index to explore)
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = GRAY;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < up[v].len() {
                let w = up[v][*i];
                *i += 1;
                match color[w] {
                    WHITE => {
                        color[w] = GRAY;
                        parent[w] = v;
                        stack.push((w, 0));
                    }
                    GRAY => {
                        // Back edge v -> w: the cycle is w ..parents.. v.
                        let mut cycle = vec![v];
                        let mut x = v;
                        while x != w {
                            x = parent[x];
                            cycle.push(x);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[v] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

/// Result of contracting the cluster members to one logical vertex.
pub struct Contracted {
    /// The contracted graph. Non-members keep their relative order at
    /// indices `0..n-k`; the cluster vertex is last.
    pub graph: AsGraph,
    /// `map[v]` = contracted index of original vertex `v`.
    pub map: Vec<usize>,
    /// Original indices of the vertices behind each contracted index
    /// (members are all listed under the cluster vertex).
    pub preimage: Vec<Vec<usize>>,
    /// Boundary conflicts: `(outside, member_above, member_below)` — the
    /// outside AS is customer of `member_above` but provider of
    /// `member_below`.
    pub conflicts: Vec<(usize, usize, usize)>,
}

/// Contract `members` (sorted, deduped, in-range) to a single vertex.
/// Intra-cluster edges disappear; boundary edges keep their kind and
/// orientation relative to the cluster vertex.
pub fn contract_members(g: &AsGraph, members: &[usize]) -> Contracted {
    let n = g.len();
    let is_member = {
        let mut m = vec![false; n];
        for &v in members {
            m[v] = true;
        }
        m
    };
    let mut map = vec![usize::MAX; n];
    let mut preimage: Vec<Vec<usize>> = Vec::new();
    for v in 0..n {
        if !is_member[v] {
            map[v] = preimage.len();
            preimage.push(vec![v]);
        }
    }
    let cluster = preimage.len();
    preimage.push(members.to_vec());
    for &v in members {
        map[v] = cluster;
    }

    let mut edges: Vec<AsEdge> = Vec::new();
    for e in &g.edges {
        let (ca, cb) = (map[e.a], map[e.b]);
        if ca == cb {
            continue; // intra-cluster (or self) edge vanishes
        }
        // Dedup parallel contracted edges with identical orientation+kind.
        if !edges
            .iter()
            .any(|d| d.a == ca && d.b == cb && d.kind == e.kind)
        {
            edges.push(AsEdge {
                a: ca,
                b: cb,
                kind: e.kind,
            });
        }
    }

    // Boundary conflicts: an outside AS that is provider of one member and
    // customer of another. Track, per outside AS, one member above and one
    // below it (if both exist, that's the conflict witness).
    let mut above = vec![usize::MAX; n]; // member that is x's provider
    let mut below = vec![usize::MAX; n]; // member that is x's customer
    for e in &g.edges {
        if e.kind != EdgeKind::ProviderCustomer {
            continue;
        }
        let (p, c) = (e.a, e.b);
        match (is_member[p], is_member[c]) {
            (true, false) => above[c] = p,
            (false, true) => below[p] = c,
            _ => {}
        }
    }
    let conflicts = (0..n)
        .filter(|&x| above[x] != usize::MAX && below[x] != usize::MAX)
        .map(|x| (x, above[x], below[x]))
        .collect();

    let asns = preimage.iter().map(|pre| g.asns[pre[0]]).collect();
    Contracted {
        graph: AsGraph { asns, edges },
        map,
        preimage,
        conflicts,
    }
}

/// Result of contracting **each** cluster to its own logical vertex.
pub struct ContractedClusters {
    /// The contracted graph. Non-members keep their relative order at the
    /// front; cluster vertices follow, one per cluster, in cluster order.
    pub graph: AsGraph,
    /// `map[v]` = contracted index of original vertex `v`.
    pub map: Vec<usize>,
    /// Original indices of the vertices behind each contracted index.
    pub preimage: Vec<Vec<usize>>,
    /// Contracted index of each cluster's logical vertex, in cluster order.
    pub cluster_vertices: Vec<usize>,
    /// Boundary conflicts `(cluster, outside, member_above, member_below)`:
    /// the outside AS is customer of `member_above` but provider of
    /// `member_below`, both in `cluster`.
    pub conflicts: Vec<(usize, usize, usize, usize)>,
}

/// Contract each cluster in `clusters` (disjoint, non-empty, sorted,
/// deduped, in-range member lists) to its own logical vertex. Intra-cluster
/// edges disappear; all other edges keep their kind and orientation. With
/// one cluster this matches [`contract_members`] vertex for vertex.
pub fn contract_clusters(g: &AsGraph, clusters: &[Vec<usize>]) -> ContractedClusters {
    let n = g.len();
    let mut owner = vec![usize::MAX; n];
    for (c, members) in clusters.iter().enumerate() {
        for &v in members {
            owner[v] = c;
        }
    }
    let mut map = vec![usize::MAX; n];
    let mut preimage: Vec<Vec<usize>> = Vec::new();
    for v in 0..n {
        if owner[v] == usize::MAX {
            map[v] = preimage.len();
            preimage.push(vec![v]);
        }
    }
    let mut cluster_vertices = Vec::with_capacity(clusters.len());
    for members in clusters {
        let cv = preimage.len();
        cluster_vertices.push(cv);
        preimage.push(members.clone());
        for &v in members {
            map[v] = cv;
        }
    }

    let mut edges: Vec<AsEdge> = Vec::new();
    for e in &g.edges {
        let (ca, cb) = (map[e.a], map[e.b]);
        if ca == cb {
            continue; // intra-cluster (or self) edge vanishes
        }
        if !edges
            .iter()
            .any(|d| d.a == ca && d.b == cb && d.kind == e.kind)
        {
            edges.push(AsEdge {
                a: ca,
                b: cb,
                kind: e.kind,
            });
        }
    }

    // Boundary conflicts, per cluster: a vertex outside cluster `c` (legacy
    // or member of another cluster) that is provider of one `c` member and
    // customer of another.
    let mut conflicts = Vec::new();
    for (c, _) in clusters.iter().enumerate() {
        let mut above = vec![usize::MAX; n]; // c-member that is x's provider
        let mut below = vec![usize::MAX; n]; // c-member that is x's customer
        for e in &g.edges {
            if e.kind != EdgeKind::ProviderCustomer {
                continue;
            }
            let (p, cust) = (e.a, e.b);
            match (owner[p] == c, owner[cust] == c) {
                (true, false) => above[cust] = p,
                (false, true) => below[p] = cust,
                _ => {}
            }
        }
        for x in 0..n {
            if above[x] != usize::MAX && below[x] != usize::MAX {
                conflicts.push((c, x, above[x], below[x]));
            }
        }
    }

    let asns = preimage.iter().map(|pre| g.asns[pre[0]]).collect();
    ContractedClusters {
        graph: AsGraph { asns, edges },
        map,
        preimage,
        cluster_vertices,
        conflicts,
    }
}

/// Render a cycle in a multi-cluster contracted graph, labelling each
/// cluster vertex with its cluster index.
fn render_clusters_cycle(c: &ContractedClusters, cycle: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for &v in cycle.iter().chain(cycle.first()) {
        if !out.is_empty() {
            out.push_str(" -> ");
        }
        if let Some(ci) = c.cluster_vertices.iter().position(|&cv| cv == v) {
            let _ = write!(out, "cluster{ci}");
        } else {
            let _ = write!(out, "AS{}", c.graph.asns[v].0);
        }
    }
    out
}

/// Render a cycle in the contracted graph, labelling the cluster vertex.
fn render_contracted_cycle(c: &Contracted, cycle: &[usize]) -> String {
    use std::fmt::Write as _;
    let cluster = c.preimage.len() - 1;
    let mut out = String::new();
    for &v in cycle.iter().chain(cycle.first()) {
        if !out.is_empty() {
            out.push_str(" -> ");
        }
        if v == cluster {
            out.push_str("cluster");
        } else {
            let _ = write!(out, "AS{}", c.graph.asns[v].0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsdn_bgp::Asn;
    use bgpsdn_topology::gen;

    fn pc(a: usize, b: usize) -> AsEdge {
        AsEdge {
            a,
            b,
            kind: EdgeKind::ProviderCustomer,
        }
    }

    fn pp(a: usize, b: usize) -> AsEdge {
        AsEdge {
            a,
            b,
            kind: EdgeKind::PeerPeer,
        }
    }

    fn graph(n: usize, edges: Vec<AsEdge>) -> AsGraph {
        AsGraph {
            asns: (0..n)
                .map(|i| Asn(65000 + u32::try_from(i).unwrap()))
                .collect(),
            edges,
        }
    }

    #[test]
    fn dag_hierarchy_has_no_cycle() {
        // 0 above 1 and 2, 1 above 3.
        let g = graph(4, vec![pc(0, 1), pc(0, 2), pc(1, 3), pp(1, 2)]);
        assert_eq!(provider_cycle(&g), None);
        let r = check_safety(&SafetyInput {
            graph: &g,
            mode: PolicyMode::GaoRexford,
            members: &[],
            rules: &[],
        });
        assert!(r.clean(), "unexpected findings: {}", r.render());
    }

    #[test]
    fn provider_cycle_is_found_with_witness() {
        // 0 provider of 1, 1 provider of 2, 2 provider of 0.
        let g = graph(3, vec![pc(0, 1), pc(1, 2), pc(2, 0)]);
        let cycle = provider_cycle(&g).expect("cycle exists");
        assert_eq!(cycle.len(), 3);
        let r = check_safety(&SafetyInput {
            graph: &g,
            mode: PolicyMode::GaoRexford,
            members: &[],
            rules: &[],
        });
        assert!(!r.ok());
        let f = r.first_error().unwrap();
        assert_eq!(f.code, "safety.provider_cycle");
        assert!(f.witness.as_deref().unwrap().contains("AS65000"));
    }

    #[test]
    fn provider_cycle_is_only_a_warning_under_all_permit() {
        let g = graph(3, vec![pc(0, 1), pc(1, 2), pc(2, 0)]);
        let r = check_safety(&SafetyInput {
            graph: &g,
            mode: PolicyMode::AllPermit,
            members: &[],
            rules: &[],
        });
        assert!(r.ok() && !r.clean());
        assert_eq!(r.findings[0].code, "safety.provider_cycle");
    }

    #[test]
    fn boundary_contraction_detects_induced_cycle() {
        // Raw graph is a clean hierarchy: 1 provider of 0, 0 provider of 2.
        // Cluster {1, 2} contracted: cluster -> 0 (via 1) and 0 -> cluster
        // (via 2) — a two-node provider cycle that only exists in the hybrid
        // deployment.
        let g = graph(3, vec![pc(1, 0), pc(0, 2)]);
        assert_eq!(provider_cycle(&g), None, "raw graph is clean");
        let r = check_safety(&SafetyInput {
            graph: &g,
            mode: PolicyMode::GaoRexford,
            members: &[1, 2],
            rules: &[],
        });
        assert!(!r.ok());
        let codes: Vec<&str> = r.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"cluster.boundary_conflict"), "{codes:?}");
        assert!(codes.contains(&"cluster.boundary_cycle"), "{codes:?}");
        let cyc = r
            .findings
            .iter()
            .find(|f| f.code == "cluster.boundary_cycle")
            .unwrap();
        assert!(cyc.witness.as_deref().unwrap().contains("cluster"));
    }

    #[test]
    fn member_range_and_duplicates_are_flagged() {
        let g = AsGraph::all_peer(&gen::clique(4), 65000);
        let r = check_safety(&SafetyInput {
            graph: &g,
            mode: PolicyMode::AllPermit,
            members: &[1, 1, 9],
            rules: &[],
        });
        assert!(!r.ok());
        assert_eq!(r.first_error().unwrap().code, "cluster.member_range");
        assert!(r
            .findings
            .iter()
            .any(|f| f.code == "cluster.member_duplicate"));
    }

    #[test]
    fn contraction_preserves_outside_structure() {
        let g = graph(5, vec![pc(0, 1), pc(0, 2), pp(3, 4), pc(3, 2)]);
        let c = contract_members(&g, &[1, 2]);
        assert_eq!(c.graph.len(), 4);
        let cluster = 3;
        assert_eq!(c.map[1], cluster);
        assert_eq!(c.map[2], cluster);
        // 0 -> cluster appears once despite two parallel member edges.
        let down: Vec<&AsEdge> = c
            .graph
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::ProviderCustomer && e.b == cluster)
            .collect();
        assert_eq!(down.len(), 2, "one from AS0, one from AS3");
    }

    #[test]
    fn single_cluster_input_matches_check_safety_exactly() {
        let g = graph(3, vec![pc(1, 0), pc(0, 2)]);
        let single = check_safety(&SafetyInput {
            graph: &g,
            mode: PolicyMode::GaoRexford,
            members: &[1, 2],
            rules: &[],
        });
        let multi = check_safety_clusters(&SafetyClustersInput {
            graph: &g,
            mode: PolicyMode::GaoRexford,
            clusters: &[vec![1, 2]],
            rules: &[],
        });
        assert_eq!(single.findings, multi.findings);
        assert_eq!(single.checks, multi.checks);
    }

    #[test]
    fn overlapping_clusters_are_an_error() {
        let g = AsGraph::all_peer(&gen::clique(5), 65000);
        let r = check_safety_clusters(&SafetyClustersInput {
            graph: &g,
            mode: PolicyMode::AllPermit,
            clusters: &[vec![0, 1], vec![1, 2]],
            rules: &[],
        });
        assert_eq!(r.first_error().unwrap().code, "cluster.member_overlap");
    }

    #[test]
    fn contract_clusters_keeps_clusters_apart() {
        // 6-clique with two 2-member clusters: 15 edges contract to a
        // 4-vertex clique (6 edges), each cluster its own vertex.
        let g = AsGraph::all_peer(&gen::clique(6), 65000);
        let c = contract_clusters(&g, &[vec![0, 1], vec![4, 5]]);
        assert_eq!(c.graph.len(), 4);
        assert_eq!(c.cluster_vertices, vec![2, 3]);
        assert_eq!(c.map[0], 2);
        assert_eq!(c.map[5], 3);
        assert_eq!(c.graph.edges.len(), 6);
        assert_eq!(c.preimage[3], vec![4, 5]);
    }

    #[test]
    fn boundary_cycle_through_a_second_cluster_is_found() {
        // 1 provider of 0, 0 provider of 2: cluster0 {1, 2} contracted is
        // above and below AS0 — the induced cycle survives even with an
        // unrelated second cluster {3, 4} present.
        let g = graph(5, vec![pc(1, 0), pc(0, 2), pp(3, 4)]);
        let r = check_safety_clusters(&SafetyClustersInput {
            graph: &g,
            mode: PolicyMode::GaoRexford,
            clusters: &[vec![1, 2], vec![3, 4]],
            rules: &[],
        });
        assert!(!r.ok());
        let codes: Vec<&str> = r.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"cluster.boundary_conflict"), "{codes:?}");
        assert!(codes.contains(&"cluster.boundary_cycle"), "{codes:?}");
        let cyc = r
            .findings
            .iter()
            .find(|f| f.code == "cluster.boundary_cycle")
            .unwrap();
        assert!(cyc.witness.as_deref().unwrap().contains("cluster0"));
    }

    #[test]
    fn disjoint_clusters_on_a_clean_hierarchy_pass() {
        // Two providers (0, 1) each above two stubs; clusters pair one
        // provider with one of its stubs — no contraction conflict.
        let g = graph(6, vec![pc(0, 2), pc(0, 3), pc(1, 4), pc(1, 5), pp(0, 1)]);
        let r = check_safety_clusters(&SafetyClustersInput {
            graph: &g,
            mode: PolicyMode::GaoRexford,
            clusters: &[vec![0, 2], vec![1, 4]],
            rules: &[],
        });
        assert!(r.clean(), "{}", r.render());
    }

    #[test]
    fn seeded_wheel_is_flagged_via_rules() {
        let g = AsGraph::all_peer(&gen::clique(4), 65000);
        let rules = crate::spp::bad_gadget_rules();
        let r = check_safety(&SafetyInput {
            graph: &g,
            mode: PolicyMode::AllPermit,
            members: &[],
            rules: &rules,
        });
        assert!(!r.ok());
        let f = r.first_error().unwrap();
        assert_eq!(f.code, "safety.dispute_wheel");
        assert!(f.witness.is_some());
    }
}
