//! Stable Paths Problem solver — dispute-wheel detection (Griffin,
//! Shepherd, Wilfong).
//!
//! BGP policy divergence is captured by the Stable Paths Problem: each node
//! ranks its permitted paths to an origin, and an instance is *safe* when
//! path-vector dynamics reach a unique stable assignment regardless of
//! message timing. Griffin's theorem says an instance with no **dispute
//! wheel** is safe; this module builds an explicit SPP instance from an
//! annotated [`AsGraph`] (plus optional per-neighbor LOCAL_PREF override
//! rules mirroring the simulator's route maps) and runs the greedy
//! stable-assignment construction:
//!
//! * fix the origin; repeatedly fix any node whose best still-possible path
//!   goes through an already-fixed next hop consistently;
//! * if every node gets fixed, the instance is certified safe and the fixed
//!   assignment is the predicted unique stable state;
//! * if the greedy gets stuck, every stuck node's most-preferred possible
//!   path waits on another stuck node — following those preferences yields
//!   a cycle, which is reported as the dispute wheel's rim.
//!
//! The construction is a certification procedure: completion proves safety;
//! a reported wheel is a *potential* oscillation (for the classic gadgets —
//! BAD GADGET, DISAGREE — it is exact, and the integration tests
//! cross-validate that a seeded BAD GADGET really diverges in simulation).
//!
//! Path enumeration is exponential in general, so instances are capped
//! ([`SppCaps`]); graphs above the cap return [`SppOutcome::Truncated`]
//! rather than a bogus verdict. Template-only policies never need the
//! enumeration: `AllPermit` without overrides is shortest-path (safe), and
//! Gao–Rexford with an acyclic provider hierarchy is safe by the
//! Gao–Rexford theorem — the safety pass only reaches for the explicit
//! solver when override rules are present.

use bgpsdn_bgp::{
    export_allowed, import_allowed, import_local_pref, Asn, MatchCond, PolicyMode, Relationship,
    RouteMap, Rule, SetAction,
};
use bgpsdn_topology::AsGraph;

/// Decision-process default LOCAL_PREF (what the simulator's decision uses
/// when no policy sets one).
const DEFAULT_LOCAL_PREF: u32 = 100;

/// One import-side policy override, the static mirror of a route-map rule
/// `match as-path contains X → set local-preference L` (or `deny`) attached
/// to one neighbor session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathRule {
    /// AS index applying the rule (the importing node).
    pub at: usize,
    /// The rule applies to routes learned from this neighbor AS index.
    pub from: usize,
    /// Only paths whose AS path mentions this AS index (`None` = any path
    /// from that neighbor).
    pub contains: Option<usize>,
    /// `Some(lp)` permits with that LOCAL_PREF; `None` denies the path.
    pub action: Option<u32>,
}

impl PathRule {
    /// Compile a rule list into per-session [`RouteMap`]s, keyed by
    /// `(at, from)` AS indices — what a simulation installs as
    /// `NeighborConfig::import_map` to realize the same policy the static
    /// model analyzed. Rules keep their relative order within a session.
    pub fn route_maps(rules: &[PathRule], asns: &[Asn]) -> Vec<(usize, usize, RouteMap)> {
        let mut maps: Vec<(usize, usize, RouteMap)> = Vec::new();
        for r in rules {
            let rule = Rule {
                conds: r
                    .contains
                    .map(|c| vec![MatchCond::AsPathContains(asns[c])])
                    .unwrap_or_default(),
                actions: r
                    .action
                    .map(|lp| vec![SetAction::LocalPref(lp)])
                    .unwrap_or_default(),
                permit: r.action.is_some(),
            };
            match maps.iter_mut().find(|(a, f, _)| (*a, *f) == (r.at, r.from)) {
                Some((_, _, map)) => map.rules.push(rule),
                None => maps.push((
                    r.at,
                    r.from,
                    RouteMap {
                        rules: vec![rule],
                        default_permit: true,
                    },
                )),
            }
        }
        maps
    }
}

/// Enumeration limits for explicit SPP instances.
#[derive(Debug, Clone, Copy)]
pub struct SppCaps {
    /// Maximum node count; larger graphs are truncated.
    pub max_nodes: usize,
    /// Maximum total enumerated paths across all nodes.
    pub max_paths: usize,
}

impl Default for SppCaps {
    fn default() -> Self {
        SppCaps {
            max_nodes: 12,
            max_paths: 50_000,
        }
    }
}

/// One permitted path with its rank inputs. `path[0]` is the owning node,
/// `path[last]` the origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedPath {
    /// Effective LOCAL_PREF after relationship defaults and overrides.
    pub local_pref: u32,
    /// Node-index path from owner to origin, inclusive.
    pub path: Vec<usize>,
}

impl RankedPath {
    /// Next hop toward the origin.
    fn next_hop(&self) -> usize {
        self.path[1]
    }

    /// Decision order: LOCAL_PREF descending, then path length ascending,
    /// then lowest next hop (the static stand-in for the router-id
    /// tie-break, which ascends with node index in the framework's plans).
    fn rank_key(&self) -> (std::cmp::Reverse<u32>, usize, usize) {
        (
            std::cmp::Reverse(self.local_pref),
            self.path.len(),
            self.next_hop(),
        )
    }
}

/// An explicit SPP instance for one origin.
#[derive(Debug, Clone)]
pub struct SppInstance {
    /// Node count.
    pub n: usize,
    /// The origin node.
    pub origin: usize,
    /// Ranked permitted paths per node (best first); empty for the origin
    /// and for nodes no permitted path reaches.
    pub paths: Vec<Vec<RankedPath>>,
}

/// Verdict of the greedy stable-assignment construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SppOutcome {
    /// Certified safe; the predicted unique stable assignment, per node
    /// (`None` = no route; the origin holds the empty path).
    Safe {
        /// Chosen path per node (owner-first, origin-last), `None` when the
        /// node ends up without a route.
        stable: Vec<Option<Vec<usize>>>,
    },
    /// A potential dispute wheel: the rim nodes, each preferring a path
    /// through the next.
    Wheel {
        /// The witness cycle (node indices; the last prefers a path through
        /// the first).
        rim: Vec<usize>,
    },
    /// The instance exceeded [`SppCaps`]; no verdict.
    Truncated,
}

impl SppInstance {
    /// Enumerate the permitted-path instance for `origin` under the graph's
    /// relationship annotations, `mode`'s import/export policy, and the
    /// override `rules`. Returns `None` when the caps are exceeded.
    pub fn build(
        g: &AsGraph,
        mode: PolicyMode,
        origin: usize,
        rules: &[PathRule],
        caps: SppCaps,
    ) -> Option<SppInstance> {
        let n = g.len();
        if n > caps.max_nodes || origin >= n {
            return None;
        }
        let mut paths: Vec<Vec<RankedPath>> = vec![Vec::new(); n];
        let mut total = 0usize;
        let mut visited = vec![false; n];
        let mut stack = vec![origin];
        visited[origin] = true;
        if !Self::dfs(
            g,
            mode,
            rules,
            caps.max_paths,
            origin,
            None,
            &mut visited,
            &mut stack,
            &mut paths,
            &mut total,
        ) {
            return None;
        }
        for list in &mut paths {
            list.sort_by_key(RankedPath::rank_key);
        }
        Some(SppInstance { n, origin, paths })
    }

    /// Propagate the origin's route outward along every permitted simple
    /// path. `learned` is how the route entered `x` (`None` at the origin).
    /// Returns `false` when the path cap is exceeded.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &AsGraph,
        mode: PolicyMode,
        rules: &[PathRule],
        max_paths: usize,
        x: usize,
        learned: Option<Relationship>,
        visited: &mut Vec<bool>,
        stack: &mut Vec<usize>,
        paths: &mut Vec<Vec<RankedPath>>,
        total: &mut usize,
    ) -> bool {
        // Deterministic neighbor order: the graph's edge list order.
        for e in g.edges.iter().filter(|e| e.a == x || e.b == x) {
            let y = e.other(x);
            if visited[y] {
                continue;
            }
            let rel_y_from_x = e.relationship_from(x);
            if !export_allowed(mode, learned, rel_y_from_x) {
                continue;
            }
            let rel_x_from_y = e.relationship_from(y);
            if !import_allowed(rel_x_from_y) {
                continue;
            }
            let base = import_local_pref(mode, rel_x_from_y).unwrap_or(DEFAULT_LOCAL_PREF);
            // First matching override rule at the importer decides.
            let lp = match rules
                .iter()
                .find(|r| r.at == y && r.from == x && r.contains.is_none_or(|c| stack.contains(&c)))
                .map(|r| r.action)
            {
                Some(None) => continue, // denied on import: y never holds it
                Some(Some(lp)) => lp,
                None => base,
            };
            *total += 1;
            if *total > max_paths {
                return false;
            }
            let mut path = vec![y];
            path.extend(stack.iter().rev());
            paths[y].push(RankedPath {
                local_pref: lp,
                path,
            });
            visited[y] = true;
            stack.push(y);
            let ok = Self::dfs(
                g,
                mode,
                rules,
                max_paths,
                y,
                Some(rel_x_from_y),
                visited,
                stack,
                paths,
                total,
            );
            stack.pop();
            visited[y] = false;
            if !ok {
                return false;
            }
        }
        true
    }

    /// Run the greedy stable-assignment construction.
    ///
    /// # Panics
    ///
    /// Only on an internal invariant violation (a stuck node with no
    /// possible path would have been fixed to no-route instead).
    pub fn solve(&self) -> SppOutcome {
        #[derive(Clone, PartialEq)]
        enum Fix {
            Unfixed,
            NoRoute,
            Chosen(usize), // index into paths[v]
        }
        let mut fix = vec![Fix::Unfixed; self.n];
        fix[self.origin] = Fix::Chosen(usize::MAX); // the empty path
                                                    // A path is still possible iff its next hop is unfixed, or fixed to
                                                    // exactly the path's own suffix.
        let possible = |p: &RankedPath, fix: &[Fix], paths: &[Vec<RankedPath>]| -> bool {
            let w = p.next_hop();
            match &fix[w] {
                Fix::Unfixed => true,
                Fix::NoRoute => false,
                Fix::Chosen(k) => {
                    if w == self.origin {
                        p.path.len() == 2
                    } else {
                        paths[w][*k].path[..] == p.path[1..]
                    }
                }
            }
        };
        loop {
            let mut changed = false;
            for v in 0..self.n {
                if fix[v] != Fix::Unfixed {
                    continue;
                }
                let best = self.paths[v]
                    .iter()
                    .enumerate()
                    .find(|(_, p)| possible(p, &fix, &self.paths));
                match best {
                    None => {
                        fix[v] = Fix::NoRoute;
                        changed = true;
                    }
                    Some((k, p)) => {
                        let w = p.next_hop();
                        if matches!(fix[w], Fix::Chosen(_)) {
                            fix[v] = Fix::Chosen(k);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let stuck: Vec<usize> = (0..self.n).filter(|&v| fix[v] == Fix::Unfixed).collect();
        if stuck.is_empty() {
            let stable = (0..self.n)
                .map(|v| match &fix[v] {
                    Fix::Chosen(_) if v == self.origin => Some(vec![v]),
                    Fix::Chosen(k) => Some(self.paths[v][*k].path.clone()),
                    _ => None,
                })
                .collect();
            return SppOutcome::Safe { stable };
        }
        // Every stuck node's best possible path waits on a stuck next hop;
        // following that preference relation must cycle.
        let succ = |v: usize| -> usize {
            self.paths[v]
                .iter()
                .find(|p| possible(p, &fix, &self.paths))
                .map(RankedPath::next_hop)
                .expect("stuck nodes have a possible path")
        };
        let mut seen = vec![false; self.n];
        let mut v = stuck[0];
        while !seen[v] {
            seen[v] = true;
            v = succ(v);
        }
        // `v` starts the cycle; walk it once more to extract the rim.
        let mut rim = vec![v];
        let mut w = succ(v);
        while w != v {
            rim.push(w);
            w = succ(w);
        }
        SppOutcome::Wheel { rim }
    }
}

/// The canonical BAD GADGET override rules on a 4-node graph: origin 0,
/// rim 1, 2, 3, every pair adjacent. Each rim node prefers the two-hop
/// path through its clockwise neighbor over its direct path and permits
/// nothing else — the smallest instance with a dispute wheel and no stable
/// assignment. Used by the mutation tests and the simulator
/// cross-validation (it must be flagged statically *and* observably
/// oscillate when run).
pub fn bad_gadget_rules() -> Vec<PathRule> {
    let mut rules = Vec::new();
    for (at, via, third) in [(1usize, 2usize, 3usize), (2, 3, 1), (3, 1, 2)] {
        // Deny the three-hop path through both other rim nodes.
        rules.push(PathRule {
            at,
            from: via,
            contains: Some(third),
            action: None,
        });
        // Prefer the two-hop path through the clockwise neighbor.
        rules.push(PathRule {
            at,
            from: via,
            contains: None,
            action: Some(200),
        });
        // Never route through the counter-clockwise neighbor.
        rules.push(PathRule {
            at,
            from: third,
            contains: None,
            action: None,
        });
    }
    rules
}

/// Render a witness cycle with ASNs: `AS65001 -> AS65002 -> AS65001`.
pub fn render_cycle(g: &AsGraph, cycle: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for &v in cycle.iter().chain(cycle.first()) {
        if !out.is_empty() {
            out.push_str(" -> ");
        }
        let _ = write!(out, "AS{}", g.asns[v].0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsdn_topology::{gen, AsEdge, EdgeKind};

    fn peer_clique(n: usize) -> AsGraph {
        AsGraph::all_peer(&gen::clique(n), 65000)
    }

    #[test]
    fn clique_without_overrides_is_safe_shortest_path() {
        let g = peer_clique(5);
        let inst = SppInstance::build(&g, PolicyMode::AllPermit, 0, &[], SppCaps::default())
            .expect("within caps");
        match inst.solve() {
            SppOutcome::Safe { stable } => {
                for (v, s) in stable.iter().enumerate().skip(1) {
                    let p = s.as_ref().expect("route exists");
                    assert_eq!(p, &vec![v, 0], "clique stable state is direct paths");
                }
            }
            other => panic!("expected safe, got {other:?}"),
        }
    }

    #[test]
    fn bad_gadget_yields_wheel_with_full_rim() {
        let g = peer_clique(4);
        let inst = SppInstance::build(
            &g,
            PolicyMode::AllPermit,
            0,
            &bad_gadget_rules(),
            SppCaps::default(),
        )
        .expect("within caps");
        match inst.solve() {
            SppOutcome::Wheel { mut rim } => {
                rim.sort_unstable();
                assert_eq!(rim, vec![1, 2, 3], "all three rim nodes are stuck");
            }
            other => panic!("expected a dispute wheel, got {other:?}"),
        }
    }

    #[test]
    fn good_gadget_with_consistent_overrides_stays_safe() {
        // Same shape as BAD GADGET but only node 1 prefers the long way:
        // no cyclic preference, so the greedy must complete.
        let g = peer_clique(4);
        let rules = vec![PathRule {
            at: 1,
            from: 2,
            contains: None,
            action: Some(200),
        }];
        let inst = SppInstance::build(&g, PolicyMode::AllPermit, 0, &rules, SppCaps::default())
            .expect("within caps");
        match inst.solve() {
            SppOutcome::Safe { stable } => {
                // Node 1's stable path routes through 2 (preferred and
                // consistent with 2's direct path).
                assert_eq!(stable[1].as_ref().unwrap(), &vec![1, 2, 0]);
                assert_eq!(stable[2].as_ref().unwrap(), &vec![2, 0]);
            }
            other => panic!("expected safe, got {other:?}"),
        }
    }

    #[test]
    fn gao_rexford_hierarchy_is_safe() {
        // 0 is 1's and 2's provider; 1 and 2 peer; 3 is 1's customer.
        let g = AsGraph {
            asns: (0..4).map(|i| Asn(65000 + i)).collect(),
            edges: vec![
                AsEdge {
                    a: 0,
                    b: 1,
                    kind: EdgeKind::ProviderCustomer,
                },
                AsEdge {
                    a: 0,
                    b: 2,
                    kind: EdgeKind::ProviderCustomer,
                },
                AsEdge {
                    a: 1,
                    b: 2,
                    kind: EdgeKind::PeerPeer,
                },
                AsEdge {
                    a: 1,
                    b: 3,
                    kind: EdgeKind::ProviderCustomer,
                },
            ],
        };
        for origin in 0..4 {
            let inst =
                SppInstance::build(&g, PolicyMode::GaoRexford, origin, &[], SppCaps::default())
                    .expect("within caps");
            match inst.solve() {
                SppOutcome::Safe { stable } => {
                    // Valley-free reachability: every node reaches every
                    // origin in this little hierarchy.
                    for (v, p) in stable.iter().enumerate() {
                        assert!(p.is_some(), "node {v} lost origin {origin}");
                    }
                }
                other => panic!("origin {origin}: expected safe, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_instance_truncates() {
        let g = peer_clique(13);
        assert!(
            SppInstance::build(&g, PolicyMode::AllPermit, 0, &[], SppCaps::default()).is_none()
        );
    }

    #[test]
    fn route_map_compilation_groups_by_session() {
        let rules = bad_gadget_rules();
        let asns: Vec<Asn> = (0..4).map(|i| Asn(65000 + i)).collect();
        let maps = PathRule::route_maps(&rules, &asns);
        assert_eq!(maps.len(), 6, "two sessions per rim node");
        let (at, from, map) = &maps[0];
        assert_eq!((*at, *from), (1, 2));
        assert_eq!(map.rules.len(), 2, "deny-specific then permit-set");
        assert!(!map.rules[0].permit);
        assert!(map.rules[1].permit);
    }
}
