//! Static control-plane analysis: pre-flight safety, prediction, and
//! validation for BGP-SDN experiments — without simulating.
//!
//! The emulation framework's runtime verifier (the Veriflow-style
//! data-plane checker) catches invariant violations *while* a simulation
//! runs; this crate answers questions *before* anything runs:
//!
//! * **Safety** ([`safety`], [`spp`]) — will the policy configuration
//!   converge at all? Gao–Rexford conformance (provider-hierarchy
//!   acyclicity, with the SDN cluster contracted to one logical node per
//!   the paper's transformation) plus explicit Stable-Paths-Problem
//!   dispute-wheel detection when per-session overrides are in play.
//! * **Prediction** ([`predict`]) — which ASes can hold a route to each
//!   origin (valley-free reachability, partition detection), and how many
//!   path-hunting steps a withdrawal can trigger per cluster size (the
//!   static bound that measured `hunt_step` phases must respect).
//! * **Validation** ([`validate`]) — are the scripted actions, fault
//!   plans, timers, and campaign grids well-formed: index ranges, loss
//!   bounds, horizon consistency, graceful-restart vs hold timers,
//!   expectations that could never hold.
//!
//! Results are [`Finding`]s in an [`AnalysisReport`] with stable codes,
//! optional witnesses (e.g. the rim of a dispute wheel), deterministic
//! ordering, and byte-deterministic JSON rendering. The `bgpsdn check`
//! CLI, the `NetworkBuilder`/`Experiment` pre-flight gates, and the
//! campaign runner's fail-fast cell rejection all sit on top of this
//! crate.

#![warn(clippy::pedantic)]
#![warn(missing_docs)]
#![allow(clippy::module_name_repetitions)]
// Analyzer entry points return reports the caller inspects; annotating
// every getter with #[must_use] adds noise without catching real bugs, and
// prose docs routinely name ASes/papers that trip the backtick heuristic.
#![allow(clippy::must_use_candidate)]
#![allow(clippy::doc_markdown)]

pub mod finding;
pub mod predict;
pub mod safety;
pub mod spp;
pub mod validate;

pub use finding::{AnalysisReport, Finding, Severity};
pub use predict::{
    check_reachability, components, hunt_depth_bound, hunt_depth_bound_clusters, policy_reachable,
};
pub use safety::{
    check_safety, check_safety_clusters, contract_clusters, contract_members, provider_cycle,
    Contracted, ContractedClusters, SafetyClustersInput, SafetyInput,
};
pub use spp::{render_cycle, PathRule, RankedPath, SppCaps, SppInstance, SppOutcome};
pub use validate::{
    check_actions, check_grid, check_timed, check_timing, Action, ActionContext, GridSpec,
    STRATEGY_NAMES,
};
