//! Run statistics, activity accounting and summary statistics.
//!
//! [`SimStats`] counts raw engine events. The [`ActivityBoard`] is the
//! routing-plane measurement surface: nodes report semantic events
//! ("RIB changed", "flow installed") via their context, and convergence
//! detectors read the board instead of grovelling through traces.
//! [`Summary`] computes the five-number boxplot summaries the paper's
//! Figure 2 reports.

use crate::time::{SimDuration, SimTime};

/// Raw engine counters for one run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Events processed by the main loop.
    pub events_processed: u64,
    /// Messages delivered to a node.
    pub msgs_delivered: u64,
    /// Messages dropped because the link was down at send or delivery time.
    pub msgs_dropped_link_down: u64,
    /// Messages dropped by the link's random-loss model.
    pub msgs_dropped_loss: u64,
    /// Messages dropped because the destination node was crashed.
    pub msgs_dropped_node_down: u64,
    /// Timer firings dispatched to nodes.
    pub timers_fired: u64,
    /// Timer firings suppressed because the timer was cancelled or re-armed.
    pub timers_stale: u64,
    /// Total encoded bytes moved over links.
    pub bytes_delivered: u64,
}

/// Semantic routing-plane activity kinds reported by nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// A node's routing table (Loc-RIB or controller route store) changed.
    RibChange,
    /// A node's forwarding state (FIB or flow table) changed.
    FibChange,
    /// A BGP UPDATE was sent.
    UpdateSent,
    /// A BGP UPDATE was received.
    UpdateReceived,
    /// A flow rule was installed, modified or removed on a switch.
    FlowInstalled,
    /// A BGP (or controller) session reached Established.
    SessionUp,
    /// A session was torn down.
    SessionDown,
    /// A prefix was originated by its owner.
    PrefixOriginated,
    /// A prefix was withdrawn by its owner.
    PrefixWithdrawn,
    /// Controller ran a route recomputation.
    ControllerRecompute,
}

impl Activity {
    pub(crate) const COUNT: usize = 10;

    pub(crate) fn index(self) -> usize {
        match self {
            Activity::RibChange => 0,
            Activity::FibChange => 1,
            Activity::UpdateSent => 2,
            Activity::UpdateReceived => 3,
            Activity::FlowInstalled => 4,
            Activity::SessionUp => 5,
            Activity::SessionDown => 6,
            Activity::PrefixOriginated => 7,
            Activity::PrefixWithdrawn => 8,
            Activity::ControllerRecompute => 9,
        }
    }

    /// Kinds that count as "the routing plane is still moving" for
    /// convergence measurement.
    pub fn is_routing_change(self) -> bool {
        matches!(
            self,
            Activity::RibChange
                | Activity::FibChange
                | Activity::UpdateSent
                | Activity::UpdateReceived
                | Activity::FlowInstalled
        )
    }
}

/// Per-kind counters and last-seen timestamps for semantic activity.
#[derive(Debug, Clone)]
pub struct ActivityBoard {
    counts: [u64; Activity::COUNT],
    last: [Option<SimTime>; Activity::COUNT],
    last_routing_change: Option<SimTime>,
}

impl Default for ActivityBoard {
    fn default() -> Self {
        ActivityBoard {
            counts: [0; Activity::COUNT],
            last: [None; Activity::COUNT],
            last_routing_change: None,
        }
    }
}

impl ActivityBoard {
    /// Record one occurrence of `kind` at `at`.
    pub fn report(&mut self, at: SimTime, kind: Activity) {
        let i = kind.index();
        self.counts[i] += 1;
        self.last[i] = Some(at);
        if kind.is_routing_change() {
            self.last_routing_change = Some(at);
        }
    }

    /// Total occurrences of `kind` so far.
    pub fn count(&self, kind: Activity) -> u64 {
        self.counts[kind.index()]
    }

    /// Timestamp of the latest occurrence of `kind`.
    pub fn last(&self, kind: Activity) -> Option<SimTime> {
        self.last[kind.index()]
    }

    /// Timestamp of the latest routing-plane change of any kind.
    pub fn last_routing_change(&self) -> Option<SimTime> {
        self.last_routing_change
    }

    /// Latest timestamp across the given kinds — the maximum of the
    /// per-kind `last` timestamps, regardless of the order reports arrived
    /// in (reporting kind A after kind B with an earlier timestamp cannot
    /// mask B's later one).
    ///
    /// Interaction with [`ActivityBoard::reset`]: a reset clears every
    /// per-kind timestamp, so after a phase boundary `last_of` returns
    /// `None` until the *new* phase reports one of `kinds`. Convergence
    /// measurements relying on "last change after the event" must therefore
    /// reset at the phase start, not after it, or pre-event activity from
    /// the previous phase would leak into the result.
    pub fn last_of(&self, kinds: &[Activity]) -> Option<SimTime> {
        kinds.iter().filter_map(|&k| self.last(k)).max()
    }

    /// Reset all counters and timestamps (used between experiment phases so
    /// each phase measures only its own activity). See [`ActivityBoard::last_of`]
    /// for the phase-boundary contract.
    pub fn reset(&mut self) {
        *self = ActivityBoard::default();
    }
}

/// Five-number summary (plus mean) over a set of durations — exactly what a
/// boxplot row in the paper's Figure 2 needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarize raw values. Returns `None` for an empty input.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        let q = |p: f64| -> f64 {
            // Linear interpolation between closest ranks (type-7 quantile).
            let h = p * (v.len() - 1) as f64;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            v[lo] + (h - lo as f64) * (v[hi] - v[lo])
        };
        Some(Summary {
            n: v.len(),
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: v[v.len() - 1],
            mean: v.iter().sum::<f64>() / v.len() as f64,
        })
    }

    /// Summarize durations, in seconds.
    pub fn of_durations(values: &[SimDuration]) -> Option<Summary> {
        let secs: Vec<f64> = values.iter().map(|d| d.as_secs_f64()).collect();
        Summary::of(&secs)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3} mean={:.3}",
            self.n, self.min, self.q1, self.median, self.q3, self.max, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_counts_and_timestamps() {
        let mut b = ActivityBoard::default();
        assert_eq!(b.count(Activity::RibChange), 0);
        assert_eq!(b.last_routing_change(), None);

        b.report(SimTime::from_millis(5), Activity::RibChange);
        b.report(SimTime::from_millis(9), Activity::UpdateSent);
        b.report(SimTime::from_millis(7), Activity::SessionUp);

        assert_eq!(b.count(Activity::RibChange), 1);
        assert_eq!(b.last(Activity::RibChange), Some(SimTime::from_millis(5)));
        // SessionUp is not a routing change
        assert_eq!(b.last_routing_change(), Some(SimTime::from_millis(9)));
        assert_eq!(
            b.last_of(&[Activity::RibChange, Activity::SessionUp]),
            Some(SimTime::from_millis(7))
        );

        b.reset();
        assert_eq!(b.count(Activity::UpdateSent), 0);
        assert_eq!(b.last_routing_change(), None);
    }

    #[test]
    fn last_of_is_max_across_kinds_reported_out_of_order() {
        let mut b = ActivityBoard::default();
        // Reports arrive out of chronological order across kinds: the
        // latest *timestamp* (t=20, FibChange) is reported first, then an
        // earlier one for a different kind. last_of must still pick the
        // true max, not the most recently reported value.
        b.report(SimTime::from_millis(20), Activity::FibChange);
        b.report(SimTime::from_millis(3), Activity::RibChange);
        b.report(SimTime::from_millis(11), Activity::UpdateSent);
        assert_eq!(
            b.last_of(&[
                Activity::RibChange,
                Activity::FibChange,
                Activity::UpdateSent
            ]),
            Some(SimTime::from_millis(20))
        );
        // Kinds never reported contribute nothing.
        assert_eq!(
            b.last_of(&[Activity::RibChange, Activity::SessionDown]),
            Some(SimTime::from_millis(3))
        );
        assert_eq!(b.last_of(&[Activity::SessionDown]), None);
        assert_eq!(b.last_of(&[]), None);

        // reset() clears every timestamp: a new phase starts from None and
        // only sees its own activity.
        b.reset();
        assert_eq!(b.last_of(&[Activity::FibChange]), None);
        b.report(SimTime::from_millis(25), Activity::FibChange);
        assert_eq!(
            b.last_of(&[Activity::FibChange, Activity::UpdateSent]),
            Some(SimTime::from_millis(25))
        );
    }

    #[test]
    fn routing_change_classification() {
        assert!(Activity::RibChange.is_routing_change());
        assert!(Activity::FlowInstalled.is_routing_change());
        assert!(!Activity::SessionUp.is_routing_change());
        assert!(!Activity::PrefixOriginated.is_routing_change());
        assert!(!Activity::ControllerRecompute.is_routing_change());
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[2.0]).unwrap();
        assert_eq!(s.min, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn summary_known_quartiles() {
        // 0..=8: median 4, q1 2, q3 6 under type-7 quantiles.
        let v: Vec<f64> = (0..9).map(|x| x as f64).collect();
        let s = Summary::of(&v).unwrap();
        assert_eq!(s.min, 0.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.q3, 6.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.mean, 4.0);
    }

    #[test]
    fn summary_interpolates() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median, 2.5);
        assert_eq!(s.q1, 1.75);
        assert_eq!(s.q3, 3.25);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of_durations(&[]).is_none());
    }

    #[test]
    fn summary_of_durations_converts_to_seconds() {
        let s = Summary::of_durations(&[
            SimDuration::from_millis(500),
            SimDuration::from_millis(1500),
        ])
        .unwrap();
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 1.5);
        assert_eq!(s.median, 1.0);
    }
}
