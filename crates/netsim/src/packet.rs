//! Data-plane packets.
//!
//! The paper monitors "end-to-end connectivity with tools like ping".
//! [`DataPacket`] is the simulator's IP packet: routers forward it by
//! longest-prefix match over their FIBs, SDN switches by flow-table lookup,
//! and echo requests are answered by the owner of the destination prefix.

use std::net::Ipv4Addr;

use crate::node::Message;

/// What a data packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// ICMP-style echo request.
    EchoRequest,
    /// ICMP-style echo reply.
    EchoReply,
    /// Opaque payload of the given size (video/bulk traffic stand-in).
    Payload(u16),
}

/// A simulated IP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataPacket {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Correlation id (sequence number for pings, flow id for payload).
    pub id: u64,
    /// Remaining hop budget; dropped at zero.
    pub ttl: u8,
    /// Payload discriminator.
    pub kind: PacketKind,
}

impl DataPacket {
    /// Default initial TTL.
    pub const DEFAULT_TTL: u8 = 64;

    /// Build an echo request.
    pub fn echo_request(src: Ipv4Addr, dst: Ipv4Addr, id: u64) -> DataPacket {
        DataPacket {
            src,
            dst,
            id,
            ttl: Self::DEFAULT_TTL,
            kind: PacketKind::EchoRequest,
        }
    }

    /// The matching echo reply (addresses swapped, TTL refreshed).
    pub fn reply_to(&self) -> DataPacket {
        debug_assert_eq!(self.kind, PacketKind::EchoRequest);
        DataPacket {
            src: self.dst,
            dst: self.src,
            id: self.id,
            ttl: Self::DEFAULT_TTL,
            kind: PacketKind::EchoReply,
        }
    }

    /// Copy with TTL decremented; `None` when the budget is exhausted.
    pub fn decrement_ttl(&self) -> Option<DataPacket> {
        if self.ttl <= 1 {
            return None;
        }
        Some(DataPacket {
            ttl: self.ttl - 1,
            ..*self
        })
    }

    /// Nominal on-wire size in bytes.
    pub fn wire_len(&self) -> usize {
        20 + match self.kind {
            PacketKind::EchoRequest | PacketKind::EchoReply => 8,
            PacketKind::Payload(n) => n as usize,
        }
    }
}

/// Implemented by simulator message types that can carry data packets.
pub trait DataApp: Message {
    /// Wrap a packet.
    fn from_data(p: DataPacket) -> Self;
    /// Unwrap a packet.
    fn as_data(&self) -> Option<&DataPacket>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 1, 0, 1);
        let req = DataPacket::echo_request(a, b, 42);
        assert_eq!(req.ttl, 64);
        let rep = req.reply_to();
        assert_eq!(rep.src, b);
        assert_eq!(rep.dst, a);
        assert_eq!(rep.id, 42);
        assert_eq!(rep.kind, PacketKind::EchoReply);
    }

    #[test]
    fn ttl_exhaustion() {
        let mut p = DataPacket::echo_request(Ipv4Addr::UNSPECIFIED, Ipv4Addr::BROADCAST, 1);
        p.ttl = 2;
        let p1 = p.decrement_ttl().unwrap();
        assert_eq!(p1.ttl, 1);
        assert!(p1.decrement_ttl().is_none());
    }

    #[test]
    fn wire_len_by_kind() {
        let mut p = DataPacket::echo_request(Ipv4Addr::UNSPECIFIED, Ipv4Addr::BROADCAST, 1);
        assert_eq!(p.wire_len(), 28);
        p.kind = PacketKind::Payload(1000);
        assert_eq!(p.wire_len(), 1020);
    }
}
