//! Deterministic random number generation.
//!
//! The simulator uses a hand-rolled xoshiro256** generator rather than an
//! external crate so that experiment runs are bit-for-bit reproducible across
//! platforms and crate upgrades. Every run owns exactly one root [`SimRng`]
//! seeded from the experiment seed; substreams for independent components are
//! derived with [`SimRng::fork`], which keeps component behaviour independent
//! of the order in which *other* components draw numbers.

use crate::time::SimDuration;

/// splitmix64, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed (expanded via splitmix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent substream, keyed by `stream`. Forking with the
    /// same key from the same generator state yields the same substream.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from_u64(base ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics when `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Uniform duration in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn duration_between(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        if hi <= lo {
            return lo;
        }
        SimDuration::from_nanos(self.range_u64(lo.as_nanos(), hi.as_nanos()))
    }

    /// Jitter a base duration to a uniform value in
    /// `[base*lo_frac, base*hi_frac)`. This is how the BGP MRAI timer applies
    /// its RFC 4271 §9.2.1.1 jitter (`lo_frac = 0.75, hi_frac = 1.0`).
    pub fn jittered(&mut self, base: SimDuration, lo_frac: f64, hi_frac: f64) -> SimDuration {
        assert!(
            0.0 <= lo_frac && lo_frac <= hi_frac,
            "invalid jitter range {lo_frac}..{hi_frac}"
        );
        let lo = (base.as_nanos() as f64 * lo_frac) as u64;
        let hi = (base.as_nanos() as f64 * hi_frac) as u64;
        if hi <= lo {
            return SimDuration::from_nanos(lo);
        }
        SimDuration::from_nanos(self.range_u64(lo, hi))
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        // Draw u in (0,1]; -ln(u) * mean.
        let u = 1.0 - self.unit_f64();
        SimDuration::from_secs_f64(-u.ln() * mean.as_secs_f64())
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below_usize(xs.len())])
        }
    }

    /// Sample `k` distinct indices from `0..n` (reservoir sampling; output in
    /// ascending order for determinism of downstream iteration).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.below_usize(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir.sort_unstable();
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn jittered_respects_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        let base = SimDuration::from_secs(30);
        for _ in 0..1000 {
            let d = r.jittered(base, 0.75, 1.0);
            assert!(d >= SimDuration::from_millis(22_500));
            assert!(d < SimDuration::from_secs(30));
        }
    }

    #[test]
    fn jittered_degenerate_range_returns_lo() {
        let mut r = SimRng::seed_from_u64(3);
        let base = SimDuration::from_secs(10);
        assert_eq!(r.jittered(base, 1.0, 1.0), base);
        assert_eq!(r.jittered(SimDuration::ZERO, 0.5, 2.0), SimDuration::ZERO);
    }

    #[test]
    fn forks_are_independent_of_parent_draw_order() {
        // Forking with the same key from the same state must agree.
        let mut a = SimRng::seed_from_u64(5);
        let mut b = SimRng::seed_from_u64(5);
        let mut fa = a.fork(77);
        let mut fb = b.fork(77);
        for _ in 0..32 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_sorted() {
        let mut r = SimRng::seed_from_u64(13);
        let s = r.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&i| i < 100));
        // k >= n returns everything
        assert_eq!(r.sample_indices(5, 99), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = SimRng::seed_from_u64(17);
        let mean = SimDuration::from_millis(100);
        let n = 4000u64;
        let total: u64 = (0..n).map(|_| r.exponential(mean).as_nanos()).sum();
        let avg = total / n;
        // within 10% of the requested mean
        assert!((85_000_000..115_000_000).contains(&avg), "avg {avg}");
    }
}
