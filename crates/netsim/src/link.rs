//! Point-to-point links.
//!
//! A link connects exactly two nodes and is the only way messages move
//! between them. Links model propagation latency (optionally jittered or
//! bandwidth-dependent), administrative up/down state, and random loss.
//! Delivery on a link is FIFO per direction — the simulator clamps each
//! arrival to be strictly after the previous arrival in the same direction,
//! which gives the in-order guarantee BGP gets from TCP without simulating a
//! byte stream.

use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifier of a link, dense from zero in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Sentinel used for messages injected by the experiment driver rather
    /// than arriving over a real link (e.g. "announce this prefix" commands).
    pub const CONTROL: LinkId = LinkId(u32::MAX);

    /// Index into simulator-internal vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for the driver-injection sentinel.
    pub fn is_control(self) -> bool {
        self == Self::CONTROL
    }
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_control() {
            write!(f, "l<ctl>")
        } else {
            write!(f, "l{}", self.0)
        }
    }
}

/// How a link turns a message into a delivery delay.
#[derive(Debug, Clone)]
pub enum LatencyModel {
    /// Constant propagation delay.
    Fixed(SimDuration),
    /// Uniform delay in `[base, base + jitter)`.
    Jittered {
        /// Minimum (propagation) delay.
        base: SimDuration,
        /// Width of the uniform jitter window.
        jitter: SimDuration,
    },
    /// Propagation delay plus serialization at a fixed byte rate.
    BandwidthDelay {
        /// Propagation component.
        prop: SimDuration,
        /// Serialization cost per byte of encoded message.
        nanos_per_byte: u64,
    },
}

impl LatencyModel {
    /// Sample the delay for one message of `wire_len` encoded bytes.
    pub fn sample(&self, rng: &mut SimRng, wire_len: usize) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Jittered { base, jitter } => {
                if jitter.is_zero() {
                    base
                } else {
                    base + rng.duration_between(SimDuration::ZERO, jitter)
                }
            }
            LatencyModel::BandwidthDelay {
                prop,
                nanos_per_byte,
            } => prop + SimDuration::from_nanos(nanos_per_byte * wire_len as u64),
        }
    }

    /// Lower bound of the delay this model can produce (used in tests and
    /// sanity checks).
    pub fn min_delay(&self) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Jittered { base, .. } => base,
            LatencyModel::BandwidthDelay { prop, .. } => prop,
        }
    }
}

/// A bidirectional point-to-point link between two nodes.
#[derive(Debug, Clone)]
pub struct Link {
    /// This link's identifier.
    pub id: LinkId,
    /// One endpoint (the first passed to `add_link`).
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Delay model applied to every message.
    pub latency: LatencyModel,
    /// Operational state; messages sent or in flight while down are dropped.
    pub up: bool,
    /// Independent per-message drop probability (0 disables).
    pub loss: f64,
    /// Last scheduled arrival per direction (index 0: a→b, 1: b→a), used to
    /// enforce FIFO delivery.
    pub(crate) last_arrival: [SimTime; 2],
}

impl Link {
    pub(crate) fn new(id: LinkId, a: NodeId, b: NodeId, latency: LatencyModel) -> Self {
        assert_ne!(a, b, "self-links are not supported");
        Link {
            id,
            a,
            b,
            latency,
            up: true,
            loss: 0.0,
            last_arrival: [SimTime::ZERO; 2],
        }
    }

    /// The endpoint opposite `n`. Panics when `n` is not an endpoint.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("{n} is not an endpoint of {}", self.id)
        }
    }

    /// True when `n` is one of this link's endpoints.
    pub fn touches(&self, n: NodeId) -> bool {
        n == self.a || n == self.b
    }

    /// Direction index for a transmission originating at `from`.
    pub(crate) fn dir(&self, from: NodeId) -> usize {
        if from == self.a {
            0
        } else {
            debug_assert_eq!(from, self.b);
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Link {
        Link::new(
            LinkId(0),
            NodeId(1),
            NodeId(2),
            LatencyModel::Fixed(SimDuration::from_millis(5)),
        )
    }

    #[test]
    fn other_endpoint() {
        let l = mk();
        assert_eq!(l.other(NodeId(1)), NodeId(2));
        assert_eq!(l.other(NodeId(2)), NodeId(1));
        assert!(l.touches(NodeId(1)) && l.touches(NodeId(2)));
        assert!(!l.touches(NodeId(3)));
    }

    #[test]
    #[should_panic]
    fn other_rejects_non_endpoint() {
        mk().other(NodeId(9));
    }

    #[test]
    #[should_panic]
    fn self_link_rejected() {
        let _ = Link::new(
            LinkId(0),
            NodeId(1),
            NodeId(1),
            LatencyModel::Fixed(SimDuration::ZERO),
        );
    }

    #[test]
    fn latency_models_sample_in_bounds() {
        let mut rng = SimRng::seed_from_u64(1);
        let fixed = LatencyModel::Fixed(SimDuration::from_millis(3));
        assert_eq!(fixed.sample(&mut rng, 100), SimDuration::from_millis(3));

        let jit = LatencyModel::Jittered {
            base: SimDuration::from_millis(2),
            jitter: SimDuration::from_millis(4),
        };
        for _ in 0..500 {
            let d = jit.sample(&mut rng, 0);
            assert!(d >= SimDuration::from_millis(2) && d < SimDuration::from_millis(6));
        }

        let bw = LatencyModel::BandwidthDelay {
            prop: SimDuration::from_millis(1),
            nanos_per_byte: 8, // 1 Gb/s
        };
        assert_eq!(
            bw.sample(&mut rng, 1000),
            SimDuration::from_millis(1) + SimDuration::from_micros(8)
        );
    }

    #[test]
    fn control_sentinel() {
        assert!(LinkId::CONTROL.is_control());
        assert!(!LinkId(0).is_control());
        assert_eq!(LinkId::CONTROL.to_string(), "l<ctl>");
    }
}
