//! The event queue.
//!
//! Ordering is by `(time, sequence)`: the monotone sequence number breaks
//! ties deterministically, so two events scheduled for the same instant
//! fire in the order they were scheduled, on every platform, every run.
//! The queue also tracks how many *progress* events it holds so that
//! quiescence detection ("only keepalives left") is O(1).
//!
//! Internally the queue separates *ordering* from *storage*:
//!
//! * Payloads ([`EventBody`]) live in a slab whose freed slots are recycled
//!   through a freelist, so the steady-state schedule→fire cycle performs
//!   no allocation at all — a slot only comes into existence when the
//!   in-flight population exceeds everything seen before (and the
//!   [`with_capacity`](EventQueue::with_capacity) reservation).
//! * Ordering works on `(time, seq, slot)` keys in one of two backends
//!   ([`QueueBackend`]): the O(1)-amortized calendar queue (default) or
//!   the original binary heap, kept as the reference implementation. Both
//!   produce identical pop sequences and identical slab traffic, so runs
//!   are byte-for-byte reproducible across the backend switch.

use crate::link::LinkId;
use crate::node::{Message, NodeId, TimerClass, TimerToken};
use crate::queue::{CalendarQueue, HeapQueue, Key};
use crate::time::SimTime;

/// What happens when an event fires.
///
/// Public (together with [`EventQueue`]) so out-of-crate harnesses — the
/// ordering-oracle property test and the throughput bench's hot-loop
/// replica — can drive the queue with realistic payloads; the simulator
/// itself constructs these internally.
#[derive(Debug, Clone)]
pub enum EventBody<M> {
    /// Deliver `msg` to `to`; `from` is the physical sender.
    Deliver {
        /// Link the message travelled over.
        link: LinkId,
        /// Physical sender.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// The payload.
        msg: M,
    },
    /// Fire a node timer. `gen` must match the currently armed generation,
    /// otherwise the timer was cancelled or re-armed and this firing is stale.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Which of the node's timers fired.
        token: TimerToken,
        /// Progress or maintenance (quiescence accounting).
        class: TimerClass,
        /// Arming generation; stale firings are suppressed.
        gen: u64,
    },
    /// Administratively set a link up or down.
    LinkAdmin {
        /// The link.
        link: LinkId,
        /// New admin state.
        up: bool,
    },
    /// Administratively crash (`up = false`) or restore (`up = true`) a node.
    NodeAdmin {
        /// The node.
        node: NodeId,
        /// New admin state.
        up: bool,
    },
    /// Set a link's random per-message loss probability at a scheduled
    /// time. Carried as parts-per-million so fault schedules stay integer
    /// (and therefore `Eq`/hashable and byte-deterministic).
    LinkLoss {
        /// The link.
        link: LinkId,
        /// New loss probability in parts-per-million (0..=1_000_000).
        loss_ppm: u32,
    },
    /// Invoke a node's `on_start`.
    Start {
        /// The node to start.
        node: NodeId,
    },
}

impl<M> EventBody<M> {
    /// Maintenance events don't block quiescence.
    fn is_maintenance(&self) -> bool {
        matches!(
            self,
            EventBody::Timer {
                class: TimerClass::Maintenance,
                ..
            }
        )
    }
}

/// A popped event: when it fires and what it does.
#[derive(Debug)]
pub struct Event<M> {
    /// Firing time.
    pub at: SimTime,
    /// Scheduling sequence number — the deterministic tie-break.
    pub seq: u64,
    /// What the event does.
    pub body: EventBody<M>,
}

/// Which priority structure orders the pending events.
///
/// Both deliver the exact same `(time, sequence)` order — the calendar
/// queue is the fast default, the binary heap is the reference the
/// determinism suite and the ordering oracle diff it against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueBackend {
    /// Bucketed calendar queue: O(1) amortized push/pop (default).
    Calendar,
    /// The original binary min-heap: O(log n) per operation.
    Heap,
}

#[derive(Debug)]
enum Backend {
    Calendar(CalendarQueue),
    Heap(HeapQueue),
}

impl Backend {
    fn push(&mut self, key: Key) {
        match self {
            Backend::Calendar(q) => q.push(key),
            Backend::Heap(q) => q.push(key),
        }
    }

    fn pop(&mut self) -> Option<Key> {
        match self {
            Backend::Calendar(q) => q.pop(),
            Backend::Heap(q) => q.pop(),
        }
    }

    fn peek(&mut self) -> Option<Key> {
        match self {
            Backend::Calendar(q) => q.peek(),
            Backend::Heap(q) => q.peek(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Backend::Calendar(q) => q.len(),
            Backend::Heap(q) => q.len(),
        }
    }

    fn drain_unordered(&mut self) -> Vec<Key> {
        match self {
            Backend::Calendar(q) => q.drain_unordered(),
            Backend::Heap(q) => q.drain_unordered(),
        }
    }

    fn kind(&self) -> QueueBackend {
        match self {
            Backend::Calendar(_) => QueueBackend::Calendar,
            Backend::Heap(_) => QueueBackend::Heap,
        }
    }
}

/// Slab of event payloads with freelist recycling.
#[derive(Debug)]
struct Slab<M> {
    slots: Vec<Option<EventBody<M>>>,
    free: Vec<u32>,
    /// Slots handed out from the freelist — the pooled hot path.
    pooled: u64,
    /// Slots created past the reservation watermark — each one is a fresh
    /// allocation (or amortized growth) taken on the hot path.
    allocs_hot: u64,
    /// Reservation watermark: slot creation below it is pre-paid.
    reserved: usize,
}

impl<M> Slab<M> {
    fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            pooled: 0,
            allocs_hot: 0,
            reserved: capacity,
        }
    }

    fn insert(&mut self, body: EventBody<M>) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.pooled += 1;
            debug_assert!(self.slots[slot as usize].is_none());
            self.slots[slot as usize] = Some(body);
            slot
        } else {
            if self.slots.len() >= self.reserved {
                self.allocs_hot += 1;
            }
            let slot = u32::try_from(self.slots.len()).expect("event population fits u32");
            self.slots.push(Some(body));
            slot
        }
    }

    fn remove(&mut self, slot: u32) -> EventBody<M> {
        let body = self.slots[slot as usize]
            .take()
            .expect("queue keys reference live slots");
        self.free.push(slot);
        body
    }
}

/// Allocation accounting for the event hot path, reported as the
/// `core.sim.events_pooled` / `core.sim.allocs_hot` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Events whose slot was recycled from the freelist (no allocation).
    pub events_pooled: u64,
    /// Events whose slot had to be created past the pre-sized reservation.
    pub allocs_hot: u64,
}

impl<M: Message> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Deterministic event queue with O(1) progress accounting.
pub struct EventQueue<M> {
    slab: Slab<M>,
    backend: Backend,
    next_seq: u64,
    progress: usize,
}

impl<M: Message> EventQueue<M> {
    /// An empty queue with no slab reservation.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A queue with `capacity` event slots pre-reserved, so a simulation
    /// whose in-flight event count is predictable (roughly proportional to
    /// nodes + links) never reallocates the slab mid-dispatch.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            slab: Slab::with_capacity(capacity),
            backend: Backend::Calendar(CalendarQueue::new()),
            next_seq: 0,
            progress: 0,
        }
    }

    /// Reserve room for at least `additional` more events.
    #[allow(dead_code)]
    pub fn reserve(&mut self, additional: usize) {
        self.slab.slots.reserve(additional);
        self.slab.free.reserve(additional);
        self.slab.reserved = self.slab.reserved.max(self.slab.slots.len() + additional);
    }

    /// Current allocated capacity.
    #[allow(dead_code)]
    pub fn capacity(&self) -> usize {
        self.slab.slots.capacity()
    }

    /// The active ordering backend.
    pub fn backend(&self) -> QueueBackend {
        self.backend.kind()
    }

    /// Switch the ordering backend, migrating every pending event. Order is
    /// preserved because both backends sort by the same `(time, seq)` keys;
    /// slab slots (and therefore pooling counters) are untouched.
    pub fn set_backend(&mut self, backend: QueueBackend) {
        if self.backend.kind() == backend {
            return;
        }
        let keys = self.backend.drain_unordered();
        self.backend = match backend {
            QueueBackend::Calendar => Backend::Calendar(CalendarQueue::new()),
            QueueBackend::Heap => Backend::Heap(HeapQueue::new()),
        };
        for key in keys {
            self.backend.push(key);
        }
    }

    /// Schedule `body` at `at`.
    pub fn push(&mut self, at: SimTime, body: EventBody<M>) {
        if !body.is_maintenance() {
            self.progress += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.slab.insert(body);
        self.backend.push((at.as_nanos(), seq, slot));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        let (t, seq, slot) = self.backend.pop()?;
        let body = self.slab.remove(slot);
        if !body.is_maintenance() {
            self.progress -= 1;
        }
        Some(Event {
            at: SimTime::from_nanos(t),
            seq,
            body,
        })
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.backend.peek().map(|k| SimTime::from_nanos(k.0))
    }

    /// Number of pending events of any class.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// True when no events remain at all.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.backend.len() == 0
    }

    /// True when every pending event is maintenance-class — i.e. the
    /// network has no protocol work left.
    pub fn only_maintenance(&self) -> bool {
        self.progress == 0
    }

    /// Slab recycling counters for the `core.sim.*` metrics.
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            events_pooled: self.slab.pooled,
            allocs_hot: self.slab.allocs_hot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, Clone)]
    struct NoMsg;
    impl Message for NoMsg {}

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn start(n: u32) -> EventBody<NoMsg> {
        EventBody::Start { node: NodeId(n) }
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut q: EventQueue<NoMsg> = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        let before = q.capacity();
        for n in 0..64u32 {
            q.push(t(n as u64), start(n));
        }
        assert_eq!(q.capacity(), before, "no growth within the reservation");
        assert_eq!(q.pool_stats().allocs_hot, 0, "reserved slots are pre-paid");
        q.reserve(128);
        assert!(q.capacity() >= 64 + 128);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), start(0));
        q.push(t(10), start(1));
        q.push(t(20), start(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_millis())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for n in 0..10u32 {
            q.push(t(5), start(n));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.body {
                EventBody::Start { node } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn progress_accounting() {
        let mut q: EventQueue<NoMsg> = EventQueue::new();
        assert!(q.only_maintenance());
        q.push(
            t(1),
            EventBody::Timer {
                node: NodeId(0),
                token: TimerToken(1),
                class: TimerClass::Maintenance,
                gen: 0,
            },
        );
        assert!(q.only_maintenance(), "keepalive alone is quiescent");
        q.push(
            t(2),
            EventBody::Timer {
                node: NodeId(0),
                token: TimerToken(2),
                class: TimerClass::Progress,
                gen: 0,
            },
        );
        assert!(!q.only_maintenance());
        q.pop(); // maintenance popped first (earlier)
        assert!(!q.only_maintenance());
        q.pop();
        assert!(q.only_maintenance());
        assert!(q.is_empty());
    }

    #[test]
    fn slots_recycle_through_the_freelist() {
        let mut q: EventQueue<NoMsg> = EventQueue::with_capacity(2);
        q.push(t(1), start(0));
        q.push(t(2), start(1));
        assert_eq!(q.pool_stats(), PoolStats::default());
        for round in 0..100u64 {
            let e = q.pop().unwrap();
            assert_eq!(e.at.as_millis(), round + 1);
            q.push(t(round + 3), start(0));
        }
        let stats = q.pool_stats();
        assert_eq!(stats.events_pooled, 100, "steady state recycles slots");
        assert_eq!(stats.allocs_hot, 0, "steady state never allocates");
    }

    #[test]
    fn allocs_past_reservation_are_counted() {
        let mut q: EventQueue<NoMsg> = EventQueue::with_capacity(4);
        for n in 0..10u32 {
            q.push(t(n as u64), start(n));
        }
        assert_eq!(q.pool_stats().allocs_hot, 6);
    }

    #[test]
    fn backend_switch_preserves_order_and_pending_events() {
        let mut q: EventQueue<NoMsg> = EventQueue::new();
        assert_eq!(q.backend(), QueueBackend::Calendar);
        for n in 0..20u32 {
            // Mix of near, far (overflow-range) and tied timestamps.
            let at = match n % 3 {
                0 => t(5),
                1 => t(n as u64),
                _ => t(40_000 + n as u64),
            };
            q.push(at, start(n));
        }
        // Pop a few on the calendar, switch mid-stream, finish on the heap.
        let mut order = Vec::new();
        for _ in 0..7 {
            order.push(q.pop().unwrap().seq);
        }
        q.set_backend(QueueBackend::Heap);
        assert_eq!(q.backend(), QueueBackend::Heap);
        assert_eq!(q.len(), 13);
        while let Some(e) = q.pop() {
            order.push(e.seq);
        }

        // Reference order from a fresh heap-backed queue.
        let mut r: EventQueue<NoMsg> = EventQueue::new();
        r.set_backend(QueueBackend::Heap);
        for n in 0..20u32 {
            let at = match n % 3 {
                0 => t(5),
                1 => t(n as u64),
                _ => t(40_000 + n as u64),
            };
            r.push(at, start(n));
        }
        let expect: Vec<u64> = std::iter::from_fn(|| r.pop()).map(|e| e.seq).collect();
        assert_eq!(order, expect);
    }
}
