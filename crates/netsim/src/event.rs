//! The event queue.
//!
//! A binary min-heap ordered by `(time, sequence)`. The monotone sequence
//! number breaks ties deterministically: two events scheduled for the same
//! instant fire in the order they were scheduled, on every platform, every
//! run. The queue also tracks how many *progress* events it holds so that
//! quiescence detection ("only keepalives left") is O(1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::link::LinkId;
use crate::node::{Message, NodeId, TimerClass, TimerToken};
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub(crate) enum EventBody<M> {
    /// Deliver `msg` to `to`; `from` is the physical sender.
    Deliver {
        link: LinkId,
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    /// Fire a node timer. `gen` must match the currently armed generation,
    /// otherwise the timer was cancelled or re-armed and this firing is stale.
    Timer {
        node: NodeId,
        token: TimerToken,
        class: TimerClass,
        gen: u64,
    },
    /// Administratively set a link up or down.
    LinkAdmin { link: LinkId, up: bool },
    /// Administratively crash (`up = false`) or restore (`up = true`) a node.
    NodeAdmin { node: NodeId, up: bool },
    /// Invoke a node's `on_start`.
    Start { node: NodeId },
}

impl<M> EventBody<M> {
    /// Maintenance events don't block quiescence.
    fn is_maintenance(&self) -> bool {
        matches!(
            self,
            EventBody::Timer {
                class: TimerClass::Maintenance,
                ..
            }
        )
    }
}

#[derive(Debug)]
pub(crate) struct Event<M> {
    pub at: SimTime,
    pub seq: u64,
    pub body: EventBody<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event on top.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic event queue with O(1) progress accounting.
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
    progress: usize,
}

impl<M: Message> EventQueue<M> {
    #[allow(dead_code)]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A queue with `capacity` event slots pre-reserved, so a simulation
    /// whose in-flight event count is predictable (roughly proportional to
    /// nodes + links) never reallocates the heap mid-dispatch.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            progress: 0,
        }
    }

    /// Reserve room for at least `additional` more events.
    #[allow(dead_code)]
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Current allocated capacity.
    #[allow(dead_code)]
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedule `body` at `at`.
    pub fn push(&mut self, at: SimTime, body: EventBody<M>) {
        if !body.is_maintenance() {
            self.progress += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, body });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        let ev = self.heap.pop()?;
        if !ev.body.is_maintenance() {
            self.progress -= 1;
        }
        Some(ev)
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events of any class.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain at all.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when every pending event is maintenance-class — i.e. the
    /// network has no protocol work left.
    pub fn only_maintenance(&self) -> bool {
        self.progress == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, Clone)]
    struct NoMsg;
    impl Message for NoMsg {}

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn start(n: u32) -> EventBody<NoMsg> {
        EventBody::Start { node: NodeId(n) }
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut q: EventQueue<NoMsg> = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        let before = q.capacity();
        for n in 0..64u32 {
            q.push(t(n as u64), start(n));
        }
        assert_eq!(q.capacity(), before, "no growth within the reservation");
        q.reserve(128);
        assert!(q.capacity() >= 64 + 128);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), start(0));
        q.push(t(10), start(1));
        q.push(t(20), start(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_millis())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for n in 0..10u32 {
            q.push(t(5), start(n));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.body {
                EventBody::Start { node } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn progress_accounting() {
        let mut q: EventQueue<NoMsg> = EventQueue::new();
        assert!(q.only_maintenance());
        q.push(
            t(1),
            EventBody::Timer {
                node: NodeId(0),
                token: TimerToken(1),
                class: TimerClass::Maintenance,
                gen: 0,
            },
        );
        assert!(q.only_maintenance(), "keepalive alone is quiescent");
        q.push(
            t(2),
            EventBody::Timer {
                node: NodeId(0),
                token: TimerToken(2),
                class: TimerClass::Progress,
                gen: 0,
            },
        );
        assert!(!q.only_maintenance());
        q.pop(); // maintenance popped first (earlier)
        assert!(!q.only_maintenance());
        q.pop();
        assert!(q.only_maintenance());
        assert!(q.is_empty());
    }
}
