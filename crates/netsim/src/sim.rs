//! The discrete-event simulator.
//!
//! [`Simulator`] owns the nodes, links, event queue, clock, RNG, trace and
//! statistics for one run. Nodes interact with the world only through the
//! [`Ctx`] passed to their callbacks; every effect they request (sends,
//! timers, activity reports, trace records) is buffered and applied by the
//! engine after the callback returns, in order. Together with the seeded RNG
//! and the tie-breaking event queue this makes runs bit-for-bit reproducible.

use std::collections::HashMap;

use bgpsdn_obs::{MetricsRegistry, TraceEvent, WallSpan};

use crate::event::{EventBody, EventQueue, PoolStats, QueueBackend};
use crate::link::{LatencyModel, Link, LinkId};
use crate::node::{Message, Node, NodeId, TimerClass, TimerToken};
use crate::rng::SimRng;
use crate::stats::{Activity, ActivityBoard, SimStats};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceCategory};

/// Effects a node requests during a callback, applied afterwards by the
/// engine.
enum Action<M> {
    Send {
        link: LinkId,
        msg: M,
    },
    SetTimerAt {
        at: SimTime,
        token: TimerToken,
        class: TimerClass,
    },
    CancelTimer {
        token: TimerToken,
    },
    Report(Activity),
    Trace {
        category: TraceCategory,
        event: TraceEvent,
    },
    Count {
        name: &'static str,
        delta: u64,
    },
    Gauge {
        name: &'static str,
        value: i64,
    },
    Observe {
        name: &'static str,
        value: u64,
    },
}

/// The world as one node sees it during a callback.
pub struct Ctx<'a, M: Message> {
    now: SimTime,
    me: NodeId,
    rng: &'a mut SimRng,
    links: &'a [Link],
    adjacency: &'a [Vec<(LinkId, NodeId)>],
    trace_enabled: &'a Trace,
    profiling: bool,
    causal_enabled: bool,
    causal_seq: &'a mut u64,
    actions: Vec<Action<M>>,
}

impl<'a, M: Message> Ctx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's identifier.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The run's random stream. All randomness must come from here.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Queue `msg` for transmission on `link`. The message is silently
    /// dropped if the link is down when the send is applied or when the
    /// delivery would occur.
    pub fn send(&mut self, link: LinkId, msg: M) {
        self.actions.push(Action::Send { link, msg });
    }

    /// Arm (or re-arm) the timer named `token` to fire after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken, class: TimerClass) {
        let at = self.now + delay;
        self.actions.push(Action::SetTimerAt { at, token, class });
    }

    /// Arm (or re-arm) the timer named `token` to fire at absolute time `at`.
    pub fn set_timer_at(&mut self, at: SimTime, token: TimerToken, class: TimerClass) {
        self.actions.push(Action::SetTimerAt { at, token, class });
    }

    /// Cancel the timer named `token` (no-op if not armed).
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.actions.push(Action::CancelTimer { token });
    }

    /// Report semantic routing-plane activity to the measurement board.
    pub fn report(&mut self, kind: Activity) {
        self.actions.push(Action::Report(kind));
    }

    /// Record a typed trace event. The closure runs only when `category` is
    /// enabled, so hot paths pay one mask test when tracing is off. The
    /// event's own category must match `category` (debug-asserted when the
    /// record is applied).
    pub fn trace(&mut self, category: TraceCategory, event: impl FnOnce() -> TraceEvent) {
        if self.trace_enabled.is_enabled(category) {
            self.actions.push(Action::Trace {
                category,
                event: event(),
            });
        }
    }

    /// Add `delta` to this node's counter `name`
    /// (`<crate>.<subsystem>.<name>` convention).
    pub fn count(&mut self, name: &'static str, delta: u64) {
        self.actions.push(Action::Count { name, delta });
    }

    /// Set this node's gauge `name`.
    pub fn gauge(&mut self, name: &'static str, value: i64) {
        self.actions.push(Action::Gauge { name, value });
    }

    /// Record a sample into this node's histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.actions.push(Action::Observe { name, value });
    }

    /// Start a wall-clock span; no-op (and no clock read) unless the
    /// simulator has profiling enabled. Close with [`Ctx::end_span`].
    #[inline]
    pub fn span(&self) -> WallSpan {
        WallSpan::start(self.profiling)
    }

    /// Record the elapsed wall time of `span` into histogram `name`, if the
    /// span was started with profiling enabled. Returns the sample.
    #[inline]
    pub fn end_span(&mut self, name: &'static str, span: WallSpan) -> Option<u64> {
        let ns = span.elapsed_ns()?;
        self.observe(name, ns);
        Some(ns)
    }

    /// True when wall-clock profiling spans are being collected.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// True when causal lineage tracing ([`TraceCategory::Causal`]) is
    /// enabled — the gate for all causal bookkeeping in the apps.
    pub fn causal_enabled(&self) -> bool {
        self.causal_enabled
    }

    /// Mint a fresh causal event id, unique and monotone across the run,
    /// or 0 when causal tracing is disabled (apps must treat 0 as "no
    /// lineage"). Ids never influence simulation behavior, so runs with
    /// tracing on and off stay identical in sim time.
    pub fn causal_id(&mut self) -> u64 {
        if !self.causal_enabled {
            return 0;
        }
        *self.causal_seq += 1;
        *self.causal_seq
    }

    /// The links adjacent to this node, with the neighbor at the far end.
    pub fn neighbors(&self) -> &[(LinkId, NodeId)] {
        &self.adjacency[self.me.index()]
    }

    /// Look up a link by id. Panics on [`LinkId::CONTROL`].
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Whether `id` is operationally up.
    pub fn link_up(&self, id: LinkId) -> bool {
        self.links[id.index()].up
    }

    /// The node at the far end of `id` relative to this node.
    pub fn peer(&self, id: LinkId) -> NodeId {
        self.links[id.index()].other(self.me)
    }
}

/// Result of [`Simulator::run_until_quiescent`].
#[derive(Debug, Clone, Copy)]
pub struct Quiescence {
    /// True when the run stopped because only maintenance events remained.
    pub quiescent: bool,
    /// Simulated time when the run stopped.
    pub time: SimTime,
    /// Events processed during this call.
    pub events: u64,
}

/// A deterministic discrete-event network simulator.
pub struct Simulator<M: Message> {
    now: SimTime,
    queue: EventQueue<M>,
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    node_names: Vec<String>,
    node_up: Vec<bool>,
    links: Vec<Link>,
    adjacency: Vec<Vec<(LinkId, NodeId)>>,
    timer_gens: HashMap<(NodeId, TimerToken), (u64, bool)>,
    rng: SimRng,
    board: ActivityBoard,
    trace: Trace,
    metrics: MetricsRegistry,
    profiling: bool,
    causal_seq: u64,
    stats: SimStats,
    started: bool,
    /// Reusable action buffer handed to each dispatched node: the per-event
    /// `Vec<Action>` allocation of the old hot loop becomes a single buffer
    /// recycled for the lifetime of the simulator.
    action_scratch: Vec<Action<M>>,
    /// Pool counters already flushed into the metrics registry.
    pool_flushed: PoolStats,
    /// `(time, seq)` of the last popped event; pops must strictly increase.
    last_event_key: (u64, u64),
    /// Hard cap on events per `run_*` call, against livelock.
    pub max_events_per_run: u64,
}

impl<M: Message> Simulator<M> {
    /// Create an empty simulator with the given experiment seed.
    pub fn new(seed: u64) -> Self {
        Self::with_event_capacity(seed, 0)
    }

    /// [`Simulator::new`] with `events` slots of event-queue capacity
    /// pre-reserved. Builders that know the node/link counts up front use
    /// this so the dispatch loop never reallocates the heap.
    pub fn with_event_capacity(seed: u64, events: usize) -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(events),
            nodes: Vec::new(),
            node_names: Vec::new(),
            node_up: Vec::new(),
            links: Vec::new(),
            adjacency: Vec::new(),
            timer_gens: HashMap::with_capacity(events),
            rng: SimRng::seed_from_u64(seed),
            board: ActivityBoard::default(),
            trace: Trace::default(),
            metrics: MetricsRegistry::new(),
            profiling: false,
            causal_seq: 0,
            stats: SimStats::default(),
            started: false,
            action_scratch: Vec::with_capacity(16),
            pool_flushed: PoolStats::default(),
            last_event_key: (0, 0),
            max_events_per_run: 200_000_000,
        }
    }

    /// Switch the event queue's ordering backend ([`QueueBackend`]),
    /// migrating any pending events. Both backends produce the identical
    /// `(time, sequence)` delivery order, so this never changes behavior —
    /// the determinism suite byte-diffs runs across the switch to prove it.
    pub fn set_queue_backend(&mut self, backend: QueueBackend) {
        self.queue.set_backend(backend);
    }

    /// The active event-queue backend.
    pub fn queue_backend(&self) -> QueueBackend {
        self.queue.backend()
    }

    /// Event-slab recycling counters since the start of the run.
    pub fn pool_stats(&self) -> PoolStats {
        self.queue.pool_stats()
    }

    /// Record the pool counters accumulated since the last flush as
    /// `core.sim.events_pooled` / `core.sim.allocs_hot` metric deltas.
    /// Experiment drivers call this at phase boundaries so the counters
    /// land in phase snapshots (and from there in `bgpsdn report`).
    pub fn flush_pool_metrics(&mut self) {
        let cur = self.queue.pool_stats();
        // Zero deltas are skipped so an idle flush leaves the registry
        // untouched (phase-close must stay idempotent).
        let pooled = cur.events_pooled - self.pool_flushed.events_pooled;
        if pooled > 0 {
            self.metrics.count(None, "core.sim.events_pooled", pooled);
        }
        let allocs = cur.allocs_hot - self.pool_flushed.allocs_hot;
        if allocs > 0 {
            self.metrics.count(None, "core.sim.allocs_hot", allocs);
        }
        self.pool_flushed = cur;
    }

    /// Add a node. The builder receives the id the node will have, so nodes
    /// can store their own identity.
    pub fn add_node<N, F>(&mut self, name: impl Into<String>, build: F) -> NodeId
    where
        N: Node<M>,
        F: FnOnce(NodeId) -> N,
    {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(Box::new(build(id))));
        self.node_names.push(name.into());
        self.node_up.push(true);
        self.adjacency.push(Vec::new());
        if self.started {
            self.queue.push(self.now, EventBody::Start { node: id });
        }
        id
    }

    /// Connect two nodes with a link.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, latency: LatencyModel) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(id, a, b, latency));
        self.adjacency[a.index()].push((id, b));
        self.adjacency[b.index()].push((id, a));
        id
    }

    /// Set the random per-message loss probability of a link.
    pub fn set_link_loss(&mut self, link: LinkId, loss: f64) {
        assert!((0.0..=1.0).contains(&loss));
        self.links[link.index()].loss = loss;
    }

    /// Schedule a change of a link's random loss probability at an absolute
    /// time, expressed in parts-per-million. Unlike [`Self::set_link_loss`]
    /// this goes through the event queue, so fault plans can pre-program
    /// keepalive-loss windows deterministically.
    pub fn schedule_link_loss(&mut self, at: SimTime, link: LinkId, loss_ppm: u32) {
        assert!(at >= self.now, "cannot schedule in the past");
        assert!(loss_ppm <= 1_000_000, "loss is a probability");
        self.queue.push(at, EventBody::LinkLoss { link, loss_ppm });
    }

    /// Administratively bring a link up or down right now.
    pub fn set_link_admin(&mut self, link: LinkId, up: bool) {
        self.schedule_link_admin(self.now, link, up);
    }

    /// Schedule a link state change at an absolute time.
    pub fn schedule_link_admin(&mut self, at: SimTime, link: LinkId, up: bool) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.queue.push(at, EventBody::LinkAdmin { link, up });
    }

    /// Administratively crash (`up = false`) or restore (`up = true`) a node
    /// right now. Crashing drops the node's pending timers and any message
    /// delivered to it while down; restoring invokes
    /// [`Node::on_restart`].
    pub fn set_node_admin(&mut self, node: NodeId, up: bool) {
        self.schedule_node_admin(self.now, node, up);
    }

    /// Schedule a node crash/restore at an absolute time.
    pub fn schedule_node_admin(&mut self, at: SimTime, node: NodeId, up: bool) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.queue.push(at, EventBody::NodeAdmin { node, up });
    }

    /// Whether a node is administratively up (not crashed).
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.node_up[node.index()]
    }

    /// Deliver `msg` to `to` immediately, as driver input (the `link` seen by
    /// the node is [`LinkId::CONTROL`]).
    pub fn inject(&mut self, to: NodeId, msg: M) {
        self.inject_at(self.now, to, msg);
    }

    /// Deliver `msg` to `to` at an absolute time, as driver input.
    pub fn inject_at(&mut self, at: SimTime, to: NodeId, msg: M) {
        assert!(at >= self.now, "cannot inject in the past");
        self.queue.push(
            at,
            EventBody::Deliver {
                link: LinkId::CONTROL,
                from: to,
                to,
                msg,
            },
        );
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The display name given to a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.index()]
    }

    /// Immutable view of a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Adjacent `(link, neighbor)` pairs of a node.
    pub fn neighbors(&self, id: NodeId) -> &[(LinkId, NodeId)] {
        &self.adjacency[id.index()]
    }

    /// The semantic activity board (measurement surface).
    pub fn board(&self) -> &ActivityBoard {
        &self.board
    }

    /// Reset activity accounting, typically between experiment phases.
    pub fn reset_board(&mut self) {
        self.board.reset();
    }

    /// Engine statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Trace buffer (enable categories before running).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Trace buffer, read-only.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The metrics registry, read-only.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The metrics registry (snapshot/reset at phase boundaries).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Enable or disable wall-clock profiling spans. Off by default: spans
    /// then cost one branch and no clock read. Wall times never influence
    /// simulation behavior, so determinism is unaffected either way.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// True when wall-clock profiling spans are being collected.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Fork an independent random substream (for topology builders etc.).
    pub fn fork_rng(&mut self, stream: u64) -> SimRng {
        self.rng.fork(stream)
    }

    /// Typed mutable access to a node between events, e.g. to reconfigure it
    /// or inspect its RIB. Panics if `T` is not the node's concrete type.
    pub fn with_node<T: 'static, R>(&mut self, id: NodeId, f: impl FnOnce(&mut T) -> R) -> R {
        let node = self.nodes[id.index()]
            .as_mut()
            .expect("node is being dispatched");
        let t = node
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", std::any::type_name::<T>()));
        f(t)
    }

    /// Typed shared access to a node.
    pub fn node_ref<T: 'static>(&self, id: NodeId) -> &T {
        self.nodes[id.index()]
            .as_ref()
            .expect("node is being dispatched")
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Schedule `on_start` for every node if not done yet. Called implicitly
    /// by the `run_*` methods.
    pub fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.queue.push(
                self.now,
                EventBody::Start {
                    node: NodeId(i as u32),
                },
            );
        }
    }

    /// Process a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let ev = match self.queue.pop() {
            Some(ev) => ev,
            None => return false,
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        // The queue contract: pops are strictly increasing in (time, seq),
        // whichever backend is ordering them.
        debug_assert!(
            self.stats.events_processed == 0 || (ev.at.as_nanos(), ev.seq) > self.last_event_key,
            "event queue violated (time, seq) order"
        );
        self.last_event_key = (ev.at.as_nanos(), ev.seq);
        self.now = ev.at;
        self.stats.events_processed += 1;
        let span = WallSpan::start(self.profiling);
        let alive = self.step_body(ev.body);
        if let Some(ns) = span.elapsed_ns() {
            self.metrics
                .observe(None, "netsim.loop.dispatch_wall_ns", ns);
        }
        alive
    }

    fn step_body(&mut self, body: EventBody<M>) -> bool {
        match body {
            EventBody::Start { node } => {
                if self.node_up[node.index()] {
                    self.dispatch(node, |n, ctx| n.on_start(ctx));
                }
            }
            EventBody::Deliver {
                link,
                from,
                to,
                msg,
            } => {
                if !link.is_control() && !self.links[link.index()].up {
                    self.stats.msgs_dropped_link_down += 1;
                    return true;
                }
                if !self.node_up[to.index()] {
                    self.stats.msgs_dropped_node_down += 1;
                    return true;
                }
                self.stats.msgs_delivered += 1;
                self.stats.bytes_delivered += msg.wire_len() as u64;
                self.dispatch(to, move |n, ctx| n.on_message(ctx, from, link, msg));
            }
            EventBody::Timer {
                node,
                token,
                gen,
                class: _,
            } => {
                let fire = self.node_up[node.index()]
                    && match self.timer_gens.get_mut(&(node, token)) {
                        Some((cur, armed)) if *cur == gen && *armed => {
                            *armed = false;
                            true
                        }
                        _ => false,
                    };
                if fire {
                    self.stats.timers_fired += 1;
                    self.dispatch(node, |n, ctx| n.on_timer(ctx, token));
                } else {
                    self.stats.timers_stale += 1;
                }
            }
            EventBody::LinkAdmin { link, up } => {
                let l = &mut self.links[link.index()];
                if l.up == up {
                    return true;
                }
                l.up = up;
                let (a, b) = (l.a, l.b);
                self.trace.record(self.now, None, TraceCategory::Link, || {
                    TraceEvent::LinkAdmin { link: link.0, up }
                });
                if self.node_up[a.index()] {
                    self.dispatch(a, |n, ctx| n.on_link_change(ctx, link, up));
                }
                if self.node_up[b.index()] {
                    self.dispatch(b, |n, ctx| n.on_link_change(ctx, link, up));
                }
            }
            EventBody::LinkLoss { link, loss_ppm } => {
                self.links[link.index()].loss = loss_ppm as f64 / 1e6;
                self.trace
                    .record(self.now, None, TraceCategory::Link, || TraceEvent::Note {
                        category: TraceCategory::Link,
                        text: format!("link {} loss set to {loss_ppm}ppm", link.0),
                    });
            }
            EventBody::NodeAdmin { node, up } => {
                if self.node_up[node.index()] == up {
                    return true;
                }
                self.node_up[node.index()] = up;
                self.trace
                    .record(self.now, Some(node), TraceCategory::Link, || {
                        TraceEvent::NodeAdmin { node: node.0, up }
                    });
                if up {
                    self.dispatch(node, |n, ctx| n.on_restart(ctx));
                } else {
                    // A crash loses every armed timer: bump the generation so
                    // the queued firings arrive stale even if the node is
                    // restored and re-arms the same tokens.
                    for ((n, _), entry) in self.timer_gens.iter_mut() {
                        if *n == node {
                            entry.0 += 1;
                            entry.1 = false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Run until the queue empties or simulated time would pass `deadline`.
    /// The clock is left at `deadline` (or later if an event landed exactly
    /// on it) so successive calls compose.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.ensure_started();
        let mut events = 0u64;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            events += 1;
            if events >= self.max_events_per_run {
                panic!(
                    "run_until processed {events} events without reaching {deadline}: livelock?"
                );
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        events
    }

    /// Run for a relative duration.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let deadline = self.now + d;
        self.run_until(deadline)
    }

    /// Run until only maintenance events (keepalives, periodic probes)
    /// remain, or until `max` is reached.
    pub fn run_until_quiescent(&mut self, max: SimTime) -> Quiescence {
        self.ensure_started();
        let mut events = 0u64;
        loop {
            if self.queue.only_maintenance() {
                return Quiescence {
                    quiescent: true,
                    time: self.now,
                    events,
                };
            }
            let t = self.queue.peek_time().expect("progress events pending");
            if t > max {
                self.now = max;
                return Quiescence {
                    quiescent: false,
                    time: self.now,
                    events,
                };
            }
            self.step();
            events += 1;
            if events >= self.max_events_per_run {
                return Quiescence {
                    quiescent: false,
                    time: self.now,
                    events,
                };
            }
        }
    }

    fn dispatch<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node<M>, &mut Ctx<'_, M>),
    {
        let mut node = self.nodes[id.index()]
            .take()
            .unwrap_or_else(|| panic!("re-entrant dispatch on node {id}"));
        let causal_enabled = self.trace.is_enabled(TraceCategory::Causal);
        let mut ctx = Ctx {
            now: self.now,
            me: id,
            rng: &mut self.rng,
            links: &self.links,
            adjacency: &self.adjacency,
            trace_enabled: &self.trace,
            profiling: self.profiling,
            causal_enabled,
            causal_seq: &mut self.causal_seq,
            actions: std::mem::take(&mut self.action_scratch),
        };
        f(node.as_mut(), &mut ctx);
        let mut actions = ctx.actions;
        self.nodes[id.index()] = Some(node);
        self.apply_actions(id, &mut actions);
        // Hand the (drained, still-allocated) buffer back for the next
        // dispatch; its capacity converges on the busiest callback's need.
        debug_assert!(actions.is_empty());
        self.action_scratch = actions;
    }

    fn apply_actions(&mut self, id: NodeId, actions: &mut Vec<Action<M>>) {
        for act in actions.drain(..) {
            match act {
                Action::Send { link, msg } => {
                    assert!(!link.is_control(), "cannot send on the control sentinel");
                    let l = &mut self.links[link.index()];
                    debug_assert!(l.touches(id), "{id} sent on non-adjacent {link}");
                    if !l.up {
                        self.stats.msgs_dropped_link_down += 1;
                        continue;
                    }
                    if l.loss > 0.0 && self.rng.chance(l.loss) {
                        self.stats.msgs_dropped_loss += 1;
                        continue;
                    }
                    let to = l.other(id);
                    let delay = l.latency.sample(&mut self.rng, msg.wire_len());
                    let dir = l.dir(id);
                    // FIFO per direction: never deliver before an earlier send.
                    let mut at = self.now + delay;
                    let floor = l.last_arrival[dir] + SimDuration::from_nanos(1);
                    if at < floor {
                        at = floor;
                    }
                    l.last_arrival[dir] = at;
                    self.queue.push(
                        at,
                        EventBody::Deliver {
                            link,
                            from: id,
                            to,
                            msg,
                        },
                    );
                }
                Action::SetTimerAt { at, token, class } => {
                    let entry = self.timer_gens.entry((id, token)).or_insert((0, false));
                    entry.0 += 1;
                    entry.1 = true;
                    let at = at.max(self.now);
                    self.queue.push(
                        at,
                        EventBody::Timer {
                            node: id,
                            token,
                            class,
                            gen: entry.0,
                        },
                    );
                }
                Action::CancelTimer { token } => {
                    if let Some(entry) = self.timer_gens.get_mut(&(id, token)) {
                        entry.0 += 1;
                        entry.1 = false;
                    }
                }
                Action::Report(kind) => {
                    self.board.report(self.now, kind);
                }
                Action::Trace { category, event } => {
                    self.trace.record(self.now, Some(id), category, || event);
                }
                Action::Count { name, delta } => {
                    self.metrics.count(Some(id.0), name, delta);
                }
                Action::Gauge { name, value } => {
                    self.metrics.gauge(Some(id.0), name, value);
                }
                Action::Observe { name, value } => {
                    self.metrics.observe(Some(id.0), name, value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Debug, Clone)]
    enum TestMsg {
        Ping(u32),
        Pong(u32),
    }
    impl Message for TestMsg {
        fn wire_len(&self) -> usize {
            16
        }
    }

    /// Sends `Ping(i)` for i in 0..count on start; counts pongs.
    struct Pinger {
        count: u32,
        pongs: Vec<u32>,
        link: Option<LinkId>,
    }
    impl Node<TestMsg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            let link = ctx.neighbors()[0].0;
            self.link = Some(link);
            for i in 0..self.count {
                ctx.send(link, TestMsg::Ping(i));
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, TestMsg>, _f: NodeId, _l: LinkId, m: TestMsg) {
            if let TestMsg::Pong(i) = m {
                self.pongs.push(i);
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Replies Pong(i) to every Ping(i).
    struct Ponger;
    impl Node<TestMsg> for Ponger {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _f: NodeId, l: LinkId, m: TestMsg) {
            if let TestMsg::Ping(i) = m {
                ctx.send(l, TestMsg::Pong(i));
                ctx.report(Activity::RibChange);
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn build(seed: u64, jitter_ms: u64, count: u32) -> (Simulator<TestMsg>, NodeId, LinkId) {
        let mut sim = Simulator::new(seed);
        let a = sim.add_node("pinger", |_| Pinger {
            count,
            pongs: vec![],
            link: None,
        });
        let b = sim.add_node("ponger", |_| Ponger);
        let lat = if jitter_ms == 0 {
            LatencyModel::Fixed(SimDuration::from_millis(5))
        } else {
            LatencyModel::Jittered {
                base: SimDuration::from_millis(5),
                jitter: SimDuration::from_millis(jitter_ms),
            }
        };
        let l = sim.add_link(a, b, lat);
        (sim, a, l)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (mut sim, a, _) = build(1, 0, 3);
        let q = sim.run_until_quiescent(SimTime::from_secs(10));
        assert!(q.quiescent);
        sim.with_node::<Pinger, _>(a, |p| {
            assert_eq!(p.pongs, vec![0, 1, 2]);
        });
        assert_eq!(sim.stats().msgs_delivered, 6);
        assert_eq!(sim.board().count(Activity::RibChange), 3);
        // 5ms out + 5ms back (plus FIFO nudges measured in ns)
        assert!(q.time >= SimTime::from_millis(10));
        assert!(q.time < SimTime::from_millis(11));
    }

    #[test]
    fn fifo_holds_under_jitter() {
        // Large jitter would reorder messages; FIFO clamping must prevent it.
        let (mut sim, a, _) = build(7, 50, 20);
        sim.run_until_quiescent(SimTime::from_secs(10));
        sim.with_node::<Pinger, _>(a, |p| {
            assert_eq!(p.pongs, (0..20).collect::<Vec<_>>());
        });
    }

    #[test]
    fn determinism_same_seed_same_run() {
        let (mut s1, _, _) = build(42, 10, 10);
        let (mut s2, _, _) = build(42, 10, 10);
        let q1 = s1.run_until_quiescent(SimTime::from_secs(10));
        let q2 = s2.run_until_quiescent(SimTime::from_secs(10));
        assert_eq!(q1.time, q2.time);
        assert_eq!(s1.stats().events_processed, s2.stats().events_processed);
    }

    #[test]
    fn different_seed_different_timing() {
        let (mut s1, _, _) = build(1, 40, 10);
        let (mut s2, _, _) = build(2, 40, 10);
        let q1 = s1.run_until_quiescent(SimTime::from_secs(10));
        let q2 = s2.run_until_quiescent(SimTime::from_secs(10));
        assert_ne!(q1.time, q2.time);
    }

    #[test]
    fn link_down_drops_messages() {
        let (mut sim, a, l) = build(3, 0, 5);
        sim.set_link_admin(l, false);
        let q = sim.run_until_quiescent(SimTime::from_secs(5));
        assert!(q.quiescent);
        sim.with_node::<Pinger, _>(a, |p| assert!(p.pongs.is_empty()));
        assert_eq!(sim.stats().msgs_dropped_link_down, 5);
    }

    #[test]
    fn in_flight_messages_lost_on_failure() {
        let (mut sim, a, l) = build(3, 0, 5);
        // Fail the link 1ms in: pings (sent at t=0, arriving t=5ms) die mid-flight.
        sim.schedule_link_admin(SimTime::from_millis(1), l, false);
        sim.run_until_quiescent(SimTime::from_secs(5));
        sim.with_node::<Pinger, _>(a, |p| assert!(p.pongs.is_empty()));
        assert_eq!(sim.stats().msgs_dropped_link_down, 5);
    }

    #[test]
    fn lossy_link_drops_some() {
        let (mut sim, a, l) = build(5, 0, 200);
        sim.set_link_loss(l, 0.5);
        sim.run_until_quiescent(SimTime::from_secs(30));
        sim.with_node::<Pinger, _>(a, |p| {
            assert!(p.pongs.len() < 150, "got {}", p.pongs.len());
            assert!(!p.pongs.is_empty());
        });
        assert!(sim.stats().msgs_dropped_loss > 50);
    }

    /// Node with one self-rearming maintenance timer and one progress timer.
    struct TimerNode {
        fired: Vec<&'static str>,
    }
    const KEEPALIVE: TimerToken = TimerToken(1);
    const WORK: TimerToken = TimerToken(2);
    impl Node<TestMsg> for TimerNode {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.set_timer(
                SimDuration::from_secs(1),
                KEEPALIVE,
                TimerClass::Maintenance,
            );
            ctx.set_timer(SimDuration::from_secs(3), WORK, TimerClass::Progress);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: NodeId, _: LinkId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, token: TimerToken) {
            if token == KEEPALIVE {
                self.fired.push("ka");
                ctx.set_timer(
                    SimDuration::from_secs(1),
                    KEEPALIVE,
                    TimerClass::Maintenance,
                );
            } else {
                self.fired.push("work");
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn quiescence_ignores_maintenance_timers() {
        let mut sim: Simulator<TestMsg> = Simulator::new(1);
        let n = sim.add_node("t", |_| TimerNode { fired: vec![] });
        let q = sim.run_until_quiescent(SimTime::from_secs(100));
        assert!(q.quiescent);
        // Stops right after the WORK timer at t=3s even though keepalives
        // would fire forever.
        assert_eq!(q.time, SimTime::from_secs(3));
        sim.with_node::<TimerNode, _>(n, |t| {
            assert!(t.fired.contains(&"work"));
        });
    }

    /// Node that re-arms and cancels timers to exercise generation tracking.
    struct RearmNode {
        fired: u32,
    }
    impl Node<TestMsg> for RearmNode {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            // Arm, then immediately re-arm later: only the second may fire.
            ctx.set_timer(SimDuration::from_secs(1), WORK, TimerClass::Progress);
            ctx.set_timer(SimDuration::from_secs(2), WORK, TimerClass::Progress);
            // Arm and cancel: must never fire.
            ctx.set_timer(SimDuration::from_secs(1), KEEPALIVE, TimerClass::Progress);
            ctx.cancel_timer(KEEPALIVE);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: NodeId, _: LinkId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _token: TimerToken) {
            self.fired += 1;
            assert_eq!(ctx.now(), SimTime::from_secs(2));
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn timer_rearm_and_cancel() {
        let mut sim: Simulator<TestMsg> = Simulator::new(1);
        let n = sim.add_node("r", |_| RearmNode { fired: 0 });
        let q = sim.run_until_quiescent(SimTime::from_secs(10));
        assert!(q.quiescent);
        sim.with_node::<RearmNode, _>(n, |r| assert_eq!(r.fired, 1));
        assert_eq!(sim.stats().timers_fired, 1);
        assert_eq!(sim.stats().timers_stale, 2);
    }

    #[test]
    fn inject_delivers_on_control_link() {
        struct Sink {
            got: Vec<(LinkId, u32)>,
        }
        impl Node<TestMsg> for Sink {
            fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: NodeId, l: LinkId, m: TestMsg) {
                if let TestMsg::Ping(i) = m {
                    self.got.push((l, i));
                }
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sim: Simulator<TestMsg> = Simulator::new(1);
        let n = sim.add_node("sink", |_| Sink { got: vec![] });
        sim.inject(n, TestMsg::Ping(9));
        sim.inject_at(SimTime::from_secs(1), n, TestMsg::Ping(10));
        sim.run_until_quiescent(SimTime::from_secs(5));
        sim.with_node::<Sink, _>(n, |s| {
            assert_eq!(s.got, vec![(LinkId::CONTROL, 9), (LinkId::CONTROL, 10)]);
        });
    }

    #[test]
    fn crashed_node_drops_deliveries() {
        let (mut sim, a, _) = build(3, 0, 5);
        let ponger = NodeId(1);
        sim.set_node_admin(ponger, false);
        let q = sim.run_until_quiescent(SimTime::from_secs(5));
        assert!(q.quiescent);
        assert!(!sim.node_is_up(ponger));
        sim.with_node::<Pinger, _>(a, |p| assert!(p.pongs.is_empty()));
        assert_eq!(sim.stats().msgs_dropped_node_down, 5);
    }

    #[test]
    fn crash_invalidates_timers_and_restore_restarts() {
        let mut sim: Simulator<TestMsg> = Simulator::new(1);
        let n = sim.add_node("t", |_| TimerNode { fired: vec![] });
        // Crash at 1.5s: the keepalive armed at 1s and the WORK timer armed
        // at start (due 3s) must both die with the node.
        sim.schedule_node_admin(SimTime::from_millis(1500), n, false);
        sim.run_until(SimTime::from_secs(5));
        sim.with_node::<TimerNode, _>(n, |t| {
            assert_eq!(t.fired, vec!["ka"], "only the pre-crash keepalive fires");
        });
        // Restore at 5s: the default on_restart re-runs on_start, so WORK
        // fires again 3s later.
        sim.set_node_admin(n, true);
        let q = sim.run_until_quiescent(SimTime::from_secs(100));
        assert!(q.quiescent);
        assert!(sim.node_is_up(n));
        assert_eq!(q.time, SimTime::from_secs(5 + 3));
        sim.with_node::<TimerNode, _>(n, |t| {
            assert_eq!(t.fired.iter().filter(|f| **f == "work").count(), 1);
        });
    }

    #[test]
    fn redundant_node_admin_is_a_no_op() {
        let mut sim: Simulator<TestMsg> = Simulator::new(1);
        let n = sim.add_node("t", |_| TimerNode { fired: vec![] });
        sim.run_until(SimTime::from_secs(5));
        let fired_before = sim.stats().timers_fired;
        sim.set_node_admin(n, true); // already up
        sim.run_until(SimTime::from_secs(6));
        // No on_restart happened, so no new WORK timer was armed.
        sim.with_node::<TimerNode, _>(n, |t| {
            assert_eq!(t.fired.iter().filter(|f| **f == "work").count(), 1);
        });
        assert!(
            sim.stats().timers_fired > fired_before,
            "keepalives continue"
        );
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim: Simulator<TestMsg> = Simulator::new(1);
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(sim.now(), SimTime::from_secs(4));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn node_added_after_start_gets_on_start() {
        let mut sim: Simulator<TestMsg> = Simulator::new(1);
        sim.run_until(SimTime::from_secs(1));
        let n = sim.add_node("late", |_| TimerNode { fired: vec![] });
        sim.run_until_quiescent(SimTime::from_secs(100));
        sim.with_node::<TimerNode, _>(n, |t| assert!(t.fired.contains(&"work")));
    }

    #[test]
    fn names_and_counts() {
        let (sim, _, _) = build(1, 0, 1);
        assert_eq!(sim.node_count(), 2);
        assert_eq!(sim.link_count(), 1);
        assert_eq!(sim.node_name(NodeId(0)), "pinger");
        assert_eq!(sim.neighbors(NodeId(0)).len(), 1);
    }
}
