//! Simulated time.
//!
//! The simulator clock is an integer count of nanoseconds since the start of
//! the run. Integer time keeps runs exactly reproducible across platforms —
//! there is no floating point anywhere in the scheduling path.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration since an earlier instant. Saturates at zero if `earlier`
    /// is actually later, so measurement code never panics on clock skew
    /// introduced by out-of-order bookkeeping.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (no wraparound at `SimTime::MAX`).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Panics on negative or
    /// non-finite input — durations are magnitudes.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer scale factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{}ms", self.as_millis())
        } else if self.0 >= 1_000 {
            write!(f, "{}us", self.as_micros())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 3_250_000_000);
        assert_eq!(t.as_millis(), 3_250);
        assert_eq!(t - SimTime::from_secs(3), SimDuration::from_millis(250));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(17).to_string(), "17us");
        assert_eq!(SimDuration::from_millis(17).to_string(), "17ms");
        assert_eq!(SimDuration::from_secs(17).to_string(), "17.000s");
    }

    #[test]
    fn ordering_follows_nanos() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }
}
