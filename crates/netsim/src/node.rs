//! Node and message abstractions.
//!
//! A [`Node`] is anything attached to the simulated network: a BGP router, an
//! OpenFlow switch, the IDR controller, a route collector, a traffic host.
//! Nodes are event-driven: the simulator invokes the `on_*` callbacks and the
//! node reacts through the [`Ctx`] handed to it — sending
//! messages on links, arming timers, recording activity. Nodes never touch
//! the simulator directly, which keeps every run deterministic.

use std::any::Any;
use std::fmt;

use crate::link::LinkId;
use crate::sim::Ctx;

/// Identifier of a node, dense from zero in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into simulator-internal vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Application-chosen identifier for a timer. Setting a timer with a token
/// that is already armed re-arms it (the earlier instance is cancelled), so a
/// token names *one* logical timer per node, e.g. "MRAI toward peer 7".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// Scheduling class of a timer, used for quiescence detection.
///
/// `Progress` timers represent pending protocol work (MRAI expiry, delayed
/// route recomputation, scenario steps): while any is armed the network has
/// not converged. `Maintenance` timers (keepalives, periodic probes) fire
/// forever and are ignored when deciding whether the simulation is quiescent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerClass {
    /// Pending protocol work; blocks quiescence.
    Progress,
    /// Periodic background work; ignored by quiescence detection.
    Maintenance,
}

/// A message that can travel over simulated links.
///
/// `wire_len` is the encoded size in bytes and feeds the link's
/// bandwidth-delay model; implementations that carry real wire bytes (the BGP
/// envelope does) return the encoded length.
pub trait Message: Clone + fmt::Debug + 'static {
    /// Encoded size in bytes for transmission-delay purposes.
    fn wire_len(&self) -> usize {
        64
    }
}

/// An event-driven network element.
///
/// Implementations must supply `as_any_mut`/`as_any` (returning `self`) so
/// that experiment code can inspect node state after or between runs via
/// [`Simulator::with_node`](crate::sim::Simulator::with_node).
pub trait Node<M: Message>: 'static {
    /// Called once when the simulation starts (or when the node is added to
    /// an already-running simulation). Typical use: open sessions, arm
    /// initial timers, originate prefixes.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// A message has been delivered to this node.
    ///
    /// `from` is the physical sender (the far end of `link`), which for
    /// relayed control-plane traffic can differ from the logical source
    /// carried inside `msg`. `link` is [`LinkId::CONTROL`] for messages
    /// injected by the experiment driver.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, link: LinkId, msg: M);

    /// A timer armed by this node has fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: TimerToken) {}

    /// The node was administratively restored after a crash
    /// ([`Simulator::set_node_admin`](crate::sim::Simulator::set_node_admin)).
    /// The crash dropped all pending timers and in-flight deliveries;
    /// implementations that keep no stable storage should wipe learned state
    /// here. Defaults to re-running [`Node::on_start`].
    fn on_restart(&mut self, ctx: &mut Ctx<'_, M>) {
        self.on_start(ctx);
    }

    /// An adjacent link changed administrative/operational state.
    fn on_link_change(&mut self, _ctx: &mut Ctx<'_, M>, _link: LinkId, _up: bool) {}

    /// Downcast support; implement as `self`.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Downcast support; implement as `self`.
    fn as_any(&self) -> &dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId(3).index(), 3);
    }

    #[test]
    fn timer_classes_are_distinct() {
        assert_ne!(TimerClass::Progress, TimerClass::Maintenance);
    }
}
