//! Priority structures behind the event queue.
//!
//! Both structures order *keys* — `(time_ns, seq, slot)` triples whose
//! payloads live in the [`event`](crate::event) slab — by `(time, seq)`,
//! exactly the order the original `BinaryHeap<Event>` produced. Keeping the
//! ordering logic payload-free makes the two backends trivially swappable
//! and lets the ordering oracle exercise them without a simulator.
//!
//! * [`HeapQueue`] is the original binary min-heap: O(log n) per
//!   operation, kept as the reference implementation (the proptest oracle
//!   diffs the calendar queue against it) and as the benchmark baseline.
//! * [`CalendarQueue`] is a calendar queue (Brown 1988): a ring of
//!   fixed-width time buckets covering a sliding ~270 ms window, a small
//!   *front* heap holding only the events of the bucket currently being
//!   drained, and an overflow heap for far-future work (MRAI, hold and
//!   keepalive timers). For the delivery-dense BGP workload — most events
//!   land within a few link latencies of *now* — push and pop touch a
//!   bucket vector and a front heap of a handful of entries, which is O(1)
//!   amortized instead of O(log n) over the whole event population.
//!
//! Determinism: a bucket is merged into the front heap *in full* before
//! anything in its time range can be popped, and the front heap compares
//! `(time, seq)`, so equal-timestamp events still fire in scheduling order
//! no matter which structure they travelled through. Pushes that land at or
//! behind the current bucket (the simulator only schedules at `>= now`, but
//! the cursor may already sit past `now` within the bucket) go straight to
//! the front heap, which keeps them orderable before the bucket boundary.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// `(time_ns, seq, slot)` — ordered by time then sequence; the slot index
/// resolves the payload in the event slab and never influences ordering
/// (sequences are unique).
pub(crate) type Key = (u64, u64, u32);

/// Log2 of the bucket width: 2^17 ns ≈ 131 µs per bucket, finer than the
/// millisecond link latencies that space the bulk of deliveries.
const BUCKET_BITS: u32 = 17;
const BUCKET_WIDTH: u64 = 1 << BUCKET_BITS;
/// Ring size (power of two). 2048 buckets × 131 µs ≈ 268 ms of horizon;
/// anything further out (second-scale protocol timers) waits in the
/// overflow heap until the window slides over it.
const NBUCKETS: usize = 2048;
const HORIZON: u64 = BUCKET_WIDTH * NBUCKETS as u64;

/// The original binary min-heap over `(time, seq)` keys.
#[derive(Debug, Default)]
pub(crate) struct HeapQueue {
    heap: BinaryHeap<Reverse<Key>>,
}

impl HeapQueue {
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    pub fn push(&mut self, key: Key) {
        self.heap.push(Reverse(key));
    }

    pub fn pop(&mut self) -> Option<Key> {
        self.heap.pop().map(|Reverse(k)| k)
    }

    pub fn peek(&self) -> Option<Key> {
        self.heap.peek().map(|&Reverse(k)| k)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Remove every key, in no particular order (backend migration).
    pub fn drain_unordered(&mut self) -> Vec<Key> {
        std::mem::take(&mut self.heap)
            .into_iter()
            .map(|Reverse(k)| k)
            .collect()
    }
}

/// Calendar queue over `(time, seq)` keys. See the module docs for the
/// invariants; the short version:
///
/// * `front` holds every key with `time < cur_end()` (the current bucket,
///   already merged, plus late pushes) and possibly keys beyond it that
///   were pushed while the cursor sat earlier — those are simply not
///   poppable until the cursor catches up.
/// * ring buckets hold keys with `cur_end() <= time < cur_start + HORIZON`.
/// * `overflow` holds keys at `>= cur_start + HORIZON` when pushed; it is
///   flushed into the window every time the cursor moves.
#[derive(Debug)]
pub(crate) struct CalendarQueue {
    buckets: Vec<Vec<Key>>,
    front: BinaryHeap<Reverse<Key>>,
    overflow: BinaryHeap<Reverse<Key>>,
    /// Start time of the bucket the cursor is on.
    cur_start: u64,
    /// Keys currently stored in ring buckets.
    in_buckets: usize,
    len: usize,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            front: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            cur_start: 0,
            in_buckets: 0,
            len: 0,
        }
    }

    fn cur_end(&self) -> u64 {
        self.cur_start + BUCKET_WIDTH
    }

    fn bucket_index(t: u64) -> usize {
        ((t >> BUCKET_BITS) as usize) & (NBUCKETS - 1)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn push(&mut self, key: Key) {
        self.len += 1;
        self.route(key);
    }

    fn route(&mut self, key: Key) {
        let t = key.0;
        if t < self.cur_end() {
            self.front.push(Reverse(key));
        } else if t - self.cur_start < HORIZON {
            self.buckets[Self::bucket_index(t)].push(key);
            self.in_buckets += 1;
        } else {
            self.overflow.push(Reverse(key));
        }
    }

    /// The earliest key, advancing the cursor as needed so that it ends up
    /// in the front heap.
    pub fn peek(&mut self) -> Option<Key> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some(&Reverse(k)) = self.front.peek() {
                if k.0 < self.cur_end() {
                    return Some(k);
                }
            }
            self.advance();
        }
    }

    pub fn pop(&mut self) -> Option<Key> {
        self.peek()?;
        self.len -= 1;
        self.front.pop().map(|Reverse(k)| k)
    }

    /// Move the cursor to the next bucket that can contain the minimum:
    /// one step when ring buckets still hold keys (the next occupied bucket
    /// is at most a ring-scan away), or a direct teleport to the earliest
    /// front/overflow key when they don't (skipping the dead time before a
    /// far-out timer in one jump).
    fn advance(&mut self) {
        if self.in_buckets == 0 {
            let front_min = self.front.peek().map(|&Reverse(k)| k.0);
            let over_min = self.overflow.peek().map(|&Reverse(k)| k.0);
            let next = match (front_min, over_min) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => unreachable!("advance() called on an empty queue"),
            };
            self.cur_start = next & !(BUCKET_WIDTH - 1);
        } else {
            self.cur_start += BUCKET_WIDTH;
        }
        self.flush_overflow();
        self.merge_current();
    }

    /// Pull every overflow key that now falls inside the window into the
    /// ring (or straight into the front heap when it lands on the cursor's
    /// bucket).
    fn flush_overflow(&mut self) {
        while let Some(&Reverse(k)) = self.overflow.peek() {
            if k.0 - self.cur_start >= HORIZON {
                break;
            }
            self.overflow.pop();
            self.route(k);
        }
    }

    /// Merge the cursor's bucket into the front heap. Must run whole-bucket
    /// before any pop in its range: that is what preserves `(time, seq)`
    /// order across the ring.
    fn merge_current(&mut self) {
        let idx = Self::bucket_index(self.cur_start);
        if self.buckets[idx].is_empty() {
            return;
        }
        let mut bucket = std::mem::take(&mut self.buckets[idx]);
        self.in_buckets -= bucket.len();
        for k in bucket.drain(..) {
            self.front.push(Reverse(k));
        }
        // Hand the (empty, still-allocated) vector back to the ring so the
        // bucket never reallocates in steady state.
        self.buckets[idx] = bucket;
    }

    /// Remove every key, in no particular order (backend migration).
    pub fn drain_unordered(&mut self) -> Vec<Key> {
        let mut out = Vec::with_capacity(self.len);
        out.extend(std::mem::take(&mut self.front).into_iter().map(|r| r.0));
        out.extend(std::mem::take(&mut self.overflow).into_iter().map(|r| r.0));
        for b in &mut self.buckets {
            out.append(b);
        }
        self.in_buckets = 0;
        self.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue) -> Vec<Key> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push((30, 0, 0));
        q.push((10, 1, 1));
        q.push((10, 2, 2));
        q.push((20, 3, 3));
        assert_eq!(q.len(), 4);
        let order: Vec<u64> = drain(&mut q).iter().map(|k| k.1).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_time_burst_respects_sequence_across_structures() {
        // A burst at one instant, pushed while the cursor is far behind.
        let mut q = CalendarQueue::new();
        let t = 5 * HORIZON + 3; // deep in overflow territory
        for seq in 0..100 {
            q.push((t, seq, seq as u32));
        }
        let seqs: Vec<u64> = drain(&mut q).iter().map(|k| k.1).collect();
        assert_eq!(seqs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_timers_survive_the_window_slide() {
        let mut q = CalendarQueue::new();
        q.push((1, 0, 0));
        q.push((30_000_000_000, 1, 1)); // an MRAI-scale 30 s timer
        q.push((2, 2, 2));
        assert_eq!(q.pop(), Some((1, 0, 0)));
        assert_eq!(q.pop(), Some((2, 2, 2)));
        // Cursor must teleport across ~110 windows without losing the key.
        assert_eq!(q.pop(), Some((30_000_000_000, 1, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_behind_cursor_is_still_poppable_in_order() {
        let mut q = CalendarQueue::new();
        q.push((10_000_000, 0, 0));
        assert_eq!(q.pop(), Some((10_000_000, 0, 0)));
        // The cursor now sits on the 10 ms bucket; a push earlier in that
        // same bucket (legal: the simulator's `now` is 10 ms, the bucket
        // spans ~131 µs) must not be lost or misordered.
        q.push((10_000_001, 1, 1));
        q.push((10_000_000, 2, 2));
        assert_eq!(q.pop(), Some((10_000_000, 2, 2)));
        assert_eq!(q.pop(), Some((10_000_001, 1, 1)));
    }

    #[test]
    fn matches_heap_on_a_randomized_schedule() {
        // Deterministic xorshift schedule: interleaved pushes and pops with
        // heavy timestamp collisions, diffed against the reference heap.
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rnd = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        let mut seq = 0u64;
        for step in 0..50_000 {
            if rnd() % 3 != 0 || cal.len() == 0 {
                // Push: mostly near-future (collision-prone, quantized to
                // 1 µs), sometimes seconds out like protocol timers.
                let dt = if rnd() % 20 == 0 {
                    1_000_000_000 + rnd() % 30_000_000_000
                } else {
                    (rnd() % 5_000) * 1_000
                };
                let key = (now + dt, seq, seq as u32);
                seq += 1;
                cal.push(key);
                heap.push(key);
            } else {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "divergence at step {step}");
                now = a.unwrap().0;
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn drain_unordered_returns_everything() {
        let mut q = CalendarQueue::new();
        for seq in 0..500u64 {
            q.push((seq * 1_000_003, seq, seq as u32));
        }
        q.pop();
        let mut keys = q.drain_unordered();
        assert_eq!(keys.len(), 499);
        assert_eq!(q.len(), 0);
        keys.sort_unstable();
        assert_eq!(keys[0].1, 1);
    }
}
