//! Event tracing.
//!
//! The trace is the framework's equivalent of the paper's Quagga/collector
//! log files: a time-ordered record of interesting events, filterable by
//! category, from which the analysis tools (convergence measurement, route
//! change visualization, `bgpsdn report`) work. Records carry a typed
//! [`TraceEvent`] payload — machine-readable facts, not strings — and the
//! buffer exports/imports the JSONL artifact schema from `bgpsdn_obs`.
//!
//! Tracing is off by default; experiments enable the categories they need.
//! The buffer is a ring: when full, the *oldest* records are dropped so the
//! tail of a long run (usually the interesting part) is always retained,
//! and [`Trace::dropped`] counts what was evicted.

use std::collections::VecDeque;
use std::fmt;

use bgpsdn_obs::{event_line, RunArtifact, TraceEvent};

pub use bgpsdn_obs::TraceCategory;

use crate::node::NodeId;
use crate::time::SimTime;

/// One trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// When the event happened.
    pub time: SimTime,
    /// Node the event is attributed to, if any.
    pub node: Option<NodeId>,
    /// Filter category (always `event.category()`).
    pub category: TraceCategory,
    /// Typed payload.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// The record as one JSONL artifact line.
    pub fn to_jsonl(&self) -> String {
        event_line(self.time.as_nanos(), self.node.map(|n| n.0), &self.event)
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "[{} {} {}] {}", self.time, self.category, n, self.event),
            None => write!(f, "[{} {}] {}", self.time, self.category, self.event),
        }
    }
}

/// A bounded, category-filtered trace ring buffer.
#[derive(Debug)]
pub struct Trace {
    mask: u16,
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(1_000_000)
    }
}

impl Trace {
    /// Create a trace buffer that keeps at most `capacity` records; once
    /// full, each new record evicts the oldest (drop-oldest ring).
    pub fn new(capacity: usize) -> Self {
        Trace {
            mask: 0,
            records: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Enable recording of a category.
    pub fn enable(&mut self, cat: TraceCategory) {
        self.mask |= cat.bit();
    }

    /// Enable every category.
    pub fn enable_all(&mut self) {
        for c in TraceCategory::all() {
            self.enable(c);
        }
    }

    /// Disable recording of a category.
    pub fn disable(&mut self, cat: TraceCategory) {
        self.mask &= !cat.bit();
    }

    /// True when `cat` is currently recorded.
    pub fn is_enabled(&self, cat: TraceCategory) -> bool {
        self.mask & cat.bit() != 0
    }

    /// Append a record. The event closure runs only when `category` is
    /// enabled, so disabled tracing costs one mask test. When the buffer is
    /// full the oldest record is evicted and counted in [`Trace::dropped`].
    #[inline]
    pub fn record(
        &mut self,
        time: SimTime,
        node: Option<NodeId>,
        category: TraceCategory,
        event: impl FnOnce() -> TraceEvent,
    ) {
        if !self.is_enabled(category) {
            return;
        }
        let event = event();
        debug_assert_eq!(
            event.category(),
            category,
            "trace category mismatch for {event}"
        );
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            time,
            node,
            category,
            event,
        });
    }

    /// All retained records in time order.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records of one category.
    pub fn by_category(&self, cat: TraceCategory) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.category == cat)
    }

    /// Records attributed to one node.
    pub fn by_node(&self, node: NodeId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.node == Some(node))
    }

    /// How many records were evicted (ring overwrite) or discarded
    /// (zero-capacity buffer).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drop all retained records (filter mask is kept).
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }

    /// Export every retained record as JSONL artifact lines.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Parse records back from JSONL (non-event lines are ignored).
    pub fn import_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
        let artifact = RunArtifact::parse(text)?;
        Ok(artifact
            .events
            .into_iter()
            .map(|r| TraceRecord {
                time: SimTime::from_nanos(r.t),
                node: r.node.map(NodeId),
                category: r.event.category(),
                event: r.event,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsdn_obs::ObsPrefix;

    fn note(cat: TraceCategory, text: &str) -> TraceEvent {
        TraceEvent::Note {
            category: cat,
            text: text.into(),
        }
    }

    #[test]
    fn disabled_categories_are_not_recorded() {
        let mut t = Trace::new(10);
        t.record(SimTime::ZERO, None, TraceCategory::Msg, || {
            note(TraceCategory::Msg, "x")
        });
        assert!(t.is_empty());
        t.enable(TraceCategory::Msg);
        t.record(SimTime::ZERO, None, TraceCategory::Msg, || {
            note(TraceCategory::Msg, "y")
        });
        t.record(SimTime::ZERO, None, TraceCategory::Route, || {
            note(TraceCategory::Route, "z")
        });
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.records().next().unwrap().event,
            note(TraceCategory::Msg, "y")
        );
    }

    #[test]
    fn disabled_category_never_runs_the_closure() {
        let mut t = Trace::new(10);
        let mut ran = false;
        t.record(SimTime::ZERO, None, TraceCategory::Flow, || {
            ran = true;
            note(TraceCategory::Flow, "should not happen")
        });
        assert!(!ran);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut t = Trace::new(2);
        t.enable_all();
        for i in 0..5u32 {
            t.record(
                SimTime::from_secs(i as u64),
                None,
                TraceCategory::Link,
                || TraceEvent::LinkAdmin { link: i, up: true },
            );
        }
        // Drop-oldest: the two *newest* records survive.
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let kept: Vec<u32> = t
            .records()
            .map(|r| match r.event {
                TraceEvent::LinkAdmin { link, .. } => link,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4]);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn zero_capacity_counts_everything_dropped() {
        let mut t = Trace::new(0);
        t.enable_all();
        t.record(SimTime::ZERO, None, TraceCategory::Link, || {
            TraceEvent::LinkAdmin { link: 0, up: false }
        });
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn filters_by_node_and_category() {
        let mut t = Trace::new(10);
        t.enable_all();
        t.record(SimTime::ZERO, Some(NodeId(1)), TraceCategory::Route, || {
            TraceEvent::RibChange {
                prefix: ObsPrefix::new(0, 0),
                old_path: None,
                new_path: Some(vec![1]),
            }
        });
        t.record(SimTime::ZERO, Some(NodeId(2)), TraceCategory::Route, || {
            note(TraceCategory::Route, "b")
        });
        t.record(SimTime::ZERO, Some(NodeId(1)), TraceCategory::Flow, || {
            note(TraceCategory::Flow, "c")
        });
        assert_eq!(t.by_node(NodeId(1)).count(), 2);
        assert_eq!(t.by_category(TraceCategory::Route).count(), 2);
    }

    #[test]
    fn display_formats() {
        let r = TraceRecord {
            time: SimTime::from_secs(1),
            node: Some(NodeId(4)),
            category: TraceCategory::Session,
            event: TraceEvent::SessionUp { peer: 9 },
        };
        let s = r.to_string();
        assert!(s.contains("session"), "{s}");
        assert!(s.contains("n4"), "{s}");
        assert!(s.contains("n9"), "{s}");
    }

    #[test]
    fn enable_disable_roundtrip() {
        let mut t = Trace::new(1);
        t.enable(TraceCategory::Timer);
        assert!(t.is_enabled(TraceCategory::Timer));
        t.disable(TraceCategory::Timer);
        assert!(!t.is_enabled(TraceCategory::Timer));
    }

    #[test]
    fn jsonl_export_import_roundtrip() {
        let mut t = Trace::new(10);
        t.enable_all();
        t.record(
            SimTime::from_millis(5),
            Some(NodeId(3)),
            TraceCategory::Msg,
            || TraceEvent::UpdateSent {
                peer: 1,
                announced: vec![ObsPrefix::new(0x0a000000, 8)],
                withdrawn: vec![],
            },
        );
        t.record(
            SimTime::from_millis(9),
            None,
            TraceCategory::Experiment,
            || TraceEvent::Phase {
                name: "bring-up".into(),
                started: true,
            },
        );
        let text = t.export_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = Trace::import_jsonl(&text).unwrap();
        let original: Vec<TraceRecord> = t.records().cloned().collect();
        assert_eq!(back, original);
    }
}
