//! Event tracing.
//!
//! The trace is the framework's equivalent of the paper's Quagga/collector
//! log files: a time-ordered record of interesting events, filterable by
//! category, from which the analysis tools (convergence measurement, route
//! change visualization) work. Tracing is off by default; experiments enable
//! the categories they need.

use std::fmt;

use crate::node::NodeId;
use crate::time::SimTime;

/// Category of a trace record, used for enable/disable filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCategory {
    /// Message sends and deliveries.
    Msg,
    /// Timer arming and firing.
    Timer,
    /// Link state changes.
    Link,
    /// Routing decisions (best path changes, RIB operations).
    Route,
    /// Flow table operations.
    Flow,
    /// BGP session lifecycle.
    Session,
    /// Experiment lifecycle markers (scenario steps, phase boundaries).
    Experiment,
}

impl TraceCategory {
    const COUNT: usize = 7;

    fn bit(self) -> u8 {
        match self {
            TraceCategory::Msg => 1 << 0,
            TraceCategory::Timer => 1 << 1,
            TraceCategory::Link => 1 << 2,
            TraceCategory::Route => 1 << 3,
            TraceCategory::Flow => 1 << 4,
            TraceCategory::Session => 1 << 5,
            TraceCategory::Experiment => 1 << 6,
        }
    }

    /// All categories, for "enable everything".
    pub fn all() -> [TraceCategory; Self::COUNT] {
        [
            TraceCategory::Msg,
            TraceCategory::Timer,
            TraceCategory::Link,
            TraceCategory::Route,
            TraceCategory::Flow,
            TraceCategory::Session,
            TraceCategory::Experiment,
        ]
    }
}

impl fmt::Display for TraceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceCategory::Msg => "msg",
            TraceCategory::Timer => "timer",
            TraceCategory::Link => "link",
            TraceCategory::Route => "route",
            TraceCategory::Flow => "flow",
            TraceCategory::Session => "session",
            TraceCategory::Experiment => "exp",
        };
        f.write_str(s)
    }
}

/// One trace entry.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// When the event happened.
    pub time: SimTime,
    /// Node the event is attributed to, if any.
    pub node: Option<NodeId>,
    /// Filter category.
    pub category: TraceCategory,
    /// Human-readable payload.
    pub detail: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "[{} {} {}] {}", self.time, self.category, n, self.detail),
            None => write!(f, "[{} {}] {}", self.time, self.category, self.detail),
        }
    }
}

/// A bounded, category-filtered trace buffer.
#[derive(Debug)]
pub struct Trace {
    mask: u8,
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(1_000_000)
    }
}

impl Trace {
    /// Create a trace buffer that keeps at most `capacity` records; further
    /// records are counted but discarded.
    pub fn new(capacity: usize) -> Self {
        Trace {
            mask: 0,
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Enable recording of a category.
    pub fn enable(&mut self, cat: TraceCategory) {
        self.mask |= cat.bit();
    }

    /// Enable every category.
    pub fn enable_all(&mut self) {
        for c in TraceCategory::all() {
            self.enable(c);
        }
    }

    /// Disable recording of a category.
    pub fn disable(&mut self, cat: TraceCategory) {
        self.mask &= !cat.bit();
    }

    /// True when `cat` is currently recorded.
    pub fn is_enabled(&self, cat: TraceCategory) -> bool {
        self.mask & cat.bit() != 0
    }

    /// Append a record if its category is enabled and capacity remains.
    pub fn record(
        &mut self,
        time: SimTime,
        node: Option<NodeId>,
        category: TraceCategory,
        detail: String,
    ) {
        if !self.is_enabled(category) {
            return;
        }
        if self.records.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord {
            time,
            node,
            category,
            detail,
        });
    }

    /// All retained records in time order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records of one category.
    pub fn by_category(&self, cat: TraceCategory) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.category == cat)
    }

    /// Records attributed to one node.
    pub fn by_node(&self, node: NodeId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.node == Some(node))
    }

    /// How many records were discarded after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drop all retained records (filter mask is kept).
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_categories_are_not_recorded() {
        let mut t = Trace::new(10);
        t.record(SimTime::ZERO, None, TraceCategory::Msg, "x".into());
        assert!(t.records().is_empty());
        t.enable(TraceCategory::Msg);
        t.record(SimTime::ZERO, None, TraceCategory::Msg, "y".into());
        t.record(SimTime::ZERO, None, TraceCategory::Route, "z".into());
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.records()[0].detail, "y");
    }

    #[test]
    fn capacity_bounds_and_counts_drops() {
        let mut t = Trace::new(2);
        t.enable_all();
        for i in 0..5 {
            t.record(SimTime::ZERO, None, TraceCategory::Link, format!("{i}"));
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
        t.clear();
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn filters_by_node_and_category() {
        let mut t = Trace::new(10);
        t.enable_all();
        t.record(
            SimTime::ZERO,
            Some(NodeId(1)),
            TraceCategory::Route,
            "a".into(),
        );
        t.record(
            SimTime::ZERO,
            Some(NodeId(2)),
            TraceCategory::Route,
            "b".into(),
        );
        t.record(
            SimTime::ZERO,
            Some(NodeId(1)),
            TraceCategory::Flow,
            "c".into(),
        );
        assert_eq!(t.by_node(NodeId(1)).count(), 2);
        assert_eq!(t.by_category(TraceCategory::Route).count(), 2);
    }

    #[test]
    fn display_formats() {
        let r = TraceRecord {
            time: SimTime::from_secs(1),
            node: Some(NodeId(4)),
            category: TraceCategory::Session,
            detail: "established".into(),
        };
        let s = r.to_string();
        assert!(s.contains("session"), "{s}");
        assert!(s.contains("n4"), "{s}");
    }

    #[test]
    fn enable_disable_roundtrip() {
        let mut t = Trace::new(1);
        t.enable(TraceCategory::Timer);
        assert!(t.is_enabled(TraceCategory::Timer));
        t.disable(TraceCategory::Timer);
        assert!(!t.is_enabled(TraceCategory::Timer));
    }
}
