//! # bgpsdn-netsim — deterministic discrete-event network simulator
//!
//! This crate is the substrate that replaces Mininet in the paper's
//! framework: it provides nodes, point-to-point links with configurable
//! latency/loss/failure, timers, a seeded random stream and an event loop,
//! all fully deterministic — identical `(topology, scenario, seed)` inputs
//! produce bit-for-bit identical runs on every platform.
//!
//! Design notes:
//! * **Event-driven, no threads.** Everything runs in a single event loop
//!   ordered by `(time, insertion sequence)`. The paper makes the same
//!   trade ("due to simplifications such as cooperative multitasking, we can
//!   focus more on research questions than on state consistency and
//!   concurrency issues").
//! * **Integer time.** The clock is `u64` nanoseconds ([`SimTime`]); no
//!   floats in scheduling.
//! * **FIFO links.** Per-direction FIFO delivery gives protocols the
//!   in-order guarantee they would get from TCP, without a byte-stream
//!   simulation.
//! * **Quiescence.** Timers are classed [`TimerClass::Progress`] or
//!   [`TimerClass::Maintenance`]; [`Simulator::run_until_quiescent`]
//!   stops when only maintenance work (keepalives) remains — the engine-level
//!   half of "wait until BGP has converged".
//! * **Measurement surface.** Nodes report semantic activity
//!   ([`Activity`]) to an [`ActivityBoard`]; convergence detectors read the
//!   board rather than scraping logs. Richer telemetry — typed
//!   [`TraceEvent`] records, the [`MetricsRegistry`] of counters/gauges/
//!   histograms, wall-clock profiling spans — comes from `bgpsdn_obs` and
//!   is re-exported here.

#![warn(missing_docs)]

pub mod event;
pub mod link;
pub mod node;
pub mod packet;
pub(crate) mod queue;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{Event, EventBody, EventQueue, PoolStats, QueueBackend};
pub use link::{LatencyModel, Link, LinkId};
pub use node::{Message, Node, NodeId, TimerClass, TimerToken};
pub use packet::{DataApp, DataPacket, PacketKind};
pub use rng::SimRng;
pub use sim::{Ctx, Quiescence, Simulator};
pub use stats::{Activity, ActivityBoard, SimStats, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceCategory, TraceRecord};

pub use bgpsdn_obs::{
    CausalPhase, Cause, FlowActionRepr, Histogram, MetricsRegistry, MetricsSnapshot, ObsPrefix,
    RecomputeTrigger, TraceEvent, WallSpan,
};
