//! Property-based tests of engine invariants: FIFO delivery under arbitrary
//! jitter, cross-run determinism, and summary-statistics ordering.

use std::any::Any;

use proptest::prelude::*;

use bgpsdn_netsim::{
    Ctx, LatencyModel, LinkId, Message, Node, NodeId, SimDuration, SimRng, SimTime, Simulator,
    Summary,
};

#[derive(Debug, Clone)]
struct Seq(u64);
impl Message for Seq {}

/// Sends `count` sequence-numbered messages at start.
struct Sender {
    count: u64,
}
impl Node<Seq> for Sender {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Seq>) {
        let link = ctx.neighbors()[0].0;
        for i in 0..self.count {
            ctx.send(link, Seq(i));
        }
    }
    fn on_message(&mut self, _: &mut Ctx<'_, Seq>, _: NodeId, _: LinkId, _: Seq) {}
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Records arrival order.
struct Receiver {
    got: Vec<u64>,
}
impl Node<Seq> for Receiver {
    fn on_message(&mut self, _: &mut Ctx<'_, Seq>, _: NodeId, _: LinkId, m: Seq) {
        self.got.push(m.0);
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

proptest! {
    /// FIFO per direction holds for any jitter magnitude and seed.
    #[test]
    fn fifo_delivery_under_arbitrary_jitter(
        seed in any::<u64>(),
        base_us in 0u64..100_000,
        jitter_us in 0u64..1_000_000,
        count in 1u64..60,
    ) {
        let mut sim = Simulator::new(seed);
        let a = sim.add_node("s", |_| Sender { count });
        let b = sim.add_node("r", |_| Receiver { got: vec![] });
        sim.add_link(
            a,
            b,
            LatencyModel::Jittered {
                base: SimDuration::from_micros(base_us),
                jitter: SimDuration::from_micros(jitter_us),
            },
        );
        let q = sim.run_until_quiescent(SimTime::from_secs(3600));
        prop_assert!(q.quiescent);
        let got = &sim.node_ref::<Receiver>(b).got;
        prop_assert_eq!(got.clone(), (0..count).collect::<Vec<_>>());
    }

    /// Identical configuration and seed produce identical runs.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), count in 1u64..40) {
        let run = || {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node("s", |_| Sender { count });
            let b = sim.add_node("r", |_| Receiver { got: vec![] });
            sim.add_link(
                a,
                b,
                LatencyModel::Jittered {
                    base: SimDuration::from_millis(1),
                    jitter: SimDuration::from_millis(50),
                },
            );
            let q = sim.run_until_quiescent(SimTime::from_secs(3600));
            (q.time, sim.stats().events_processed, sim.stats().bytes_delivered)
        };
        prop_assert_eq!(run(), run());
    }

    /// Boxplot summaries are always ordered and bounded.
    #[test]
    fn summary_orderings(values in prop::collection::vec(0.0f64..1e9, 1..200)) {
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.q1);
        prop_assert!(s.q1 <= s.median);
        prop_assert!(s.median <= s.q3);
        prop_assert!(s.q3 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
        prop_assert_eq!(s.n, values.len());
    }

    /// RNG range helpers always respect their bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
        let lo = bound / 2;
        for _ in 0..100 {
            let v = rng.range_u64(lo, bound.max(lo + 1));
            prop_assert!(v >= lo && v < bound.max(lo + 1));
        }
    }

    /// Jittered durations stay within the configured window.
    #[test]
    fn rng_jitter_window(seed in any::<u64>(), base_ms in 1u64..100_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        let base = SimDuration::from_millis(base_ms);
        for _ in 0..50 {
            let d = rng.jittered(base, 0.75, 1.0);
            prop_assert!(d.as_nanos() >= base.as_nanos() * 3 / 4);
            prop_assert!(d < base);
        }
    }
}
