//! Ordering oracle for the calendar event queue: for any interleaving of
//! pushes and pops — equal-timestamp bursts, far-future (overflow-range)
//! timers, mid-stream backend switches — the calendar backend must produce
//! the exact pop sequence of the binary-heap reference, and the slab's
//! pooling counters must be identical because storage is shared by both
//! backends.

use proptest::prelude::*;

use bgpsdn_netsim::{Event, EventBody, EventQueue, NodeId, QueueBackend, SimTime};

#[derive(Debug, Clone)]
struct NoMsg;
impl bgpsdn_netsim::Message for NoMsg {}

/// One scripted operation against both queues.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push an event at the given nanosecond timestamp.
    Push(u64),
    /// Pop the earliest event (no-op when empty).
    Pop,
}

/// Timestamps mix three regimes: a dense near band (same-bucket collisions
/// and equal-timestamp bursts), a mid band spanning many buckets, and a
/// far band beyond the calendar's day horizon (the overflow heap).
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..50).prop_map(|t| Op::Push(t * 1_000)),
        (0u64..1_000).prop_map(|t| Op::Push(t * 131_072)),
        (0u64..100).prop_map(|t| Op::Push(300_000_000_000 + t * 7)),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

fn fingerprint(e: &Event<NoMsg>) -> (u64, u64, u32) {
    let node = match e.body {
        EventBody::Start { node } => node.0,
        _ => unreachable!("oracle only schedules Start events"),
    };
    (e.at.as_nanos(), e.seq, node)
}

/// Replay `ops` on a queue with the given backend; return the pop sequence
/// and final pool counters. Pushes respect the simulator's clock invariant
/// — an event is always scheduled at `now + delay`, never in the past — so
/// timestamps are clamped to the last popped time.
fn replay(
    ops: &[Op],
    backend: QueueBackend,
    flip_at: Option<usize>,
) -> (Vec<(u64, u64, u32)>, u64, u64) {
    let mut q: EventQueue<NoMsg> = EventQueue::new();
    q.set_backend(backend);
    let mut popped = Vec::new();
    let mut id = 0u32;
    let mut now = 0u64;
    for (i, op) in ops.iter().enumerate() {
        if flip_at == Some(i) {
            let other = match q.backend() {
                QueueBackend::Calendar => QueueBackend::Heap,
                QueueBackend::Heap => QueueBackend::Calendar,
            };
            q.set_backend(other);
        }
        match op {
            Op::Push(t) => {
                q.push(
                    SimTime::from_nanos((*t).max(now)),
                    EventBody::Start { node: NodeId(id) },
                );
                id += 1;
            }
            Op::Pop => {
                if let Some(e) = q.pop() {
                    now = e.at.as_nanos();
                    popped.push(fingerprint(&e));
                }
            }
        }
    }
    // Drain the remainder so every scheduled event is order-checked.
    while let Some(e) = q.pop() {
        popped.push(fingerprint(&e));
    }
    let stats = q.pool_stats();
    (popped, stats.events_pooled, stats.allocs_hot)
}

proptest! {
    /// Calendar and heap backends pop identical sequences for any schedule.
    #[test]
    fn calendar_matches_heap_oracle(
        ops in prop::collection::vec(op_strategy(), 1..400),
    ) {
        let (cal, cal_pooled, cal_hot) = replay(&ops, QueueBackend::Calendar, None);
        let (heap, heap_pooled, heap_hot) = replay(&ops, QueueBackend::Heap, None);
        prop_assert_eq!(&cal, &heap, "pop sequences diverged");
        // Slab traffic is backend-independent: same pushes, same recycling.
        prop_assert_eq!(cal_pooled, heap_pooled);
        prop_assert_eq!(cal_hot, heap_hot);

        // The sequence itself is sorted by (time, seq) — FIFO within bursts.
        for w in cal.windows(2) {
            prop_assert!(
                (w[0].0, w[0].1) < (w[1].0, w[1].1),
                "pops out of (time, seq) order: {:?} then {:?}", w[0], w[1]
            );
        }
    }

    /// Equal-timestamp bursts pop in exact insertion order on both backends.
    #[test]
    fn equal_timestamp_bursts_stay_fifo(
        t in 0u64..400_000_000_000,
        burst in 1usize..200,
    ) {
        let ops: Vec<Op> = std::iter::repeat(Op::Push(t)).take(burst).collect();
        let (cal, _, _) = replay(&ops, QueueBackend::Calendar, None);
        let (heap, _, _) = replay(&ops, QueueBackend::Heap, None);
        prop_assert_eq!(&cal, &heap);
        let nodes: Vec<u32> = cal.iter().map(|f| f.2).collect();
        prop_assert_eq!(nodes, (0..burst as u32).collect::<Vec<_>>());
    }

    /// Switching backends mid-stream never reorders the pending events.
    #[test]
    fn backend_switch_preserves_pending_order(
        ops in prop::collection::vec(op_strategy(), 1..300),
        flip_frac in 0u64..100,
    ) {
        let flip = Some((ops.len() as u64 * flip_frac / 100) as usize);
        let (flipped, _, _) = replay(&ops, QueueBackend::Calendar, flip);
        let (straight, _, _) = replay(&ops, QueueBackend::Calendar, None);
        prop_assert_eq!(flipped, straight);
    }
}
