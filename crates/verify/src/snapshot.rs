//! The frozen network snapshot the verifier analyzes.
//!
//! A [`Snapshot`] is a pure-data capture of one instant of the emulation:
//! every switch's compiled flow table and port map, every legacy router's
//! Loc-RIB view, the annotated AS graph, and the controller's intended
//! per-prefix state (compiled flow rules and adj-out announcements). It
//! carries no references into the simulator, so it can be serialized into
//! a JSONL run artifact and re-analyzed offline with `bgpsdn verify`.

use std::net::Ipv4Addr;

use bgpsdn_bgp::{Asn, Prefix};
use bgpsdn_obs::Json;

/// What a matching flow rule does with a packet (a dependency-free mirror
/// of the SDN crate's `FlowAction`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleAction {
    /// Forward out of the port (the raw link id).
    Output(u32),
    /// Punt to the controller.
    ToController,
    /// Discard explicitly.
    Drop,
    /// Deliver locally (the destination lives in this switch's AS).
    Local,
}

impl std::fmt::Display for RuleAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleAction::Output(p) => write!(f, "output:{p}"),
            RuleAction::ToController => f.write_str("controller"),
            RuleAction::Drop => f.write_str("drop"),
            RuleAction::Local => f.write_str("local"),
        }
    }
}

impl RuleAction {
    /// Parse the stable string form (`output:N`, `controller`, `drop`,
    /// `local`).
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleAction> {
        match s {
            "controller" => Some(RuleAction::ToController),
            "drop" => Some(RuleAction::Drop),
            "local" => Some(RuleAction::Local),
            _ => {
                let port = s.strip_prefix("output:")?.parse().ok()?;
                Some(RuleAction::Output(port))
            }
        }
    }
}

/// One installed flow rule of a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchRule {
    /// Match priority; higher wins.
    pub priority: u16,
    /// Destination prefix match.
    pub prefix: Prefix,
    /// Action on match.
    pub action: RuleAction,
}

/// One data-plane port of a switch, resolved to its remote endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortState {
    /// The raw link id flow rules reference.
    pub port: u32,
    /// The AS vertex on the other end.
    pub peer: usize,
    /// Whether the link is currently up.
    pub up: bool,
}

/// The forwarding decision of one legacy Loc-RIB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHop {
    /// The route is local: traffic terminates here.
    Deliver,
    /// Forward to the adjacent AS vertex.
    Via {
        /// The neighboring AS vertex.
        peer: usize,
        /// Whether the link toward it is currently up.
        up: bool,
    },
}

/// One best route of a legacy router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegacyRoute {
    /// The destination prefix.
    pub prefix: Prefix,
    /// Where matching traffic goes.
    pub next: NextHop,
    /// The selected AS path (empty for local routes).
    pub as_path: Vec<Asn>,
    /// The route is retained from a dead peer under an RFC 4724
    /// graceful-restart window. Stale routes pointing at a down peer are
    /// consistent-but-stale, not blackholes: forwarding through them is
    /// the deliberate GR trade-off until the window closes.
    pub stale: bool,
}

/// The device state of one AS in the snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Device {
    /// A legacy BGP router: its Loc-RIB resolved to forwarding decisions.
    Legacy {
        /// Best routes, one per prefix.
        routes: Vec<LegacyRoute>,
    },
    /// An SDN cluster member: its compiled flow table and port map.
    Member {
        /// The member index in the controller configuration.
        member: usize,
        /// The installed flow rules.
        rules: Vec<SwitchRule>,
        /// Data-plane ports, resolved to peer vertices.
        ports: Vec<PortState>,
    },
}

/// One AS of the snapshot (vertex order matches the topology plan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeState {
    /// Human-readable device name (`as65001`, `sw65003`).
    pub name: String,
    /// The AS number.
    pub asn: Asn,
    /// Prefixes this AS legitimately originates (delivery targets).
    pub originated: Vec<Prefix>,
    /// Router or switch state.
    pub device: Device,
}

/// Relationship annotation of one inter-AS edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelKind {
    /// `a` is the provider of `b`.
    ProviderCustomer,
    /// Settlement-free peering.
    PeerPeer,
}

/// One annotated inter-AS edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRel {
    /// First endpoint (the provider for [`RelKind::ProviderCustomer`]).
    pub a: usize,
    /// Second endpoint.
    pub b: usize,
    /// The business relationship.
    pub kind: RelKind,
}

/// The export-policy regime the network was configured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// Everything is exported everywhere; valley-freeness is not expected.
    #[default]
    AllPermit,
    /// Gao–Rexford customer/provider/peer export rules.
    GaoRexford,
}

/// Health of the speaker↔controller control plane at snapshot time,
/// deciding whether intent mismatches are violations or expected staleness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlHealth {
    /// The network has no SDN cluster; intent checks are skipped.
    #[default]
    NoCluster,
    /// Channel synced: installed state must byte-match controller intent.
    Synced,
    /// The speaker lost the controller (crash or partition); devices run
    /// fail-static on frozen state. Drift is *stale-but-consistent*.
    Headless,
    /// The channel is back but the full-state resync has not completed.
    Resyncing,
}

impl ControlHealth {
    /// Stable lowercase name used in the JSON form.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ControlHealth::NoCluster => "none",
            ControlHealth::Synced => "synced",
            ControlHealth::Headless => "headless",
            ControlHealth::Resyncing => "resyncing",
        }
    }
}

/// One alias BGP session: the speaker's actual adj-out versus the
/// controller's intended announcements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSnap {
    /// The member AS vertex whose identity the session speaks with.
    pub member: usize,
    /// The external (legacy) peer vertex.
    pub ext_peer: usize,
    /// Whether the speaker reports the session Established.
    pub established: bool,
    /// Whether the controller believes the session is up.
    pub ctrl_up: bool,
    /// The controller's intended adj-out: `(prefix, AS path)`.
    pub intent: Vec<(Prefix, Vec<Asn>)>,
    /// The speaker's actual adj-out: `(prefix, AS path)`.
    pub actual: Vec<(Prefix, Vec<Asn>)>,
}

/// A frozen network snapshot — everything the static checks need.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Per-AS state, indexed by plan vertex.
    pub nodes: Vec<NodeState>,
    /// The annotated AS graph.
    pub edges: Vec<EdgeRel>,
    /// The export-policy regime.
    pub policy: PolicyKind,
    /// Control-plane health (gates intent-consistency severity).
    pub control: ControlHealth,
    /// The priority the controller installs flow rules at.
    pub flow_priority: u16,
    /// Controller-intended flow rules per member: `(prefix, action)`.
    pub intent_flows: Vec<Vec<(Prefix, RuleAction)>>,
    /// Alias sessions: intent and actual announcements.
    pub sessions: Vec<SessionSnap>,
}

// ----------------------------------------------------------------------
// JSON form
// ----------------------------------------------------------------------

fn prefix_json(p: Prefix) -> Json {
    Json::Str(p.to_string())
}

fn prefix_from_json(v: &Json) -> Result<Prefix, String> {
    let s = v.as_str().ok_or("prefix must be a string")?;
    s.parse().map_err(|e| format!("bad prefix {s:?}: {e}"))
}

fn path_json(path: &[Asn]) -> Json {
    Json::Arr(path.iter().map(|a| Json::U64(u64::from(a.0))).collect())
}

fn path_from_json(v: &Json) -> Result<Vec<Asn>, String> {
    v.as_arr()
        .ok_or("path must be an array")?
        .iter()
        .map(|item| {
            item.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .map(Asn)
                .ok_or_else(|| "bad AS number in path".to_string())
        })
        .collect()
}

fn get_usize(v: &Json, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| format!("bad {key:?}"))
}

fn get_bool(v: &Json, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("bad {key:?}"))
}

fn get_prefix(v: &Json, key: &str) -> Result<Prefix, String> {
    prefix_from_json(v.get(key).ok_or_else(|| format!("missing {key:?}"))?)
}

fn action_json(a: RuleAction) -> Json {
    Json::Str(a.to_string())
}

fn action_from_json(v: &Json) -> Result<RuleAction, String> {
    v.as_str()
        .and_then(RuleAction::parse)
        .ok_or_else(|| "bad rule action".to_string())
}

fn announce_list_json(list: &[(Prefix, Vec<Asn>)]) -> Json {
    Json::Arr(
        list.iter()
            .map(|(p, path)| Json::Arr(vec![prefix_json(*p), path_json(path)]))
            .collect(),
    )
}

fn announce_list_from_json(v: &Json) -> Result<Vec<(Prefix, Vec<Asn>)>, String> {
    v.as_arr()
        .ok_or("announce list must be an array")?
        .iter()
        .map(|item| {
            let pair = item.as_arr().ok_or("announce entry must be a pair")?;
            if pair.len() != 2 {
                return Err("announce entry must be a pair".to_string());
            }
            Ok((prefix_from_json(&pair[0])?, path_from_json(&pair[1])?))
        })
        .collect()
}

impl NodeState {
    fn to_json(&self) -> Json {
        let mut m: Vec<(String, Json)> = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("asn".into(), Json::U64(u64::from(self.asn.0))),
            (
                "originated".into(),
                Json::Arr(self.originated.iter().map(|&p| prefix_json(p)).collect()),
            ),
        ];
        match &self.device {
            Device::Legacy { routes } => {
                m.push(("kind".into(), Json::Str("legacy".into())));
                let routes = routes
                    .iter()
                    .map(|r| {
                        let mut rm: Vec<(String, Json)> = vec![
                            ("prefix".into(), prefix_json(r.prefix)),
                            ("path".into(), path_json(&r.as_path)),
                        ];
                        match r.next {
                            NextHop::Deliver => rm.push(("next".into(), Json::Null)),
                            NextHop::Via { peer, up } => {
                                rm.push(("next".into(), Json::U64(peer as u64)));
                                rm.push(("up".into(), Json::Bool(up)));
                            }
                        }
                        if r.stale {
                            rm.push(("stale".into(), Json::Bool(true)));
                        }
                        Json::Obj(rm)
                    })
                    .collect();
                m.push(("routes".into(), Json::Arr(routes)));
            }
            Device::Member {
                member,
                rules,
                ports,
            } => {
                m.push(("kind".into(), Json::Str("member".into())));
                m.push(("member".into(), Json::U64(*member as u64)));
                let rules = rules
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("prefix".into(), prefix_json(r.prefix)),
                            ("priority".into(), Json::U64(u64::from(r.priority))),
                            ("action".into(), action_json(r.action)),
                        ])
                    })
                    .collect();
                m.push(("rules".into(), Json::Arr(rules)));
                let ports = ports
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("port".into(), Json::U64(u64::from(p.port))),
                            ("peer".into(), Json::U64(p.peer as u64)),
                            ("up".into(), Json::Bool(p.up)),
                        ])
                    })
                    .collect();
                m.push(("ports".into(), Json::Arr(ports)));
            }
        }
        Json::Obj(m)
    }

    fn from_json(v: &Json) -> Result<NodeState, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("bad \"name\"")?
            .to_string();
        let asn = Asn(v
            .get("asn")
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or("bad \"asn\"")?);
        let originated = v
            .get("originated")
            .and_then(Json::as_arr)
            .ok_or("bad \"originated\"")?
            .iter()
            .map(prefix_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let device = match v.get("kind").and_then(Json::as_str) {
            Some("legacy") => {
                let routes = v
                    .get("routes")
                    .and_then(Json::as_arr)
                    .ok_or("bad \"routes\"")?
                    .iter()
                    .map(|r| {
                        let prefix = get_prefix(r, "prefix")?;
                        let as_path = path_from_json(r.get("path").ok_or("missing \"path\"")?)?;
                        let next = match r.get("next") {
                            Some(Json::Null) | None => NextHop::Deliver,
                            Some(n) => NextHop::Via {
                                peer: n
                                    .as_u64()
                                    .and_then(|x| usize::try_from(x).ok())
                                    .ok_or("bad \"next\"")?,
                                up: get_bool(r, "up")?,
                            },
                        };
                        Ok(LegacyRoute {
                            prefix,
                            next,
                            as_path,
                            stale: r.get("stale").and_then(Json::as_bool).unwrap_or(false),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Device::Legacy { routes }
            }
            Some("member") => {
                let member = get_usize(v, "member")?;
                let rules = v
                    .get("rules")
                    .and_then(Json::as_arr)
                    .ok_or("bad \"rules\"")?
                    .iter()
                    .map(|r| {
                        Ok(SwitchRule {
                            priority: u16::try_from(get_usize(r, "priority")?)
                                .map_err(|_| "priority out of range".to_string())?,
                            prefix: get_prefix(r, "prefix")?,
                            action: action_from_json(r.get("action").ok_or("missing \"action\"")?)?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let ports = v
                    .get("ports")
                    .and_then(Json::as_arr)
                    .ok_or("bad \"ports\"")?
                    .iter()
                    .map(|p| {
                        Ok(PortState {
                            port: u32::try_from(get_usize(p, "port")?)
                                .map_err(|_| "port out of range".to_string())?,
                            peer: get_usize(p, "peer")?,
                            up: get_bool(p, "up")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Device::Member {
                    member,
                    rules,
                    ports,
                }
            }
            _ => return Err("bad node \"kind\"".into()),
        };
        Ok(NodeState {
            name,
            asn,
            originated,
            device,
        })
    }
}

impl Snapshot {
    /// A representative address inside a prefix, used for longest-prefix
    /// lookups when building the per-prefix forwarding graph.
    #[must_use]
    pub fn probe_address(prefix: Prefix) -> Ipv4Addr {
        prefix.network()
    }

    /// JSON object form, suitable for embedding as a
    /// `{"type":"snapshot",...}` line of a run artifact.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let edges = self
            .edges
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("a".into(), Json::U64(e.a as u64)),
                    ("b".into(), Json::U64(e.b as u64)),
                    (
                        "rel".into(),
                        Json::Str(
                            match e.kind {
                                RelKind::ProviderCustomer => "p2c",
                                RelKind::PeerPeer => "peer",
                            }
                            .into(),
                        ),
                    ),
                ])
            })
            .collect();
        let intent_flows = self
            .intent_flows
            .iter()
            .map(|flows| {
                Json::Arr(
                    flows
                        .iter()
                        .map(|(p, a)| Json::Arr(vec![prefix_json(*p), action_json(*a)]))
                        .collect(),
                )
            })
            .collect();
        let sessions = self
            .sessions
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("member".into(), Json::U64(s.member as u64)),
                    ("peer".into(), Json::U64(s.ext_peer as u64)),
                    ("established".into(), Json::Bool(s.established)),
                    ("ctrl_up".into(), Json::Bool(s.ctrl_up)),
                    ("intent".into(), announce_list_json(&s.intent)),
                    ("actual".into(), announce_list_json(&s.actual)),
                ])
            })
            .collect();
        Json::Obj(vec![
            (
                "policy".into(),
                Json::Str(
                    match self.policy {
                        PolicyKind::AllPermit => "all_permit",
                        PolicyKind::GaoRexford => "gao_rexford",
                    }
                    .into(),
                ),
            ),
            ("control".into(), Json::Str(self.control.name().into())),
            (
                "flow_priority".into(),
                Json::U64(u64::from(self.flow_priority)),
            ),
            (
                "nodes".into(),
                Json::Arr(self.nodes.iter().map(NodeState::to_json).collect()),
            ),
            ("edges".into(), Json::Arr(edges)),
            ("intent_flows".into(), Json::Arr(intent_flows)),
            ("sessions".into(), Json::Arr(sessions)),
        ])
    }

    /// Parse the JSON object form back into a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed member encountered.
    pub fn from_json(v: &Json) -> Result<Snapshot, String> {
        let policy = match v.get("policy").and_then(Json::as_str) {
            Some("all_permit") => PolicyKind::AllPermit,
            Some("gao_rexford") => PolicyKind::GaoRexford,
            _ => return Err("bad \"policy\"".into()),
        };
        let control = match v.get("control").and_then(Json::as_str) {
            Some("none") => ControlHealth::NoCluster,
            Some("synced") => ControlHealth::Synced,
            Some("headless") => ControlHealth::Headless,
            Some("resyncing") => ControlHealth::Resyncing,
            _ => return Err("bad \"control\"".into()),
        };
        let flow_priority = u16::try_from(get_usize(v, "flow_priority")?)
            .map_err(|_| "flow_priority out of range".to_string())?;
        let nodes = v
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or("bad \"nodes\"")?
            .iter()
            .map(NodeState::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let edges = v
            .get("edges")
            .and_then(Json::as_arr)
            .ok_or("bad \"edges\"")?
            .iter()
            .map(|e| {
                let kind = match e.get("rel").and_then(Json::as_str) {
                    Some("p2c") => RelKind::ProviderCustomer,
                    Some("peer") => RelKind::PeerPeer,
                    _ => return Err("bad edge \"rel\"".to_string()),
                };
                Ok(EdgeRel {
                    a: get_usize(e, "a")?,
                    b: get_usize(e, "b")?,
                    kind,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let intent_flows = v
            .get("intent_flows")
            .and_then(Json::as_arr)
            .ok_or("bad \"intent_flows\"")?
            .iter()
            .map(|flows| {
                flows
                    .as_arr()
                    .ok_or("bad intent flow list")?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr().ok_or("bad intent flow entry")?;
                        if pair.len() != 2 {
                            return Err("bad intent flow entry".to_string());
                        }
                        Ok((prefix_from_json(&pair[0])?, action_from_json(&pair[1])?))
                    })
                    .collect::<Result<Vec<_>, String>>()
            })
            .collect::<Result<Vec<_>, String>>()?;
        let sessions = v
            .get("sessions")
            .and_then(Json::as_arr)
            .ok_or("bad \"sessions\"")?
            .iter()
            .map(|s| {
                Ok(SessionSnap {
                    member: get_usize(s, "member")?,
                    ext_peer: get_usize(s, "peer")?,
                    established: get_bool(s, "established")?,
                    ctrl_up: get_bool(s, "ctrl_up")?,
                    intent: announce_list_from_json(s.get("intent").ok_or("missing \"intent\"")?)?,
                    actual: announce_list_from_json(s.get("actual").ok_or("missing \"actual\"")?)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Snapshot {
            nodes,
            edges,
            policy,
            control,
            flow_priority,
            intent_flows,
            sessions,
        })
    }
}
