//! The static checks: per-prefix forwarding-graph construction plus the
//! four invariants (loop-freedom, blackhole-freedom, intent consistency,
//! valley-free conformance).
//!
//! The verifier is Veriflow-shaped: it never simulates packets. For each
//! tracked destination prefix it resolves every node's own longest-prefix
//! lookup into a successor function (at most one out-edge per node), then
//! classifies the resulting functional graph with one O(nodes + edges)
//! walk using preallocated scratch buffers, so a full run over hundreds of
//! prefixes stays in the low milliseconds.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use bgpsdn_bgp::{Asn, Prefix};

use crate::snapshot::{
    ControlHealth, Device, NextHop, PolicyKind, RelKind, RuleAction, SessionSnap, Snapshot,
};

/// Which invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The forwarding graph for a prefix contains a cycle.
    Loop,
    /// A node holds a route but traffic dies before the origin (down link,
    /// routeless next hop, controller punt, or off-origin delivery).
    Blackhole,
    /// Installed device state does not byte-match controller intent while
    /// the control plane is synced.
    IntentDrift,
    /// An advertised or selected AS path violates the valley-free export
    /// rules.
    Valley,
}

impl ViolationKind {
    /// Stable lowercase name (used in trace events and reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::Loop => "loop",
            ViolationKind::Blackhole => "blackhole",
            ViolationKind::IntentDrift => "intent_drift",
            ViolationKind::Valley => "valley",
        }
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One invariant violation, with a human-readable witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The invariant broken.
    pub kind: ViolationKind,
    /// The destination prefix the check ran for, when prefix-scoped.
    pub prefix: Option<Prefix>,
    /// The primary offending node (device name).
    pub node: String,
    /// The offending rule or mismatch, in one line.
    pub detail: String,
    /// The witness path demonstrating the violation.
    pub witness: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.prefix {
            Some(p) => write!(f, "[{}] {p} at {}: {}", self.kind, self.node, self.witness),
            None => write!(f, "[{}] at {}: {}", self.kind, self.node, self.witness),
        }
    }
}

/// A note about state that is stale because the control plane is degraded
/// (headless or resyncing) — reported, but not a violation.
pub type StaleNote = String;

/// The outcome of one verification pass.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Destination prefixes whose forwarding graphs were analyzed.
    pub prefixes_checked: usize,
    /// Individual invariant evaluations executed.
    pub checks: usize,
    /// All violations found, in discovery order.
    pub violations: Vec<Violation>,
    /// Stale-but-consistent observations (headless/resync intent drift).
    pub stale: Vec<StaleNote>,
    /// Control-plane health at snapshot time.
    pub control: ControlHealth,
}

impl Report {
    /// True when no invariant was violated.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Count of violations of one kind.
    #[must_use]
    pub fn count_of(&self, kind: ViolationKind) -> usize {
        self.violations.iter().filter(|v| v.kind == kind).count()
    }

    /// Human-readable multi-line report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "verify: {} prefixes, {} checks, {} violations, {} stale notes (control: {})",
            self.prefixes_checked,
            self.checks,
            self.violations.len(),
            self.stale.len(),
            self.control.name(),
        );
        for v in &self.violations {
            let _ = writeln!(out, "  VIOLATION {v}");
        }
        for s in &self.stale {
            let _ = writeln!(out, "  stale: {s}");
        }
        out
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Resolved forwarding decision of one node for the current prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Hop {
    /// No matching route/rule — fine for the node itself.
    NoRoute,
    /// Local delivery.
    Deliver,
    /// Explicit drop rule.
    Drop,
    /// Punt to controller (never legitimate in a converged snapshot).
    Punt,
    /// Forward to vertex; `up` is the link state, `stale` marks an RFC 4724
    /// graceful-restart retention, `entry` indexes the node's table for
    /// witness rendering.
    Via {
        peer: usize,
        up: bool,
        stale: bool,
        entry: u32,
    },
    /// The rule outputs to a port with no data-plane peer.
    DeadPort { port: u32, entry: u32 },
}

/// Terminal classification of a node's forwarding chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Unknown,
    /// Chain ends in legitimate delivery or an explicit drop.
    Ok,
    /// Chain ends in a dead end (violation already reported downstream).
    Bad,
    /// Chain enters a cycle (violation already reported).
    Cycle,
}

/// Walk colors for the functional-graph traversal.
const UNVISITED: u8 = 0;
const ON_STACK: u8 = 1;
const DONE: u8 = 2;

/// One (priority, length) lookup group of a node table.
#[derive(Debug, Clone, Copy)]
struct LookupGroup {
    priority: u16,
    len: u8,
}

/// Preprocessed per-node lookup structure: exact-match maps per populated
/// (priority, prefix-length) pair, probed in match order.
#[derive(Debug, Default)]
struct NodeTable {
    /// Distinct (priority desc, length desc) groups.
    groups: Vec<LookupGroup>,
    /// `(priority, len, masked network) → entry index`.
    exact: BTreeMap<(u16, u8, u32), u32>,
}

impl NodeTable {
    fn clear(&mut self) {
        self.groups.clear();
        self.exact.clear();
    }

    fn insert(&mut self, priority: u16, prefix: Prefix, entry: u32) {
        let key = (priority, prefix.len(), prefix.network_u32());
        self.exact.entry(key).or_insert(entry);
        if !self
            .groups
            .iter()
            .any(|g| g.priority == priority && g.len == prefix.len())
        {
            self.groups.push(LookupGroup {
                priority,
                len: prefix.len(),
            });
        }
    }

    fn seal(&mut self) {
        // Match order: priority desc, then prefix length desc.
        self.groups
            .sort_by(|x, y| y.priority.cmp(&x.priority).then(y.len.cmp(&x.len)));
    }

    /// Longest-prefix/priority lookup of an address, as the device does it.
    fn lookup(&self, addr: u32) -> Option<u32> {
        for g in &self.groups {
            let mask = if g.len == 0 {
                0
            } else {
                u32::MAX << (32 - g.len)
            };
            if let Some(&entry) = self.exact.get(&(g.priority, g.len, addr & mask)) {
                return Some(entry);
            }
        }
        None
    }
}

/// The verifier, holding reusable scratch so repeated passes (one per
/// convergence point, one per fault action) allocate nothing per prefix.
#[derive(Debug, Default)]
pub struct Verifier {
    tables: Vec<NodeTable>,
    /// Relationship of `b` as seen from `a`: `(a, b) → rel`.
    rel: BTreeMap<(usize, usize), RelStep>,
    asn_index: BTreeMap<u32, usize>,
    is_member: Vec<bool>,
    prefixes: Vec<Prefix>,
    hops: Vec<Hop>,
    state: Vec<u8>,
    outcome: Vec<Outcome>,
    path: Vec<usize>,
    verts: Vec<usize>,
}

/// A set of announcements: `(prefix, AS path)` pairs.
type AnnounceSet = Vec<(Prefix, Vec<Asn>)>;

/// One valley-free step direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RelStep {
    /// Next hop is my provider (going up).
    Up,
    /// Next hop is my peer (sideways).
    Side,
    /// Next hop is my customer (going down).
    Down,
}

impl Verifier {
    /// Fresh verifier with empty scratch.
    #[must_use]
    pub fn new() -> Verifier {
        Verifier::default()
    }

    /// Run all checks over a snapshot and produce a report.
    pub fn verify(&mut self, snap: &Snapshot) -> Report {
        let mut report = Report {
            control: snap.control,
            ..Report::default()
        };
        self.prepare(snap);
        self.check_forwarding(snap, &mut report);
        self.check_intent(snap, &mut report);
        self.check_valley(snap, &mut report);
        report
    }

    // ------------------------------------------------------------------
    // Preparation
    // ------------------------------------------------------------------

    fn prepare(&mut self, snap: &Snapshot) {
        let n = snap.nodes.len();
        self.tables.resize_with(n, NodeTable::default);
        self.is_member.clear();
        self.asn_index.clear();
        self.prefixes.clear();
        let mut universe: BTreeSet<Prefix> = BTreeSet::new();
        for (v, node) in snap.nodes.iter().enumerate() {
            self.is_member
                .push(matches!(node.device, Device::Member { .. }));
            self.asn_index.insert(node.asn.0, v);
            universe.extend(node.originated.iter().copied());
            let table = &mut self.tables[v];
            table.clear();
            match &node.device {
                Device::Legacy { routes } => {
                    for (i, r) in routes.iter().enumerate() {
                        universe.insert(r.prefix);
                        table.insert(0, r.prefix, to_entry(i));
                    }
                }
                Device::Member { rules, .. } => {
                    for (i, r) in rules.iter().enumerate() {
                        universe.insert(r.prefix);
                        table.insert(r.priority, r.prefix, to_entry(i));
                    }
                }
            }
            table.seal();
        }
        for flows in &snap.intent_flows {
            universe.extend(flows.iter().map(|(p, _)| *p));
        }
        self.prefixes.extend(universe);
        self.rel.clear();
        for e in &snap.edges {
            match e.kind {
                RelKind::PeerPeer => {
                    self.rel.insert((e.a, e.b), RelStep::Side);
                    self.rel.insert((e.b, e.a), RelStep::Side);
                }
                RelKind::ProviderCustomer => {
                    // From the provider `a`, the next hop `b` is a customer.
                    self.rel.insert((e.a, e.b), RelStep::Down);
                    self.rel.insert((e.b, e.a), RelStep::Up);
                }
            }
        }
        self.hops.resize(n, Hop::NoRoute);
        self.state.resize(n, UNVISITED);
        self.outcome.resize(n, Outcome::Unknown);
    }

    // ------------------------------------------------------------------
    // Per-prefix forwarding-graph checks (loop-freedom + blackholes)
    // ------------------------------------------------------------------

    fn check_forwarding(&mut self, snap: &Snapshot, report: &mut Report) {
        // The prefix list lives in scratch; take it out so `self` stays
        // borrowable, and put it back for the next pass.
        let prefixes = std::mem::take(&mut self.prefixes);
        for &prefix in &prefixes {
            self.resolve_hops(snap, prefix);
            self.walk_prefix(snap, prefix, report);
            report.prefixes_checked += 1;
            report.checks += 2; // loop-freedom + blackhole for this prefix
        }
        self.prefixes = prefixes;
    }

    /// Resolve every node's own lookup of the prefix's probe address into
    /// the successor function for this prefix.
    fn resolve_hops(&mut self, snap: &Snapshot, prefix: Prefix) {
        let addr = prefix.network_u32();
        for (v, node) in snap.nodes.iter().enumerate() {
            self.state[v] = UNVISITED;
            self.outcome[v] = Outcome::Unknown;
            // Originated prefixes deliver locally before any table lookup
            // (mirrors the legacy router's `forward_lookup`).
            if node.originated.iter().any(|p| p.contains(prefix.network())) {
                self.hops[v] = Hop::Deliver;
                continue;
            }
            self.hops[v] = match (&node.device, self.tables[v].lookup(addr)) {
                (_, None) => Hop::NoRoute,
                (Device::Legacy { routes }, Some(entry)) => {
                    let route = &routes[from_entry(entry)];
                    match route.next {
                        NextHop::Deliver => Hop::Deliver,
                        NextHop::Via { peer, up } => Hop::Via {
                            peer,
                            up,
                            stale: route.stale,
                            entry,
                        },
                    }
                }
                (Device::Member { rules, ports, .. }, Some(entry)) => {
                    match rules[from_entry(entry)].action {
                        RuleAction::Local => Hop::Deliver,
                        RuleAction::Drop => Hop::Drop,
                        RuleAction::ToController => Hop::Punt,
                        RuleAction::Output(port) => match ports.iter().find(|p| p.port == port) {
                            Some(p) => Hop::Via {
                                peer: p.peer,
                                up: p.up,
                                stale: false,
                                entry,
                            },
                            None => Hop::DeadPort { port, entry },
                        },
                    }
                }
            };
        }
    }

    /// Classify the functional graph: one violation per distinct cycle or
    /// dead end, with the discovering walk as the witness path.
    fn walk_prefix(&mut self, snap: &Snapshot, prefix: Prefix, report: &mut Report) {
        for start in 0..snap.nodes.len() {
            if self.state[start] != UNVISITED {
                continue;
            }
            self.path.clear();
            let mut cur = start;
            let outcome = loop {
                match self.state[cur] {
                    DONE => {
                        // A routeless node is fine standalone but a dead
                        // end for any chain that forwards into it; report
                        // that once, on first arrival.
                        if matches!(self.hops[cur], Hop::NoRoute)
                            && self.outcome[cur] == Outcome::Ok
                        {
                            self.path.push(cur);
                            self.report_dead_end(snap, prefix, "next hop has no route", report);
                            break Outcome::Bad;
                        }
                        break self.outcome[cur];
                    }
                    ON_STACK => {
                        self.report_loop(snap, prefix, cur, report);
                        break Outcome::Cycle;
                    }
                    _ => {}
                }
                self.state[cur] = ON_STACK;
                self.path.push(cur);
                match self.hops[cur] {
                    Hop::NoRoute => {
                        // The chain *arrived* here over a route; a routeless
                        // node mid-chain is a dead end for its predecessors
                        // (but fine when it is the start of the walk).
                        if self.path.len() > 1 {
                            self.report_dead_end(snap, prefix, "next hop has no route", report);
                            break Outcome::Bad;
                        }
                        break Outcome::Ok;
                    }
                    Hop::Deliver => {
                        if origin_covers(snap, cur, prefix) {
                            break Outcome::Ok;
                        }
                        self.report_dead_end(snap, prefix, "delivered off-origin", report);
                        break Outcome::Bad;
                    }
                    Hop::Drop => break Outcome::Ok, // explicit drop is a legal terminal
                    Hop::Punt => {
                        self.report_dead_end(snap, prefix, "punts to controller", report);
                        break Outcome::Bad;
                    }
                    Hop::DeadPort { port, .. } => {
                        let detail = format!("rule outputs to unknown port {port}");
                        self.report_dead_end(snap, prefix, &detail, report);
                        break Outcome::Bad;
                    }
                    Hop::Via {
                        peer, up, stale, ..
                    } => {
                        if !up {
                            if stale {
                                // An RFC 4724 retention pointing over a dead
                                // link is the deliberate GR trade-off, not a
                                // blackhole: forwarding stays frozen until
                                // the restart window closes.
                                report.stale.push(format!(
                                    "{} holds a graceful-restart stale route for {prefix} \
                                     over a down link toward {} (consistent-but-stale)",
                                    snap.nodes[cur].name, snap.nodes[peer].name
                                ));
                                break Outcome::Ok;
                            }
                            self.report_dead_end(snap, prefix, "next-hop link is down", report);
                            break Outcome::Bad;
                        }
                        cur = peer;
                    }
                }
            };
            let settled = match outcome {
                Outcome::Cycle => Outcome::Cycle,
                Outcome::Bad => Outcome::Bad,
                _ => Outcome::Ok,
            };
            for &v in &self.path {
                self.state[v] = DONE;
                self.outcome[v] = settled;
            }
        }
    }

    /// Emit a loop violation; `reentry` is the node closing the cycle.
    fn report_loop(
        &mut self,
        snap: &Snapshot,
        prefix: Prefix,
        reentry: usize,
        report: &mut Report,
    ) {
        let cycle_start = self.path.iter().position(|&v| v == reentry).unwrap_or(0);
        let cycle = &self.path[cycle_start..];
        let mut witness = String::new();
        for &v in cycle {
            let _ = write!(
                witness,
                "{} --[{}]--> ",
                snap.nodes[v].name,
                self.hop_detail(snap, v)
            );
        }
        let _ = write!(witness, "{}", snap.nodes[reentry].name);
        report.violations.push(Violation {
            kind: ViolationKind::Loop,
            prefix: Some(prefix),
            node: snap.nodes[reentry].name.clone(),
            detail: self.hop_detail(snap, reentry),
            witness,
        });
    }

    /// Emit a blackhole violation for the tail of the current walk path.
    fn report_dead_end(
        &mut self,
        snap: &Snapshot,
        prefix: Prefix,
        reason: &str,
        report: &mut Report,
    ) {
        // The offender is the last node on the path that still has a route.
        let offender_pos = if matches!(
            self.hops[*self.path.last().expect("walk path is non-empty")],
            Hop::NoRoute
        ) && self.path.len() > 1
        {
            self.path.len() - 2
        } else {
            self.path.len() - 1
        };
        let offender = self.path[offender_pos];
        let mut witness = String::new();
        for (i, &v) in self.path.iter().enumerate() {
            if i > 0 {
                let _ = write!(witness, " -> ");
            }
            let _ = write!(witness, "{}", snap.nodes[v].name);
            if !matches!(self.hops[v], Hop::NoRoute) {
                let _ = write!(witness, "[{}]", self.hop_detail(snap, v));
            }
        }
        let _ = write!(witness, " ({reason})");
        report.violations.push(Violation {
            kind: ViolationKind::Blackhole,
            prefix: Some(prefix),
            node: snap.nodes[offender].name.clone(),
            detail: format!("{} ({reason})", self.hop_detail(snap, offender)),
            witness,
        });
    }

    /// Render the rule/route a node's current hop came from.
    fn hop_detail(&self, snap: &Snapshot, v: usize) -> String {
        let entry = match self.hops[v] {
            Hop::Via { entry, .. } | Hop::DeadPort { entry, .. } => Some(entry),
            _ => None,
        };
        match (&snap.nodes[v].device, entry) {
            (Device::Legacy { routes }, Some(e)) => {
                let r = &routes[from_entry(e)];
                match r.next {
                    NextHop::Via { peer, .. } => {
                        format!("{} via {}", r.prefix, snap.nodes[peer].name)
                    }
                    NextHop::Deliver => format!("{} local", r.prefix),
                }
            }
            (Device::Member { rules, .. }, Some(e)) => {
                let r = &rules[from_entry(e)];
                format!("{} p{} {}", r.prefix, r.priority, r.action)
            }
            _ => match self.hops[v] {
                Hop::Deliver => "local delivery".to_string(),
                Hop::Drop => "drop".to_string(),
                Hop::Punt => "punt to controller".to_string(),
                _ => "no route".to_string(),
            },
        }
    }

    // ------------------------------------------------------------------
    // Intent consistency
    // ------------------------------------------------------------------

    #[allow(clippy::unused_self)] // kept as a method for check symmetry
    fn check_intent(&self, snap: &Snapshot, report: &mut Report) {
        if snap.control == ControlHealth::NoCluster {
            return;
        }
        for (v, node) in snap.nodes.iter().enumerate() {
            let Device::Member { member, rules, .. } = &node.device else {
                continue;
            };
            report.checks += 1;
            let Some(intent) = snap.intent_flows.get(*member) else {
                continue;
            };
            diff_member(snap, v, *member, rules, intent, report);
        }
        for (s, sess) in snap.sessions.iter().enumerate() {
            report.checks += 1;
            diff_session(snap, s, sess, report);
        }
    }

    // ------------------------------------------------------------------
    // Valley-free conformance
    // ------------------------------------------------------------------

    fn check_valley(&mut self, snap: &Snapshot, report: &mut Report) {
        if snap.policy != PolicyKind::GaoRexford {
            return;
        }
        // Advertised paths: the speaker's actual adj-out toward each
        // external peer.
        let sessions: Vec<(usize, AnnounceSet)> = snap
            .sessions
            .iter()
            .map(|s| (s.ext_peer, s.actual.clone()))
            .collect();
        for (ext_peer, actual) in &sessions {
            for (prefix, path) in actual {
                report.checks += 1;
                self.check_one_path(snap, *ext_peer, *prefix, path, report);
            }
        }
        // Selected paths: every legacy router's Loc-RIB best routes.
        for v in 0..snap.nodes.len() {
            let Device::Legacy { routes } = &snap.nodes[v].device else {
                continue;
            };
            let routes = routes.clone();
            for r in &routes {
                if r.as_path.is_empty() {
                    continue; // locally originated
                }
                report.checks += 1;
                self.check_one_path(snap, v, r.prefix, &r.as_path, report);
            }
        }
    }

    /// Check the traffic path `receiver → as_path…` for valley-freeness.
    /// Hops between two cluster members are administrative (the cluster is
    /// one routing domain) and do not change the up/down state.
    fn check_one_path(
        &mut self,
        snap: &Snapshot,
        receiver: usize,
        prefix: Prefix,
        as_path: &[Asn],
        report: &mut Report,
    ) {
        self.verts.clear();
        self.verts.push(receiver);
        for asn in as_path {
            if let Some(&v) = self.asn_index.get(&asn.0) {
                // Path prepending repeats an ASN; collapse it.
                if self.verts.last() != Some(&v) {
                    self.verts.push(v);
                }
            } else {
                record_drift(
                    snap,
                    report,
                    ViolationKind::Valley,
                    Some(prefix),
                    &snap.nodes[receiver].name,
                    format!("path references unknown {asn}"),
                );
                return;
            }
        }
        let mut descending = false;
        for i in 1..self.verts.len() {
            let (x, y) = (self.verts[i - 1], self.verts[i]);
            if self.is_member[x] && self.is_member[y] {
                continue; // intra-cluster hop
            }
            let step = self.rel.get(&(x, y)).copied();
            let bad = match step {
                None => Some("non-adjacent hop"),
                Some(RelStep::Up | RelStep::Side) if descending => {
                    Some("path climbs after descending (valley)")
                }
                Some(RelStep::Side | RelStep::Down) => {
                    descending = true;
                    None
                }
                Some(RelStep::Up) => None,
            };
            if let Some(reason) = bad {
                let mut witness = String::new();
                for (k, &v) in self.verts.iter().enumerate() {
                    if k > 0 {
                        let _ = write!(witness, " -> ");
                    }
                    let _ = write!(witness, "{}", snap.nodes[v].name);
                }
                let _ = write!(
                    witness,
                    " ({reason} at {} -> {})",
                    snap.nodes[x].name, snap.nodes[y].name
                );
                report.violations.push(Violation {
                    kind: ViolationKind::Valley,
                    prefix: Some(prefix),
                    node: snap.nodes[x].name.clone(),
                    detail: format!("{reason}: {} -> {}", snap.nodes[x].name, snap.nodes[y].name),
                    witness,
                });
                return;
            }
        }
    }
}

/// Compare a member switch's installed rules against controller intent.
fn diff_member(
    snap: &Snapshot,
    v: usize,
    member: usize,
    rules: &[crate::snapshot::SwitchRule],
    intent: &[(Prefix, RuleAction)],
    report: &mut Report,
) {
    let name = &snap.nodes[v].name;
    let mut drift = |prefix: Prefix, detail: String| {
        record_drift(
            snap,
            report,
            ViolationKind::IntentDrift,
            Some(prefix),
            name,
            detail,
        );
    };
    // Every installed rule must be intended (at the controller priority,
    // with the intended action)…
    for r in rules {
        match intent.iter().find(|(p, _)| *p == r.prefix) {
            None => drift(
                r.prefix,
                format!("unexpected rule {} p{} {}", r.prefix, r.priority, r.action),
            ),
            Some((_, want)) if r.priority != snap.flow_priority => drift(
                r.prefix,
                format!(
                    "rule {} installed at p{} (controller installs p{}, {want})",
                    r.prefix, r.priority, snap.flow_priority
                ),
            ),
            Some((_, want)) if *want != r.action => drift(
                r.prefix,
                format!("rule {} has action {} (intent {want})", r.prefix, r.action),
            ),
            Some(_) => {}
        }
    }
    // …and every intended rule must be installed.
    for (p, want) in intent {
        if !rules.iter().any(|r| r.prefix == *p) {
            drift(
                *p,
                format!("missing rule {p} {want} (member {member} intent)"),
            );
        }
    }
}

/// Compare a session's actual adj-out against controller intent.
fn diff_session(snap: &Snapshot, s: usize, sess: &SessionSnap, report: &mut Report) {
    let name = format!(
        "session#{s} {}->{}",
        snap.nodes[sess.member].name, snap.nodes[sess.ext_peer].name
    );
    if sess.established != sess.ctrl_up {
        record_drift(
            snap,
            report,
            ViolationKind::IntentDrift,
            None,
            &name,
            format!(
                "speaker says established={}, controller says up={}",
                sess.established, sess.ctrl_up
            ),
        );
    }
    for (p, path) in &sess.actual {
        match sess.intent.iter().find(|(ip, _)| ip == p) {
            None => record_drift(
                snap,
                report,
                ViolationKind::IntentDrift,
                Some(*p),
                &name,
                format!("unexpected announcement {p} {}", fmt_path(path)),
            ),
            Some((_, want)) if want != path => record_drift(
                snap,
                report,
                ViolationKind::IntentDrift,
                Some(*p),
                &name,
                format!(
                    "announced path {} (intent {})",
                    fmt_path(path),
                    fmt_path(want)
                ),
            ),
            Some(_) => {}
        }
    }
    for (p, want) in &sess.intent {
        if !sess.actual.iter().any(|(ap, _)| ap == p) {
            record_drift(
                snap,
                report,
                ViolationKind::IntentDrift,
                Some(*p),
                &name,
                format!("missing announcement {p} {}", fmt_path(want)),
            );
        }
    }
}

/// Record an intent-class mismatch: a violation when the control plane is
/// synced, a stale-but-consistent note when it is headless or resyncing.
fn record_drift(
    snap: &Snapshot,
    report: &mut Report,
    kind: ViolationKind,
    prefix: Option<Prefix>,
    node: &str,
    detail: String,
) {
    match snap.control {
        ControlHealth::Headless | ControlHealth::Resyncing => {
            report
                .stale
                .push(format!("{node}: {detail} ({})", snap.control.name()));
        }
        _ => {
            report.violations.push(Violation {
                kind,
                prefix,
                node: node.to_string(),
                detail: detail.clone(),
                witness: detail,
            });
        }
    }
}

/// True when node `v` legitimately terminates traffic for `prefix`.
fn origin_covers(snap: &Snapshot, v: usize, prefix: Prefix) -> bool {
    snap.nodes[v]
        .originated
        .iter()
        .any(|p| p.covers(prefix) || *p == prefix)
}

fn fmt_path(path: &[Asn]) -> String {
    let mut out = String::from("[");
    for (i, a) in path.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{}", a.0);
    }
    out.push(']');
    out
}

fn to_entry(i: usize) -> u32 {
    u32::try_from(i).expect("table entry index fits u32")
}

fn from_entry(e: u32) -> usize {
    e as usize
}
