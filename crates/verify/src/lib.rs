//! Static data-plane verification for the hybrid BGP-SDN emulator.
//!
//! This crate analyzes a *frozen* [`Snapshot`] of the network — every
//! switch's compiled flow table and port map, every legacy router's FIB,
//! the speaker's per-session adj-out, and the controller's intended flow
//! and announcement state — and checks four invariants without simulating
//! a single packet (the Veriflow approach):
//!
//! 1. **Loop-freedom** — per destination prefix, the global forwarding
//!    graph is a DAG rooted at the prefix origin, including paths that
//!    cross the legacy ↔ cluster boundary more than once.
//! 2. **Blackhole detection** — every node holding a route for a prefix
//!    reaches the origin or an explicit drop rule, never a dead end
//!    (down link, routeless next hop, unknown output port, or a punt to
//!    the controller).
//! 3. **Intent consistency** — installed flow rules and advertised
//!    adj-out routes byte-match the controller's last computed state.
//!    When the control plane is headless or resyncing, mismatches are
//!    reported as *stale-but-consistent* notes, not violations.
//! 4. **Valley-free conformance** — under Gao-Rexford policy templates,
//!    advertised and selected AS paths respect customer-provider/peer
//!    export rules. (Skipped under all-permit policies, where any
//!    multi-hop peer path would trivially "violate" the property.)
//!
//! The [`Verifier`] keeps preallocated scratch (per-node lookup indexes,
//! walk coloring, outcome memoization) so repeated passes allocate
//! almost nothing and a 256-prefix scale scenario verifies in
//! milliseconds.

#![warn(clippy::pedantic)]
#![warn(missing_docs)]
#![allow(clippy::module_name_repetitions)]

mod snapshot;
mod verifier;

pub use snapshot::{
    ControlHealth, Device, EdgeRel, LegacyRoute, NextHop, NodeState, PolicyKind, PortState,
    RelKind, RuleAction, SessionSnap, Snapshot, SwitchRule,
};
pub use verifier::{Report, StaleNote, Verifier, Violation, ViolationKind};
