//! Mutation tests: a known-clean snapshot verifies with zero violations,
//! and each deliberate corruption produces exactly the expected violation
//! with a witness naming the offending node/rule.

use bgpsdn_bgp::{Asn, Prefix};
use bgpsdn_verify::{
    ControlHealth, Device, EdgeRel, LegacyRoute, NextHop, NodeState, PolicyKind, PortState,
    RelKind, RuleAction, SessionSnap, Snapshot, SwitchRule, Verifier, ViolationKind,
};

const PRIO: u16 = 100;

fn pfx(s: &str) -> Prefix {
    s.parse().expect("valid prefix literal")
}

/// A 4-node hybrid chain: as10 (legacy origin) — sw20 — sw30 — as40.
///
/// Traffic for 10.0.0.0/24 flows as40 -> sw30 -> sw20 -> as10; the two
/// switches are cluster members 0 and 1 with matching controller intent.
fn clean_snapshot() -> Snapshot {
    let p = pfx("10.0.0.0/24");
    Snapshot {
        nodes: vec![
            NodeState {
                name: "as10".into(),
                asn: Asn(10),
                originated: vec![p],
                device: Device::Legacy {
                    routes: vec![LegacyRoute {
                        prefix: p,
                        next: NextHop::Deliver,
                        as_path: vec![],
                        stale: false,
                    }],
                },
            },
            NodeState {
                name: "sw20".into(),
                asn: Asn(20),
                originated: vec![],
                device: Device::Member {
                    member: 0,
                    rules: vec![SwitchRule {
                        priority: PRIO,
                        prefix: p,
                        action: RuleAction::Output(1),
                    }],
                    ports: vec![
                        PortState {
                            port: 1,
                            peer: 0,
                            up: true,
                        },
                        PortState {
                            port: 2,
                            peer: 2,
                            up: true,
                        },
                    ],
                },
            },
            NodeState {
                name: "sw30".into(),
                asn: Asn(30),
                originated: vec![],
                device: Device::Member {
                    member: 1,
                    rules: vec![SwitchRule {
                        priority: PRIO,
                        prefix: p,
                        action: RuleAction::Output(1),
                    }],
                    ports: vec![
                        PortState {
                            port: 1,
                            peer: 1,
                            up: true,
                        },
                        PortState {
                            port: 2,
                            peer: 3,
                            up: true,
                        },
                    ],
                },
            },
            NodeState {
                name: "as40".into(),
                asn: Asn(40),
                originated: vec![],
                device: Device::Legacy {
                    routes: vec![LegacyRoute {
                        prefix: p,
                        next: NextHop::Via { peer: 2, up: true },
                        as_path: vec![Asn(30), Asn(20), Asn(10)],
                        stale: false,
                    }],
                },
            },
        ],
        edges: vec![
            EdgeRel {
                a: 0,
                b: 1,
                kind: RelKind::PeerPeer,
            },
            EdgeRel {
                a: 1,
                b: 2,
                kind: RelKind::PeerPeer,
            },
            EdgeRel {
                a: 2,
                b: 3,
                kind: RelKind::PeerPeer,
            },
        ],
        policy: PolicyKind::AllPermit,
        control: ControlHealth::Synced,
        flow_priority: PRIO,
        intent_flows: vec![
            vec![(p, RuleAction::Output(1))],
            vec![(p, RuleAction::Output(1))],
        ],
        sessions: vec![SessionSnap {
            member: 2,
            ext_peer: 3,
            established: true,
            ctrl_up: true,
            intent: vec![(p, vec![Asn(30), Asn(20), Asn(10)])],
            actual: vec![(p, vec![Asn(30), Asn(20), Asn(10)])],
        }],
    }
}

#[test]
fn clean_snapshot_has_zero_violations() {
    let snap = clean_snapshot();
    let report = Verifier::new().verify(&snap);
    assert!(report.ok(), "unexpected violations:\n{}", report.render());
    assert_eq!(report.prefixes_checked, 1);
    assert!(report.checks > 0);
    assert!(report.stale.is_empty());
}

#[test]
fn injected_loop_is_caught_with_witness() {
    let mut snap = clean_snapshot();
    // Corrupt sw20 to forward back toward sw30 (port 2) instead of the
    // origin; update intent to match so only the loop fires.
    let Device::Member { rules, .. } = &mut snap.nodes[1].device else {
        panic!("sw20 is a member");
    };
    rules[0].action = RuleAction::Output(2);
    snap.intent_flows[0][0].1 = RuleAction::Output(2);

    let report = Verifier::new().verify(&snap);
    assert_eq!(
        report.count_of(ViolationKind::Loop),
        1,
        "expected exactly one loop:\n{}",
        report.render()
    );
    let v = &report.violations[0];
    assert_eq!(v.kind, ViolationKind::Loop);
    assert!(v.witness.contains("sw20") && v.witness.contains("sw30"));
    assert!(v.detail.contains("10.0.0.0/24"));
}

#[test]
fn removed_rule_creates_blackhole_with_witness() {
    let mut snap = clean_snapshot();
    // Drop sw30's only rule (and its intent, so the drift check stays
    // quiet); as40 still forwards toward sw30, which now has no route.
    let Device::Member { rules, .. } = &mut snap.nodes[2].device else {
        panic!("sw30 is a member");
    };
    rules.clear();
    snap.intent_flows[1].clear();

    let report = Verifier::new().verify(&snap);
    assert_eq!(
        report.count_of(ViolationKind::Blackhole),
        1,
        "expected exactly one blackhole:\n{}",
        report.render()
    );
    let v = &report.violations[0];
    assert_eq!(v.node, "as40", "offender is the last node with a route");
    assert!(v.witness.contains("as40") && v.witness.contains("sw30"));
    assert!(v.witness.contains("no route"));
}

#[test]
fn down_link_creates_blackhole() {
    let mut snap = clean_snapshot();
    let Device::Member { ports, .. } = &mut snap.nodes[1].device else {
        panic!("sw20 is a member");
    };
    ports[0].up = false; // sw20's uplink to the origin goes down

    let report = Verifier::new().verify(&snap);
    assert_eq!(report.count_of(ViolationKind::Blackhole), 1);
    let v = &report.violations[0];
    assert_eq!(v.node, "sw20");
    assert!(v.witness.contains("link is down"), "witness: {}", v.witness);
}

#[test]
fn gr_stale_route_over_down_link_is_stale_not_blackhole() {
    // as40 retains its route under a graceful-restart window while the
    // link toward sw30 is down: the frozen forwarding state is the
    // deliberate RFC 4724 trade-off, reported as a stale note.
    let mut snap = clean_snapshot();
    let Device::Legacy { routes } = &mut snap.nodes[3].device else {
        panic!("as40 is legacy");
    };
    routes[0].next = NextHop::Via { peer: 2, up: false };
    routes[0].stale = true;

    let report = Verifier::new().verify(&snap);
    assert_eq!(
        report.count_of(ViolationKind::Blackhole),
        0,
        "GR-stale retention must not count as a blackhole:\n{}",
        report.render()
    );
    assert_eq!(report.stale.len(), 1, "one stale note expected");
    assert!(
        report.stale[0].contains("as40") && report.stale[0].contains("graceful-restart"),
        "note: {}",
        report.stale[0]
    );

    // The same dead link without the stale marker stays a blackhole.
    let Device::Legacy { routes } = &mut snap.nodes[3].device else {
        panic!("as40 is legacy");
    };
    routes[0].stale = false;
    let report = Verifier::new().verify(&snap);
    assert_eq!(report.count_of(ViolationKind::Blackhole), 1);
}

#[test]
fn stale_marker_survives_the_json_roundtrip() {
    let mut snap = clean_snapshot();
    let Device::Legacy { routes } = &mut snap.nodes[3].device else {
        panic!("as40 is legacy");
    };
    routes[0].stale = true;
    let json = snap.to_json();
    let back = Snapshot::from_json(&json).expect("roundtrip");
    assert_eq!(snap, back, "stale flag must survive serialization");
}

#[test]
fn intent_drift_is_caught_when_synced() {
    let mut snap = clean_snapshot();
    // Install sw20's rule at the wrong priority: forwarding still works
    // (single rule), but the table no longer matches controller intent.
    let Device::Member { rules, .. } = &mut snap.nodes[1].device else {
        panic!("sw20 is a member");
    };
    rules[0].priority = PRIO - 1;

    let report = Verifier::new().verify(&snap);
    assert_eq!(
        report.count_of(ViolationKind::IntentDrift),
        1,
        "report:\n{}",
        report.render()
    );
    let v = &report.violations[0];
    assert_eq!(v.node, "sw20");
    assert!(v.detail.contains("p99"), "detail: {}", v.detail);
    assert_eq!(report.count_of(ViolationKind::Loop), 0);
    assert_eq!(report.count_of(ViolationKind::Blackhole), 0);
}

#[test]
fn dropped_adj_out_route_is_intent_drift() {
    let mut snap = clean_snapshot();
    snap.sessions[0].actual.clear(); // speaker lost its announcement

    let report = Verifier::new().verify(&snap);
    assert_eq!(report.count_of(ViolationKind::IntentDrift), 1);
    let v = &report.violations[0];
    assert!(v.node.contains("sw30") && v.node.contains("as40"));
    assert!(v.detail.contains("missing announcement 10.0.0.0/24"));
}

#[test]
fn headless_drift_is_stale_not_violation() {
    let mut snap = clean_snapshot();
    let Device::Member { rules, .. } = &mut snap.nodes[1].device else {
        panic!("sw20 is a member");
    };
    rules[0].priority = PRIO - 1;
    snap.control = ControlHealth::Headless;

    let report = Verifier::new().verify(&snap);
    assert!(report.ok(), "headless drift must not be a violation");
    assert_eq!(report.stale.len(), 1);
    assert!(report.stale[0].contains("headless"));

    snap.control = ControlHealth::Resyncing;
    let report = Verifier::new().verify(&snap);
    assert!(report.ok());
    assert!(report.stale[0].contains("resyncing"));
}

#[test]
fn punt_to_controller_is_blackhole() {
    let mut snap = clean_snapshot();
    let Device::Member { rules, .. } = &mut snap.nodes[2].device else {
        panic!("sw30 is a member");
    };
    rules[0].action = RuleAction::ToController;
    snap.intent_flows[1][0].1 = RuleAction::ToController;

    let report = Verifier::new().verify(&snap);
    assert_eq!(report.count_of(ViolationKind::Blackhole), 1);
    assert!(report.violations[0].witness.contains("controller"));
}

#[test]
fn explicit_drop_is_a_legal_terminal() {
    let mut snap = clean_snapshot();
    let Device::Member { rules, .. } = &mut snap.nodes[2].device else {
        panic!("sw30 is a member");
    };
    rules[0].action = RuleAction::Drop;
    snap.intent_flows[1][0].1 = RuleAction::Drop;

    let report = Verifier::new().verify(&snap);
    assert!(
        report.ok(),
        "drop is explicit, not a blackhole:\n{}",
        report.render()
    );
}

/// Three legacy ASes with Gao-Rexford relationships for valley tests:
/// as10 (origin), as20, as30 — with the relationships set per test.
fn valley_snapshot(edges: Vec<EdgeRel>, as30_path: Vec<Asn>) -> Snapshot {
    let p = pfx("10.0.0.0/24");
    Snapshot {
        nodes: vec![
            NodeState {
                name: "as10".into(),
                asn: Asn(10),
                originated: vec![p],
                device: Device::Legacy {
                    routes: vec![LegacyRoute {
                        prefix: p,
                        next: NextHop::Deliver,
                        as_path: vec![],
                        stale: false,
                    }],
                },
            },
            NodeState {
                name: "as20".into(),
                asn: Asn(20),
                originated: vec![],
                device: Device::Legacy {
                    routes: vec![LegacyRoute {
                        prefix: p,
                        next: NextHop::Via { peer: 0, up: true },
                        as_path: vec![Asn(10)],
                        stale: false,
                    }],
                },
            },
            NodeState {
                name: "as30".into(),
                asn: Asn(30),
                originated: vec![],
                device: Device::Legacy {
                    routes: vec![LegacyRoute {
                        prefix: p,
                        next: NextHop::Via { peer: 1, up: true },
                        as_path: as30_path,
                        stale: false,
                    }],
                },
            },
        ],
        edges,
        policy: PolicyKind::GaoRexford,
        control: ControlHealth::NoCluster,
        flow_priority: PRIO,
        intent_flows: vec![],
        sessions: vec![],
    }
}

#[test]
fn valley_path_is_caught() {
    // as20 is as30's customer AND as10's customer: the path
    // as30 -> as20 -> as10 descends (provider->customer) then climbs
    // (customer->provider) — a textbook valley.
    let snap = valley_snapshot(
        vec![
            EdgeRel {
                a: 0,
                b: 1,
                kind: RelKind::ProviderCustomer, // as10 provider of as20
            },
            EdgeRel {
                a: 2,
                b: 1,
                kind: RelKind::ProviderCustomer, // as30 provider of as20
            },
        ],
        vec![Asn(20), Asn(10)],
    );
    let report = Verifier::new().verify(&snap);
    assert_eq!(
        report.count_of(ViolationKind::Valley),
        1,
        "report:\n{}",
        report.render()
    );
    let v = &report.violations[0];
    assert_eq!(v.node, "as20", "the climbing hop starts at as20");
    assert!(v.witness.contains("as30") && v.witness.contains("as10"));
    assert!(v.witness.contains("valley"), "witness: {}", v.witness);
}

#[test]
fn up_then_down_path_is_valley_free() {
    // as20 is as30's provider and as10's provider: as30 -> as20 climbs,
    // as20 -> as10 descends. Perfectly valley-free.
    let snap = valley_snapshot(
        vec![
            EdgeRel {
                a: 1,
                b: 0,
                kind: RelKind::ProviderCustomer, // as20 provider of as10
            },
            EdgeRel {
                a: 1,
                b: 2,
                kind: RelKind::ProviderCustomer, // as20 provider of as30
            },
        ],
        vec![Asn(20), Asn(10)],
    );
    let report = Verifier::new().verify(&snap);
    assert!(report.ok(), "report:\n{}", report.render());
}

#[test]
fn two_peer_hops_violate_valley_freeness() {
    let snap = valley_snapshot(
        vec![
            EdgeRel {
                a: 0,
                b: 1,
                kind: RelKind::PeerPeer,
            },
            EdgeRel {
                a: 1,
                b: 2,
                kind: RelKind::PeerPeer,
            },
        ],
        vec![Asn(20), Asn(10)],
    );
    let report = Verifier::new().verify(&snap);
    assert_eq!(report.count_of(ViolationKind::Valley), 1);
}

#[test]
fn all_permit_policy_skips_valley_check() {
    let mut snap = valley_snapshot(
        vec![
            EdgeRel {
                a: 0,
                b: 1,
                kind: RelKind::PeerPeer,
            },
            EdgeRel {
                a: 1,
                b: 2,
                kind: RelKind::PeerPeer,
            },
        ],
        vec![Asn(20), Asn(10)],
    );
    snap.policy = PolicyKind::AllPermit;
    let report = Verifier::new().verify(&snap);
    assert!(report.ok(), "all-permit must not run the valley check");
}

#[test]
fn snapshot_json_round_trips() {
    let snap = clean_snapshot();
    let json = snap.to_json();
    let back = Snapshot::from_json(&json).expect("parses back");
    assert_eq!(snap, back);

    // Through text, too (the artifact path).
    let text = json.to_compact();
    let reparsed = bgpsdn_obs::Json::parse(&text).expect("valid JSON text");
    let back2 = Snapshot::from_json(&reparsed).expect("parses from text");
    assert_eq!(snap, back2);
}

#[test]
fn verifier_scratch_is_reusable_across_snapshots() {
    let mut verifier = Verifier::new();
    let clean = clean_snapshot();
    let mut looped = clean_snapshot();
    let Device::Member { rules, .. } = &mut looped.nodes[1].device else {
        panic!("sw20 is a member");
    };
    rules[0].action = RuleAction::Output(2);
    looped.intent_flows[0][0].1 = RuleAction::Output(2);

    assert!(verifier.verify(&clean).ok());
    assert_eq!(verifier.verify(&looped).count_of(ViolationKind::Loop), 1);
    assert!(verifier.verify(&clean).ok(), "scratch must fully reset");
}
