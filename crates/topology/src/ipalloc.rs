//! Automatic IP address assignment.
//!
//! The paper's framework "automatically assigns IP addresses and configures
//! network devices". This module implements the same bookkeeping: every AS
//! gets a /16 it originates, every router a stable loopback-style identity
//! address inside it, every inter-AS link a /30 transfer net, and hosts get
//! addresses inside their AS's prefix.
//!
//! Scheme (documented so configs are human-readable):
//! * AS with index `i` owns `10+⌊i/256⌋ . i mod 256 . 0.0/16` (so AS 0 →
//!   `10.0.0.0/16`, AS 256 → `11.0.0.0/16`, up to 1536 ASes in 10–15/8);
//! * the router identity/next-hop address is `.0.1` inside the AS prefix;
//! * host `h` of AS `i` is `.1.(h+1)` inside the AS prefix;
//! * link `k` gets `172.16.0.0/12` sliced into /30s: endpoints `.1`/`.2`.

use std::fmt;
use std::net::Ipv4Addr;

use bgpsdn_bgp::Prefix;

/// Errors from address exhaustion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// More ASes than the 10–15/8 scheme supports.
    TooManyAses(usize),
    /// More point-to-point links than 172.16/12 holds.
    TooManyLinks(usize),
    /// More hosts than the per-AS host range holds.
    TooManyHosts(usize),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::TooManyAses(n) => write!(f, "{n} ASes exceed the address plan (max 1536)"),
            AllocError::TooManyLinks(n) => write!(f, "{n} links exceed 172.16/12 capacity"),
            AllocError::TooManyHosts(n) => write!(f, "host index {n} exceeds per-AS range"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Maximum ASes the default plan supports.
pub const MAX_ASES: usize = 6 * 256;
/// Maximum /30 link subnets inside 172.16.0.0/12.
pub const MAX_LINKS: usize = 1 << 18;

/// The prefix an AS originates.
pub fn as_prefix(index: usize) -> Result<Prefix, AllocError> {
    if index >= MAX_ASES {
        return Err(AllocError::TooManyAses(index + 1));
    }
    let first = 10 + (index / 256) as u8;
    let second = (index % 256) as u8;
    Ok(Prefix::new(Ipv4Addr::new(first, second, 0, 0), 16).expect("aligned"))
}

/// The router identity / next-hop address of an AS.
pub fn router_ip(index: usize) -> Result<Ipv4Addr, AllocError> {
    Ok(as_prefix(index)?.nth(1))
}

/// The address of host `h` inside AS `index`'s prefix.
pub fn host_ip(index: usize, h: usize) -> Result<Ipv4Addr, AllocError> {
    if h >= 254 {
        return Err(AllocError::TooManyHosts(h));
    }
    Ok(as_prefix(index)?.nth(256 + 1 + h as u64))
}

/// The /30 transfer network of link `k`, with both endpoint addresses
/// `(subnet, addr_a, addr_b)`.
pub fn link_subnet(k: usize) -> Result<(Prefix, Ipv4Addr, Ipv4Addr), AllocError> {
    if k >= MAX_LINKS {
        return Err(AllocError::TooManyLinks(k + 1));
    }
    let base = u32::from(Ipv4Addr::new(172, 16, 0, 0)) + (k as u32) * 4;
    let net = Prefix::new(Ipv4Addr::from(base), 30).expect("aligned");
    Ok((net, net.nth(1), net.nth(2)))
}

/// A complete address plan for a topology of `n` ASes and `links` inter-AS
/// links.
#[derive(Debug, Clone)]
pub struct AddressPlan {
    /// Prefix originated by each AS.
    pub as_prefixes: Vec<Prefix>,
    /// Identity/next-hop address of each AS's router.
    pub router_ips: Vec<Ipv4Addr>,
    /// Transfer net and endpoint addresses per link, aligned with link order.
    pub link_nets: Vec<(Prefix, Ipv4Addr, Ipv4Addr)>,
}

impl AddressPlan {
    /// Build the full plan.
    pub fn build(ases: usize, links: usize) -> Result<AddressPlan, AllocError> {
        let mut as_prefixes = Vec::with_capacity(ases);
        let mut router_ips = Vec::with_capacity(ases);
        for i in 0..ases {
            as_prefixes.push(as_prefix(i)?);
            router_ips.push(router_ip(i)?);
        }
        let mut link_nets = Vec::with_capacity(links);
        for k in 0..links {
            link_nets.push(link_subnet(k)?);
        }
        Ok(AddressPlan {
            as_prefixes,
            router_ips,
            link_nets,
        })
    }

    /// Which AS index owns `ip`, per this plan (longest-prefix over the AS
    /// blocks; transfer nets return `None`).
    pub fn owner_of(&self, ip: Ipv4Addr) -> Option<usize> {
        self.as_prefixes.iter().position(|p| p.contains(ip))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_prefixes_disjoint_and_ordered() {
        let p0 = as_prefix(0).unwrap();
        let p1 = as_prefix(1).unwrap();
        let p256 = as_prefix(256).unwrap();
        assert_eq!(p0.to_string(), "10.0.0.0/16");
        assert_eq!(p1.to_string(), "10.1.0.0/16");
        assert_eq!(p256.to_string(), "11.0.0.0/16");
        assert!(!p0.covers(p1) && !p1.covers(p0));
    }

    #[test]
    fn exhaustion_is_an_error() {
        assert!(as_prefix(MAX_ASES - 1).is_ok());
        assert_eq!(
            as_prefix(MAX_ASES),
            Err(AllocError::TooManyAses(MAX_ASES + 1))
        );
        assert!(link_subnet(MAX_LINKS).is_err());
        assert!(host_ip(0, 254).is_err());
    }

    #[test]
    fn router_and_host_ips_inside_as_prefix() {
        let p = as_prefix(7).unwrap();
        let r = router_ip(7).unwrap();
        assert!(p.contains(r));
        assert_eq!(r, Ipv4Addr::new(10, 7, 0, 1));
        let h = host_ip(7, 0).unwrap();
        assert_eq!(h, Ipv4Addr::new(10, 7, 1, 1));
        assert!(p.contains(h));
        assert_ne!(r, h);
    }

    #[test]
    fn link_subnets_are_disjoint_30s() {
        let (n0, a0, b0) = link_subnet(0).unwrap();
        let (n1, a1, b1) = link_subnet(1).unwrap();
        assert_eq!(n0.to_string(), "172.16.0.0/30");
        assert_eq!(n1.to_string(), "172.16.0.4/30");
        assert_eq!(a0, Ipv4Addr::new(172, 16, 0, 1));
        assert_eq!(b0, Ipv4Addr::new(172, 16, 0, 2));
        assert!(n0.contains(a0) && n0.contains(b0));
        assert!(!n0.contains(a1) && !n0.contains(b1));
    }

    #[test]
    fn plan_builds_and_resolves_owners() {
        let plan = AddressPlan::build(20, 40).unwrap();
        assert_eq!(plan.as_prefixes.len(), 20);
        assert_eq!(plan.link_nets.len(), 40);
        assert_eq!(plan.owner_of(Ipv4Addr::new(10, 3, 9, 9)), Some(3));
        assert_eq!(plan.owner_of(Ipv4Addr::new(172, 16, 0, 1)), None);
        assert_eq!(plan.owner_of(Ipv4Addr::new(8, 8, 8, 8)), None);
    }

    #[test]
    fn plan_rejects_oversize() {
        assert!(AddressPlan::build(MAX_ASES + 1, 0).is_err());
    }
}
