//! Topology generators: the "artificial" topologies of the paper (clique,
//! line, ring, star, tree, grid) and standard random models for
//! Internet-like experiments (Erdős–Rényi, Barabási–Albert, Waxman).
//!
//! All randomized generators take a [`SimRng`] so topologies are part of the
//! deterministic experiment seed.

use bgpsdn_netsim::SimRng;

use crate::graph::Graph;

/// Complete graph on `n` vertices — the paper's Figure 2 topology (16-AS
/// clique).
pub fn clique(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(i, j);
        }
    }
    g
}

/// Path graph on `n` vertices.
pub fn line(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// Cycle on `n >= 3` vertices.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs >= 3 vertices");
    let mut g = line(n);
    g.add_edge(n - 1, 0);
    g
}

/// Star: vertex 0 is the hub.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs >= 2 vertices");
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(0, i);
    }
    g
}

/// Complete `k`-ary tree with `n` vertices, root 0.
pub fn tree(n: usize, k: usize) -> Graph {
    assert!(k >= 1, "arity must be >= 1");
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge((i - 1) / k, i);
    }
    g
}

/// `rows × cols` grid.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let at = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(at(r, c), at(r + 1, c));
            }
        }
    }
    g
}

/// Erdős–Rényi G(n, p). Not guaranteed connected; pair with
/// [`ensure_connected`] when the experiment needs a single component.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut SimRng) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.chance(p) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// Barabási–Albert preferential attachment: start from a small clique of
/// `m` vertices, attach each newcomer to `m` distinct existing vertices with
/// probability proportional to degree. Produces the heavy-tailed degree
/// distributions seen in AS-level graphs.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut SimRng) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut g = clique(m);
    // Repeated-endpoints list: vertex v appears deg(v) times.
    let mut lottery: Vec<usize> = Vec::new();
    for (a, b, _) in g.edges() {
        lottery.push(*a);
        lottery.push(*b);
    }
    // Degenerate m=1 start: single vertex, no edges; seed the lottery.
    if lottery.is_empty() {
        lottery.push(0);
    }
    for _ in m.max(1)..n {
        let v = g.add_node();
        let mut targets: Vec<usize> = Vec::with_capacity(m);
        let mut guard = 0;
        while targets.len() < m && guard < 10_000 {
            guard += 1;
            let t = *rng.choose(&lottery).expect("non-empty lottery");
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            g.add_edge(v, t);
            lottery.push(v);
            lottery.push(t);
        }
    }
    g
}

/// Waxman random geometric graph on the unit square:
/// `P(edge) = alpha * exp(-d / (beta * L))` with `L = sqrt(2)`.
/// Returns the graph and the vertex coordinates.
pub fn waxman(n: usize, alpha: f64, beta: f64, rng: &mut SimRng) -> (Graph, Vec<(f64, f64)>) {
    assert!(alpha > 0.0 && beta > 0.0);
    let coords: Vec<(f64, f64)> = (0..n).map(|_| (rng.unit_f64(), rng.unit_f64())).collect();
    let l = 2f64.sqrt();
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = coords[i].0 - coords[j].0;
            let dy = coords[i].1 - coords[j].1;
            let d = (dx * dx + dy * dy).sqrt();
            if rng.chance(alpha * (-d / (beta * l)).exp()) {
                g.add_edge(i, j);
            }
        }
    }
    (g, coords)
}

/// Add the minimum number of edges needed to make `g` connected: each
/// secondary component gets one random edge to the main component.
pub fn ensure_connected(g: &mut Graph, rng: &mut SimRng) {
    if g.node_count() == 0 {
        return;
    }
    loop {
        let (comp, count) = g.components();
        if count <= 1 {
            return;
        }
        // Pick one vertex from component 0 and one from another component.
        let zeros: Vec<usize> = (0..g.node_count()).filter(|&v| comp[v] == 0).collect();
        let others: Vec<usize> = (0..g.node_count()).filter(|&v| comp[v] == 1).collect();
        let a = *rng.choose(&zeros).expect("component 0 non-empty");
        let b = *rng.choose(&others).expect("component 1 non-empty");
        g.add_edge(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_counts() {
        let g = clique(16);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 16 * 15 / 2);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(1));
        for v in 0..16 {
            assert_eq!(g.degree(v), 15);
        }
    }

    #[test]
    fn line_ring_star() {
        let g = line(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.diameter(), Some(4));

        let g = ring(6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.diameter(), Some(3));
        assert!(g.degree(0) == 2);

        let g = star(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 6);
        assert_eq!(g.diameter(), Some(2));
    }

    #[test]
    fn tree_structure() {
        let g = tree(7, 2);
        assert_eq!(g.edge_count(), 6);
        assert!(g.is_connected());
        assert_eq!(g.degree(0), 2);
        // Leaves have degree 1.
        assert_eq!(g.degree(6), 1);
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(5));
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SimRng::seed_from_u64(1);
        let empty = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_density_plausible() {
        let mut rng = SimRng::seed_from_u64(2);
        let g = erdos_renyi(60, 0.3, &mut rng);
        let expected = (60.0 * 59.0 / 2.0) * 0.3;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "edges {got} vs {expected}"
        );
    }

    #[test]
    fn barabasi_albert_properties() {
        let mut rng = SimRng::seed_from_u64(3);
        let g = barabasi_albert(200, 2, &mut rng);
        assert_eq!(g.node_count(), 200);
        assert!(g.is_connected());
        // Heavy tail: the max degree must far exceed the median.
        let mut degs: Vec<usize> = (0..200).map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        assert!(
            degs[199] >= 3 * degs[100],
            "max {} median {}",
            degs[199],
            degs[100]
        );
    }

    #[test]
    fn barabasi_albert_m1_is_a_tree() {
        let mut rng = SimRng::seed_from_u64(4);
        let g = barabasi_albert(50, 1, &mut rng);
        assert_eq!(g.edge_count(), 49);
        assert!(g.is_connected());
    }

    #[test]
    fn waxman_generates_coords_and_some_edges() {
        let mut rng = SimRng::seed_from_u64(5);
        let (g, coords) = waxman(80, 0.9, 0.5, &mut rng);
        assert_eq!(coords.len(), 80);
        assert!(g.edge_count() > 0);
        assert!(coords
            .iter()
            .all(|&(x, y)| (0.0..1.0).contains(&x) && (0.0..1.0).contains(&y)));
    }

    #[test]
    fn ensure_connected_connects() {
        let mut rng = SimRng::seed_from_u64(6);
        let mut g = Graph::new(20); // no edges at all: 20 components
        ensure_connected(&mut g, &mut rng);
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 19, "minimum edges added");
    }

    #[test]
    fn generators_are_deterministic() {
        let g1 = barabasi_albert(100, 2, &mut SimRng::seed_from_u64(9));
        let g2 = barabasi_albert(100, 2, &mut SimRng::seed_from_u64(9));
        assert_eq!(g1.edges(), g2.edges());
    }
}
