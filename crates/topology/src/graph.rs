//! A small undirected graph library for topology work.
//!
//! Vertices are dense `usize` indices; parallel edges and self-loops are
//! rejected. Provides the traversals and shortest-path machinery the
//! framework needs: BFS, connected components, Dijkstra, eccentricity.

use std::collections::{BinaryHeap, VecDeque};

/// An undirected graph with optional edge weights.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// adjacency[v] = (neighbor, edge index)
    adj: Vec<Vec<(usize, usize)>>,
    edges: Vec<(usize, usize, f64)>,
}

impl Graph {
    /// An empty graph with `n` vertices.
    pub fn new(n: usize) -> Graph {
        Graph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Append a new vertex, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Add an undirected edge with weight 1. Returns its index.
    /// Panics on self-loops, out-of-range vertices or duplicate edges.
    pub fn add_edge(&mut self, a: usize, b: usize) -> usize {
        self.add_weighted_edge(a, b, 1.0)
    }

    /// Add an undirected weighted edge. Returns its index.
    pub fn add_weighted_edge(&mut self, a: usize, b: usize, w: f64) -> usize {
        assert!(a != b, "self-loop {a}");
        assert!(
            a < self.adj.len() && b < self.adj.len(),
            "vertex out of range"
        );
        assert!(
            !self.has_edge(a, b),
            "duplicate edge {a}-{b} (parallel edges unsupported)"
        );
        assert!(w.is_finite() && w >= 0.0, "bad weight {w}");
        let idx = self.edges.len();
        self.edges.push((a, b, w));
        self.adj[a].push((b, idx));
        self.adj[b].push((a, idx));
        idx
    }

    /// True when an edge `a`–`b` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].iter().any(|&(n, _)| n == b)
    }

    /// Neighbors of `v` with the connecting edge index, in insertion order.
    pub fn neighbors(&self, v: usize) -> &[(usize, usize)] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// All edges as `(a, b, weight)` in insertion order.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Endpoints of edge `e`.
    pub fn edge_endpoints(&self, e: usize) -> (usize, usize) {
        let (a, b, _) = self.edges[e];
        (a, b)
    }

    /// BFS hop distances from `src` (`None` = unreachable).
    pub fn bfs_distances(&self, src: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.adj.len()];
        let mut q = VecDeque::new();
        dist[src] = Some(0);
        q.push_back(src);
        while let Some(v) = q.pop_front() {
            let d = dist[v].expect("queued implies visited");
            for &(n, _) in &self.adj[v] {
                if dist[n].is_none() {
                    dist[n] = Some(d + 1);
                    q.push_back(n);
                }
            }
        }
        dist
    }

    /// Connected component id per vertex (ids dense from 0 in discovery
    /// order) plus the number of components.
    pub fn components(&self) -> (Vec<usize>, usize) {
        let mut comp = vec![usize::MAX; self.adj.len()];
        let mut count = 0;
        for start in 0..self.adj.len() {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut q = VecDeque::new();
            comp[start] = count;
            q.push_back(start);
            while let Some(v) = q.pop_front() {
                for &(n, _) in &self.adj[v] {
                    if comp[n] == usize::MAX {
                        comp[n] = count;
                        q.push_back(n);
                    }
                }
            }
            count += 1;
        }
        (comp, count)
    }

    /// True when every vertex is reachable from every other (and the graph
    /// is non-empty).
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return false;
        }
        self.components().1 == 1
    }

    /// Dijkstra shortest weighted distances and predecessor edges from `src`.
    /// Ties are broken toward the lower-indexed predecessor, so results are
    /// deterministic.
    pub fn dijkstra(&self, src: usize) -> ShortestPaths {
        #[derive(PartialEq)]
        struct Item(f64, usize);
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse for a min-heap; break distance ties by vertex index.
                other
                    .0
                    .partial_cmp(&self.0)
                    .expect("weights are finite")
                    .then(other.1.cmp(&self.1))
            }
        }

        let n = self.adj.len();
        let mut dist: Vec<f64> = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(Item(0.0, src));
        while let Some(Item(d, v)) = heap.pop() {
            if d > dist[v] {
                continue;
            }
            for &(nbr, e) in &self.adj[v] {
                let nd = d + self.edges[e].2;
                let better = nd < dist[nbr]
                    || (nd == dist[nbr] && prev[nbr].map(|pv| v < pv).unwrap_or(false));
                if better {
                    dist[nbr] = nd;
                    prev[nbr] = Some(v);
                    heap.push(Item(nd, nbr));
                }
            }
        }
        ShortestPaths { src, dist, prev }
    }

    /// Longest shortest-path hop count from `v` (`None` when the graph is
    /// disconnected from `v`'s perspective).
    pub fn eccentricity(&self, v: usize) -> Option<usize> {
        let d = self.bfs_distances(v);
        let mut max = 0;
        for x in d {
            max = max.max(x?);
        }
        Some(max)
    }

    /// Graph diameter in hops (`None` if disconnected or empty).
    pub fn diameter(&self) -> Option<usize> {
        (0..self.adj.len())
            .map(|v| self.eccentricity(v))
            .try_fold(0usize, |acc, e| e.map(|e| acc.max(e)))
    }
}

/// Result of a Dijkstra run.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// The source vertex.
    pub src: usize,
    /// Weighted distance per vertex (`f64::INFINITY` = unreachable).
    pub dist: Vec<f64>,
    /// Predecessor vertex on a shortest path.
    pub prev: Vec<Option<usize>>,
}

impl ShortestPaths {
    /// The shortest path from the source to `dst`, inclusive of both ends,
    /// or `None` when unreachable.
    pub fn path_to(&self, dst: usize) -> Option<Vec<usize>> {
        if self.dist[dst].is_infinite() {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != self.src {
            cur = self.prev[cur]?;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Next hop from the source toward `dst`.
    pub fn next_hop(&self, dst: usize) -> Option<usize> {
        let p = self.path_to(dst)?;
        p.get(1).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn construction_and_counts() {
        let mut g = Graph::new(3);
        assert_eq!(g.node_count(), 3);
        let v = g.add_node();
        assert_eq!(v, 3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.edge_endpoints(0), (0, 1));
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        Graph::new(2).add_edge(1, 1);
    }

    #[test]
    #[should_panic]
    fn duplicate_edge_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let (comp, n) = g.components();
        assert_eq!(n, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
        assert!(!g.is_connected());
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        assert!(g.is_connected());
        assert!(!Graph::new(0).is_connected());
    }

    #[test]
    fn dijkstra_weighted_prefers_cheap_detour() {
        let mut g = Graph::new(4);
        g.add_weighted_edge(0, 1, 10.0);
        g.add_weighted_edge(0, 2, 1.0);
        g.add_weighted_edge(2, 3, 1.0);
        g.add_weighted_edge(3, 1, 1.0);
        let sp = g.dijkstra(0);
        assert_eq!(sp.dist[1], 3.0);
        assert_eq!(sp.path_to(1), Some(vec![0, 2, 3, 1]));
        assert_eq!(sp.next_hop(1), Some(2));
        assert_eq!(sp.next_hop(0), None, "source has no next hop");
    }

    #[test]
    fn dijkstra_unreachable() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let sp = g.dijkstra(0);
        assert!(sp.dist[2].is_infinite());
        assert_eq!(sp.path_to(2), None);
    }

    #[test]
    fn dijkstra_tiebreak_is_deterministic() {
        // Two equal-cost paths 0-1-3 and 0-2-3: predecessor of 3 must be the
        // lower-indexed vertex 1.
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let sp = g.dijkstra(0);
        assert_eq!(sp.path_to(3), Some(vec![0, 1, 3]));
    }

    #[test]
    fn eccentricity_and_diameter() {
        let g = path_graph(5);
        assert_eq!(g.eccentricity(0), Some(4));
        assert_eq!(g.eccentricity(2), Some(2));
        assert_eq!(g.diameter(), Some(4));

        let mut disc = Graph::new(3);
        disc.add_edge(0, 1);
        assert_eq!(disc.diameter(), None);
    }
}
