//! BGP configuration templates.
//!
//! Turns an annotated [`AsGraph`] plus an [`AddressPlan`] into per-AS
//! [`RouterConfig`] skeletons (neighbors are wired by the framework once
//! simulator node/link ids exist) and renders human-readable Quagga-style
//! configuration text — the "BGP policy templates" and configuration
//! management the paper's framework generates for its Quagga daemons.

use bgpsdn_bgp::{PolicyMode, Relationship, RouterConfig, RouterId, TimingConfig};

use crate::ipalloc::{AddressPlan, AllocError};
use crate::relationships::AsGraph;

/// Everything needed to instantiate the routers of a topology except the
/// simulator's node/link ids.
#[derive(Debug, Clone)]
pub struct TopologyPlan {
    /// The annotated AS graph.
    pub as_graph: AsGraph,
    /// The address plan (AS prefixes, router ips, link transfer nets).
    pub addresses: AddressPlan,
    /// Per-AS router configuration skeleton (no neighbors yet).
    pub routers: Vec<RouterConfig>,
}

/// Build the plan: allocate addresses, derive identities and originated
/// prefixes, set mode and timing.
pub fn plan(
    as_graph: AsGraph,
    mode: PolicyMode,
    timing: TimingConfig,
) -> Result<TopologyPlan, AllocError> {
    let addresses = AddressPlan::build(as_graph.len(), as_graph.edges.len())?;
    let mut routers = Vec::with_capacity(as_graph.len());
    for i in 0..as_graph.len() {
        let mut cfg = RouterConfig::new(as_graph.asns[i]);
        cfg.router_id = RouterId::from_ip(addresses.router_ips[i]);
        cfg.next_hop = addresses.router_ips[i];
        cfg.mode = mode;
        cfg.timing = timing.clone();
        cfg.originate = vec![addresses.as_prefixes[i]];
        routers.push(cfg);
    }
    Ok(TopologyPlan {
        as_graph,
        addresses,
        routers,
    })
}

impl TopologyPlan {
    /// Relationship of AS `b` from AS `a`'s perspective (they must be
    /// adjacent).
    pub fn relationship(&self, a: usize, b: usize) -> Option<Relationship> {
        self.as_graph
            .edges
            .iter()
            .find(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
            .map(|e| e.relationship_from(a))
    }

    /// Render the Quagga-style `bgpd.conf` for AS index `i` — purely for
    /// inspection/export; the simulator consumes [`RouterConfig`] directly.
    pub fn render_quagga(&self, i: usize) -> String {
        let cfg = &self.routers[i];
        let mut out = String::new();
        out.push_str(&format!("! bgpd.conf for {} (generated)\n", cfg.asn));
        out.push_str("hostname bgpd\npassword zebra\n!\n");
        out.push_str(&format!("router bgp {}\n", cfg.asn.0));
        out.push_str(&format!(" bgp router-id {}\n", cfg.router_id));
        for p in &cfg.originate {
            out.push_str(&format!(" network {p}\n"));
        }
        for (k, e) in self.as_graph.edges.iter().enumerate() {
            let (me, them) = if e.a == i {
                (e.a, e.b)
            } else if e.b == i {
                (e.b, e.a)
            } else {
                continue;
            };
            let (_, ip_a, ip_b) = self.addresses.link_nets[k];
            // Endpoint a of the edge gets the .1 address.
            let their_ip = if me == e.a { ip_b } else { ip_a };
            let rel = e.relationship_from(me);
            let remote_asn = self.as_graph.asns[them];
            out.push_str(&format!(
                " neighbor {their_ip} remote-as {}\n",
                remote_asn.0
            ));
            out.push_str(&format!(
                " neighbor {their_ip} description {:?}-session to {}\n",
                rel, remote_asn
            ));
            out.push_str(&format!(
                " neighbor {their_ip} advertisement-interval {}\n",
                self.routers[me].timing.mrai.as_nanos() / 1_000_000_000
            ));
            if self.routers[me].mode == PolicyMode::GaoRexford {
                out.push_str(&format!(
                    " neighbor {their_ip} route-map rm-{}-in in\n neighbor {their_ip} route-map rm-{}-out out\n",
                    rel_slug(rel), rel_slug(rel)
                ));
            }
        }
        out.push_str("!\n");
        if self.routers[i].mode == PolicyMode::GaoRexford {
            out.push_str(
                "route-map rm-customer-in permit 10\n set local-preference 130\n!\n\
                 route-map rm-peer-in permit 10\n set local-preference 110\n!\n\
                 route-map rm-provider-in permit 10\n set local-preference 90\n!\n",
            );
        }
        out
    }
}

fn rel_slug(r: Relationship) -> &'static str {
    match r {
        Relationship::Customer => "customer",
        Relationship::Peer => "peer",
        Relationship::Provider => "provider",
        Relationship::Monitor => "monitor",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::relationships::{AsEdge, EdgeKind};
    use bgpsdn_bgp::Asn;
    use bgpsdn_netsim::SimDuration;

    fn sample_plan(mode: PolicyMode) -> TopologyPlan {
        let ag = AsGraph {
            asns: vec![Asn(65001), Asn(65002), Asn(65003)],
            edges: vec![
                AsEdge {
                    a: 0,
                    b: 1,
                    kind: EdgeKind::ProviderCustomer,
                },
                AsEdge {
                    a: 1,
                    b: 2,
                    kind: EdgeKind::PeerPeer,
                },
            ],
        };
        plan(ag, mode, TimingConfig::default()).unwrap()
    }

    #[test]
    fn plan_assigns_identity_and_origin() {
        let tp = sample_plan(PolicyMode::GaoRexford);
        assert_eq!(tp.routers.len(), 3);
        assert_eq!(tp.routers[0].asn, Asn(65001));
        assert_eq!(tp.routers[1].originate, vec![tp.addresses.as_prefixes[1]]);
        assert_eq!(tp.routers[2].router_id.as_ip(), tp.addresses.router_ips[2]);
        assert_eq!(tp.routers[0].mode, PolicyMode::GaoRexford);
    }

    #[test]
    fn relationship_lookup_is_directional() {
        let tp = sample_plan(PolicyMode::GaoRexford);
        // 0 is provider of 1: from 0, 1 is a customer.
        assert_eq!(tp.relationship(0, 1), Some(Relationship::Customer));
        assert_eq!(tp.relationship(1, 0), Some(Relationship::Provider));
        assert_eq!(tp.relationship(1, 2), Some(Relationship::Peer));
        assert_eq!(tp.relationship(0, 2), None);
    }

    #[test]
    fn quagga_rendering_contains_the_essentials() {
        let tp = sample_plan(PolicyMode::GaoRexford);
        let conf = tp.render_quagga(1);
        assert!(conf.contains("router bgp 65002"), "{conf}");
        assert!(conf.contains("network 10.1.0.0/16"), "{conf}");
        assert!(conf.contains("remote-as 65001"), "{conf}");
        assert!(conf.contains("remote-as 65003"), "{conf}");
        assert!(conf.contains("route-map rm-provider-in"), "{conf}");
        assert!(conf.contains("advertisement-interval 30"), "{conf}");
    }

    #[test]
    fn all_permit_render_has_no_route_maps() {
        let tp = sample_plan(PolicyMode::AllPermit);
        let conf = tp.render_quagga(0);
        assert!(!conf.contains("route-map"), "{conf}");
    }

    #[test]
    fn plan_scales_to_clique16() {
        let ag = AsGraph::all_peer(&gen::clique(16), 65000);
        let tp = plan(
            ag,
            PolicyMode::AllPermit,
            TimingConfig::with_mrai(SimDuration::from_secs(30)),
        )
        .unwrap();
        assert_eq!(tp.routers.len(), 16);
        assert_eq!(tp.addresses.link_nets.len(), 120);
        // Every router's config renders without panicking.
        for i in 0..16 {
            let c = tp.render_quagga(i);
            assert!(c.contains(&format!("router bgp {}", 65000 + i)));
        }
    }
}
