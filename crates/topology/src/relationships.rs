//! AS-level graphs annotated with business relationships.
//!
//! The paper's framework "configures network devices, including
//! customer-to-provider and peer-to-peer relationships". [`AsGraph`] is the
//! artifact that carries that information from topology generation / dataset
//! parsing into router configuration.

use bgpsdn_bgp::{Asn, Relationship};

use crate::graph::Graph;

/// Relationship annotation of one inter-AS link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// The `a` endpoint is the provider of the `b` endpoint.
    ProviderCustomer,
    /// Settlement-free peering.
    PeerPeer,
}

/// One annotated inter-AS link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsEdge {
    /// First endpoint (provider when `kind` is `ProviderCustomer`).
    pub a: usize,
    /// Second endpoint.
    pub b: usize,
    /// Relationship annotation.
    pub kind: EdgeKind,
}

impl AsEdge {
    /// The relationship of the *other* endpoint as seen from `from`
    /// (`from` must be one of the endpoints).
    pub fn relationship_from(&self, from: usize) -> Relationship {
        match self.kind {
            EdgeKind::PeerPeer => Relationship::Peer,
            EdgeKind::ProviderCustomer => {
                if from == self.a {
                    Relationship::Customer // the other end is my customer
                } else {
                    debug_assert_eq!(from, self.b);
                    Relationship::Provider
                }
            }
        }
    }

    /// The endpoint opposite `from`.
    pub fn other(&self, from: usize) -> usize {
        if from == self.a {
            self.b
        } else {
            debug_assert_eq!(from, self.b);
            self.a
        }
    }
}

/// An AS-level topology: vertices carry ASNs, edges carry relationships.
#[derive(Debug, Clone, Default)]
pub struct AsGraph {
    /// ASN per vertex index.
    pub asns: Vec<Asn>,
    /// Annotated links.
    pub edges: Vec<AsEdge>,
}

impl AsGraph {
    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// True when there are no ASes.
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// Sequential ASNs starting at `base` over an unannotated graph, all
    /// links peer-to-peer — the configuration of the paper's clique
    /// experiments.
    pub fn all_peer(g: &Graph, base_asn: u32) -> AsGraph {
        AsGraph {
            asns: (0..g.node_count())
                .map(|i| Asn(base_asn + i as u32))
                .collect(),
            edges: g
                .edges()
                .iter()
                .map(|&(a, b, _)| AsEdge {
                    a,
                    b,
                    kind: EdgeKind::PeerPeer,
                })
                .collect(),
        }
    }

    /// Degree-based relationship inference: for each link, the clearly
    /// higher-degree endpoint becomes the provider; endpoints with degree
    /// ratio below `peer_ratio` become peers. This is the standard cheap
    /// approximation of the Gao algorithm used when no measured relationship
    /// data is available.
    pub fn infer_by_degree(g: &Graph, base_asn: u32, peer_ratio: f64) -> AsGraph {
        assert!(peer_ratio >= 1.0);
        let edges = g
            .edges()
            .iter()
            .map(|&(a, b, _)| {
                let (da, db) = (g.degree(a) as f64, g.degree(b) as f64);
                let kind = if da / db <= peer_ratio && db / da <= peer_ratio {
                    EdgeKind::PeerPeer
                } else if da > db {
                    return AsEdge {
                        a,
                        b,
                        kind: EdgeKind::ProviderCustomer,
                    };
                } else {
                    return AsEdge {
                        a: b,
                        b: a,
                        kind: EdgeKind::ProviderCustomer,
                    };
                };
                AsEdge { a, b, kind }
            })
            .collect();
        AsGraph {
            asns: (0..g.node_count())
                .map(|i| Asn(base_asn + i as u32))
                .collect(),
            edges,
        }
    }

    /// The plain connectivity graph.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.asns.len());
        for e in &self.edges {
            g.add_edge(e.a, e.b);
        }
        g
    }

    /// Vertex index of an ASN.
    pub fn index_of(&self, asn: Asn) -> Option<usize> {
        self.asns.iter().position(|&a| a == asn)
    }

    /// Edges incident to `v`.
    pub fn edges_of(&self, v: usize) -> impl Iterator<Item = &AsEdge> {
        self.edges.iter().filter(move |e| e.a == v || e.b == v)
    }

    /// Customers of `v` (vertex indices).
    pub fn customers_of(&self, v: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|e| e.kind == EdgeKind::ProviderCustomer && e.a == v)
            .map(|e| e.b)
            .collect()
    }

    /// Providers of `v` (vertex indices).
    pub fn providers_of(&self, v: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|e| e.kind == EdgeKind::ProviderCustomer && e.b == v)
            .map(|e| e.a)
            .collect()
    }

    /// Stub ASes: no customers and exactly one non-peer uplink or degree 1.
    pub fn stubs(&self) -> Vec<usize> {
        let g = self.to_graph();
        (0..self.len())
            .filter(|&v| self.customers_of(v).is_empty() && g.degree(v) <= 1)
            .collect()
    }

    /// `(provider-customer, peer-peer)` edge counts.
    pub fn relationship_counts(&self) -> (usize, usize) {
        let pc = self
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::ProviderCustomer)
            .count();
        (pc, self.edges.len() - pc)
    }

    /// True when the provider hierarchy is acyclic (no AS is transitively
    /// its own provider) — a sanity requirement for Gao–Rexford stability.
    pub fn provider_hierarchy_acyclic(&self) -> bool {
        // Kahn's algorithm over the customer -> provider direction.
        let n = self.len();
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n]; // customer -> providers
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if e.kind == EdgeKind::ProviderCustomer {
                out[e.b].push(e.a);
                indeg[e.a] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &p in &out[v] {
                indeg[p] -= 1;
                if indeg[p] == 0 {
                    queue.push(p);
                }
            }
        }
        seen == n
    }

    /// Check a vertex-index path for valley-freeness under this graph's
    /// relationships: once the path goes down (provider→customer) or
    /// sideways (peer), it may never go up or sideways again.
    pub fn is_valley_free(&self, path: &[usize]) -> bool {
        let kind_between = |x: usize, y: usize| -> Option<Relationship> {
            self.edges.iter().find_map(|e| {
                if (e.a == x && e.b == y) || (e.a == y && e.b == x) {
                    // Relationship of y from x's perspective.
                    Some(e.relationship_from(x))
                } else {
                    None
                }
            })
        };
        let mut descending = false;
        for w in path.windows(2) {
            let step = match kind_between(w[0], w[1]) {
                Some(r) => r,
                None => return false, // not even a link
            };
            match step {
                // Moving to my provider = going up.
                Relationship::Provider => {
                    if descending {
                        return false;
                    }
                }
                // Peer step: allowed once at the top; after it we descend.
                Relationship::Peer => {
                    if descending {
                        return false;
                    }
                    descending = true;
                }
                // Moving to my customer = going down.
                Relationship::Customer => {
                    descending = true;
                }
                Relationship::Monitor => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn all_peer_clique() {
        let ag = AsGraph::all_peer(&gen::clique(4), 65000);
        assert_eq!(ag.len(), 4);
        assert_eq!(ag.relationship_counts(), (0, 6));
        assert_eq!(ag.asns[3], Asn(65003));
        assert!(ag.provider_hierarchy_acyclic());
    }

    #[test]
    fn edge_perspective() {
        let e = AsEdge {
            a: 0,
            b: 1,
            kind: EdgeKind::ProviderCustomer,
        };
        // 0 is the provider: from 0, 1 is a customer; from 1, 0 is a provider.
        assert_eq!(e.relationship_from(0), Relationship::Customer);
        assert_eq!(e.relationship_from(1), Relationship::Provider);
        assert_eq!(e.other(0), 1);
        let p = AsEdge {
            a: 0,
            b: 1,
            kind: EdgeKind::PeerPeer,
        };
        assert_eq!(p.relationship_from(0), Relationship::Peer);
        assert_eq!(p.relationship_from(1), Relationship::Peer);
    }

    #[test]
    fn degree_inference_on_star() {
        // Hub has degree 6, leaves degree 1: hub must be everyone's provider.
        let ag = AsGraph::infer_by_degree(&gen::star(7), 1, 2.0);
        assert_eq!(ag.relationship_counts(), (6, 0));
        assert_eq!(ag.customers_of(0).len(), 6);
        assert!(ag.providers_of(0).is_empty());
        assert_eq!(ag.providers_of(3), vec![0]);
        assert!(ag.provider_hierarchy_acyclic());
        let mut stubs = ag.stubs();
        stubs.sort_unstable();
        assert_eq!(stubs, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn degree_inference_equal_degrees_peer() {
        let ag = AsGraph::infer_by_degree(&gen::ring(5), 1, 2.0);
        assert_eq!(ag.relationship_counts(), (0, 5));
    }

    #[test]
    fn to_graph_roundtrip() {
        let g = gen::grid(3, 3);
        let ag = AsGraph::infer_by_degree(&g, 100, 1.5);
        let g2 = ag.to_graph();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(ag.index_of(Asn(104)), Some(4));
        assert_eq!(ag.index_of(Asn(999)), None);
    }

    #[test]
    fn acyclicity_detects_provider_loop() {
        let ag = AsGraph {
            asns: vec![Asn(1), Asn(2), Asn(3)],
            edges: vec![
                AsEdge {
                    a: 0,
                    b: 1,
                    kind: EdgeKind::ProviderCustomer,
                },
                AsEdge {
                    a: 1,
                    b: 2,
                    kind: EdgeKind::ProviderCustomer,
                },
                AsEdge {
                    a: 2,
                    b: 0,
                    kind: EdgeKind::ProviderCustomer,
                },
            ],
        };
        assert!(!ag.provider_hierarchy_acyclic());
    }

    #[test]
    fn valley_free_classification() {
        // 0 provider of 1, 0 provider of 2, 1 peer 2, 3 customer of 1.
        let ag = AsGraph {
            asns: vec![Asn(1), Asn(2), Asn(3), Asn(4)],
            edges: vec![
                AsEdge {
                    a: 0,
                    b: 1,
                    kind: EdgeKind::ProviderCustomer,
                },
                AsEdge {
                    a: 0,
                    b: 2,
                    kind: EdgeKind::ProviderCustomer,
                },
                AsEdge {
                    a: 1,
                    b: 2,
                    kind: EdgeKind::PeerPeer,
                },
                AsEdge {
                    a: 1,
                    b: 3,
                    kind: EdgeKind::ProviderCustomer,
                },
            ],
        };
        // up then down: 3 -> 1 -> 0 ... wait 3->1 is up (1 is provider of 3),
        // 1 -> 0 is up again, fine.
        assert!(ag.is_valley_free(&[3, 1, 0]));
        // up, peer, (end): fine.
        assert!(ag.is_valley_free(&[3, 1, 2]));
        // down then up is a valley: 0 -> 1 (down) -> ... 1 -> 0? use 0->1->0 invalid (repeat);
        // 0 -> 2 (down), 2 -> 1 (peer after descending) must fail.
        assert!(!ag.is_valley_free(&[0, 2, 1]));
        // peer then up must fail: 2 -> 1 (peer), 1 -> 0 (up).
        assert!(!ag.is_valley_free(&[2, 1, 0]));
        // down then down is fine: 0 -> 1 -> 3.
        assert!(ag.is_valley_free(&[0, 1, 3]));
        // non-adjacent hop is not valley-free.
        assert!(!ag.is_valley_free(&[3, 0]));
    }
}
