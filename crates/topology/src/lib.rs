//! # bgpsdn-topology — topology toolkit for multi-AS experiments
//!
//! The paper's framework lets an experimenter "easily create topologies
//! based on measured Internet data or theoretical models". This crate
//! supplies both halves:
//!
//! * [`gen`]: artificial topologies (clique, line, ring, star, tree, grid)
//!   and random models (Erdős–Rényi, Barabási–Albert, Waxman);
//! * [`caida`] / [`iplane`]: parsers for the CAIDA AS-relationship and
//!   iPlane Inter-PoP dataset formats, plus synthetic generators with the
//!   same statistical shape (the real datasets cannot be redistributed);
//! * [`relationships`]: AS graphs annotated with customer-provider /
//!   peer-peer relationships, inference, and valley-free checking;
//! * [`ipalloc`]: the automatic IP address plan;
//! * [`templates`]: per-AS router configuration skeletons and Quagga-style
//!   rendering.

#![warn(missing_docs)]

pub mod caida;
pub mod gen;
pub mod graph;
pub mod ipalloc;
pub mod iplane;
pub mod relationships;
pub mod templates;

pub use graph::{Graph, ShortestPaths};
pub use ipalloc::{AddressPlan, AllocError};
pub use relationships::{AsEdge, AsGraph, EdgeKind};
pub use templates::{plan, TopologyPlan};
