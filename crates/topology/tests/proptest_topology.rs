//! Property-based tests of topology invariants: generator structure,
//! dataset format roundtrips, relationship acyclicity and address-plan
//! disjointness.

use proptest::prelude::*;

use bgpsdn_netsim::SimRng;
use bgpsdn_topology::caida::{self, SynthesisParams};
use bgpsdn_topology::iplane::{self, PopSynthesisParams};
use bgpsdn_topology::{gen, AddressPlan, AsGraph};

proptest! {
    /// Barabási–Albert graphs are connected with exactly the expected node
    /// count and (for m=1 starts) tree-like edge counts.
    #[test]
    fn barabasi_albert_structure(seed in any::<u64>(), n in 3usize..150, m in 1usize..4) {
        prop_assume!(n > m);
        let g = gen::barabasi_albert(n, m, &mut SimRng::seed_from_u64(seed));
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.is_connected());
        // Each newcomer adds at most m edges, plus the initial clique.
        prop_assert!(g.edge_count() <= m * (m - 1) / 2 + (n - m) * m);
    }

    /// Erdős–Rényi respects the vertex count and never duplicates edges.
    #[test]
    fn erdos_renyi_structure(seed in any::<u64>(), n in 2usize..60, p in 0.0f64..1.0) {
        let g = gen::erdos_renyi(n, p, &mut SimRng::seed_from_u64(seed));
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.edge_count() <= n * (n - 1) / 2);
    }

    /// ensure_connected always yields a connected graph and adds exactly
    /// (components - 1) edges.
    #[test]
    fn ensure_connected_minimal(seed in any::<u64>(), n in 1usize..60, p in 0.0f64..0.2) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut g = gen::erdos_renyi(n, p, &mut rng);
        let before = g.edge_count();
        let (_, comps) = g.components();
        gen::ensure_connected(&mut g, &mut rng);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.edge_count(), before + comps - 1);
    }

    /// Degree-based relationship inference can never create a provider
    /// cycle: providers have strictly higher degree, so the hierarchy is a
    /// DAG by construction.
    #[test]
    fn degree_inference_is_acyclic(seed in any::<u64>(), n in 3usize..80, m in 1usize..3) {
        prop_assume!(n > m);
        let g = gen::barabasi_albert(n, m, &mut SimRng::seed_from_u64(seed));
        let ag = AsGraph::infer_by_degree(&g, 100, 1.2);
        prop_assert!(ag.provider_hierarchy_acyclic());
    }

    /// The CAIDA-style synthesizer always produces connected, acyclic
    /// hierarchies that roundtrip through the real file format.
    #[test]
    fn caida_synthesis_invariants(
        seed in any::<u64>(),
        tier1 in 2usize..5,
        mid in 2usize..10,
        stubs in 1usize..30,
    ) {
        let params = SynthesisParams {
            tier1,
            mid,
            stubs,
            ..Default::default()
        };
        let ag = caida::synthesize(&params, &mut SimRng::seed_from_u64(seed));
        prop_assert_eq!(ag.len(), tier1 + mid + stubs);
        prop_assert!(ag.provider_hierarchy_acyclic());
        prop_assert!(ag.to_graph().is_connected());
        let back = caida::parse(&caida::write(&ag)).expect("roundtrip");
        prop_assert_eq!(back.edges, ag.edges);
    }

    /// iPlane synthesis collapses to a connected AS graph and roundtrips.
    #[test]
    fn iplane_synthesis_invariants(seed in any::<u64>(), ases in 2usize..30) {
        let params = PopSynthesisParams {
            ases,
            ..Default::default()
        };
        let pg = iplane::synthesize(&params, &mut SimRng::seed_from_u64(seed));
        let back = iplane::parse(&iplane::write(&pg)).expect("roundtrip");
        prop_assert_eq!(back.links.len(), pg.links.len());
        let (g, as_list, lats) = pg.collapse_to_as_graph();
        prop_assert_eq!(as_list.len(), ases);
        prop_assert!(g.is_connected());
        prop_assert_eq!(lats.len(), g.edge_count());
    }

    /// Address plans never overlap: every AS prefix and link subnet is
    /// disjoint from all others.
    #[test]
    fn address_plan_disjoint(ases in 1usize..120, links in 0usize..200) {
        let plan = AddressPlan::build(ases, links).expect("plan");
        for (i, a) in plan.as_prefixes.iter().enumerate() {
            for b in &plan.as_prefixes[i + 1..] {
                prop_assert!(!a.covers(*b) && !b.covers(*a));
            }
            // Router ip lives inside its AS prefix and nowhere else.
            prop_assert!(a.contains(plan.router_ips[i]));
        }
        for (i, (n1, _, _)) in plan.link_nets.iter().enumerate() {
            for (n2, _, _) in &plan.link_nets[i + 1..] {
                prop_assert!(!n1.covers(*n2) && !n2.covers(*n1));
            }
        }
    }

    /// Dijkstra distances are consistent: every edge relaxation is tight
    /// (no edge can improve a computed distance).
    #[test]
    fn dijkstra_triangle_inequality(seed in any::<u64>(), n in 2usize..40, extra in 0usize..60) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut g = gen::line(n);
        for _ in 0..extra {
            let a = rng.below_usize(n);
            let b = rng.below_usize(n);
            if a != b && !g.has_edge(a, b) {
                g.add_weighted_edge(a, b, (rng.below(100) + 1) as f64);
            }
        }
        let sp = g.dijkstra(0);
        for &(a, b, w) in g.edges() {
            if sp.dist[a].is_finite() {
                prop_assert!(sp.dist[b] <= sp.dist[a] + w + 1e-9);
            }
            if sp.dist[b].is_finite() {
                prop_assert!(sp.dist[a] <= sp.dist[b] + w + 1e-9);
            }
        }
    }
}
