//! The BGP decision process (RFC 4271 §9.1.2.2).
//!
//! Pure functions over route candidates, so the selection logic is testable
//! in isolation from the router's event handling. All tie-breaks are
//! deterministic; the final resort is the peer index, which is stable per
//! configuration.

use std::cmp::Ordering;

use crate::attrs::PathAttributes;
use crate::rib::{PeerIdx, RouteSource};
use crate::types::RouterId;

/// Knobs of the decision process.
#[derive(Debug, Clone)]
pub struct DecisionConfig {
    /// LOCAL_PREF assumed when the attribute is absent.
    pub default_local_pref: u32,
    /// Compare MED between routes from *different* neighbor ASes too
    /// (`bgp always-compare-med`). Default off, per RFC.
    pub always_compare_med: bool,
    /// Treat a missing MED as this value (0 = best, Cisco default).
    pub missing_med: u32,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        DecisionConfig {
            default_local_pref: 100,
            always_compare_med: false,
            missing_med: 0,
        }
    }
}

/// One route candidate entering the decision process.
#[derive(Debug, Clone)]
pub struct Candidate<'a> {
    /// Attributes after import policy.
    pub attrs: &'a PathAttributes,
    /// Local or which peer.
    pub source: RouteSource,
    /// Advertising peer's router id (`RouterId(0)` for local).
    pub peer_router_id: RouterId,
}

impl<'a> Candidate<'a> {
    fn local_pref(&self, cfg: &DecisionConfig) -> u32 {
        self.attrs.local_pref.unwrap_or(cfg.default_local_pref)
    }

    fn med(&self, cfg: &DecisionConfig) -> u32 {
        self.attrs.med.unwrap_or(cfg.missing_med)
    }

    fn peer_idx(&self) -> PeerIdx {
        match self.source {
            RouteSource::Local => 0,
            RouteSource::Peer(i) => i,
        }
    }
}

/// Compare two candidates; `Ordering::Greater` means `a` is preferred.
pub fn compare(a: &Candidate<'_>, b: &Candidate<'_>, cfg: &DecisionConfig) -> Ordering {
    // 0. A locally originated route always wins (administrative weight).
    let a_local = a.source == RouteSource::Local;
    let b_local = b.source == RouteSource::Local;
    if a_local != b_local {
        return if a_local {
            Ordering::Greater
        } else {
            Ordering::Less
        };
    }

    // 1. Highest LOCAL_PREF.
    let lp = a.local_pref(cfg).cmp(&b.local_pref(cfg));
    if lp != Ordering::Equal {
        return lp;
    }

    // 2. Shortest AS_PATH.
    let len = b.attrs.as_path.path_len().cmp(&a.attrs.as_path.path_len());
    if len != Ordering::Equal {
        return len;
    }

    // 3. Lowest ORIGIN (IGP < EGP < Incomplete).
    let origin = b.attrs.origin.cmp(&a.attrs.origin);
    if origin != Ordering::Equal {
        return origin;
    }

    // 4. Lowest MED, only among routes from the same neighbor AS unless
    //    always_compare_med is set.
    let comparable = cfg.always_compare_med
        || (a.attrs.as_path.first_asn().is_some()
            && a.attrs.as_path.first_asn() == b.attrs.as_path.first_asn());
    if comparable {
        let med = b.med(cfg).cmp(&a.med(cfg));
        if med != Ordering::Equal {
            return med;
        }
    }

    // 5. (eBGP over iBGP — all sessions here are eBGP, skipped.)
    // 6. (lowest IGP metric to next hop — single-device ASes, skipped.)

    // 7. Lowest peer router id.
    let rid = b.peer_router_id.cmp(&a.peer_router_id);
    if rid != Ordering::Equal {
        return rid;
    }

    // 8. Lowest peer index (stands in for lowest neighbor address).
    b.peer_idx().cmp(&a.peer_idx())
}

/// Select the best candidate, or `None` when there are none.
/// Deterministic for any input order (comparison is a total order over the
/// candidates given distinct peer indices).
pub fn select<'a, I>(candidates: I, cfg: &DecisionConfig) -> Option<Candidate<'a>>
where
    I: IntoIterator<Item = Candidate<'a>>,
{
    candidates
        .into_iter()
        .max_by(|a, b| match compare(a, b, cfg) {
            // max_by keeps the *last* maximal element; invert equal-case to
            // keep the first for stability. compare never returns Equal for
            // distinct peers, but be safe.
            Ordering::Equal => Ordering::Greater,
            o => o,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AsPath, Origin};
    use std::net::Ipv4Addr;

    fn attrs(path: &[u32]) -> PathAttributes {
        let mut a = PathAttributes::originate(Ipv4Addr::new(10, 0, 0, 1));
        a.as_path = AsPath::from_seq(path.iter().copied());
        a
    }

    fn cand<'a>(attrs: &'a PathAttributes, peer: PeerIdx, rid: u32) -> Candidate<'a> {
        Candidate {
            attrs,
            source: RouteSource::Peer(peer),
            peer_router_id: RouterId(rid),
        }
    }

    #[test]
    fn local_pref_dominates_path_length() {
        let cfg = DecisionConfig::default();
        let mut short = attrs(&[1]);
        short.local_pref = Some(90);
        let mut long = attrs(&[1, 2, 3]);
        long.local_pref = Some(130);
        let a = cand(&short, 0, 1);
        let b = cand(&long, 1, 2);
        assert_eq!(compare(&b, &a, &cfg), Ordering::Greater);
        let best = select([a, b], &cfg).unwrap();
        assert_eq!(best.source, RouteSource::Peer(1));
    }

    #[test]
    fn shorter_path_wins_at_equal_pref() {
        let cfg = DecisionConfig::default();
        let short = attrs(&[1, 2]);
        let long = attrs(&[3, 4, 5]);
        let best = select([cand(&long, 0, 1), cand(&short, 1, 2)], &cfg).unwrap();
        assert_eq!(best.source, RouteSource::Peer(1));
    }

    #[test]
    fn origin_breaks_path_length_tie() {
        let cfg = DecisionConfig::default();
        let igp = attrs(&[1, 2]);
        let mut egp = attrs(&[3, 4]);
        egp.origin = Origin::Egp;
        let best = select([cand(&egp, 0, 1), cand(&igp, 1, 2)], &cfg).unwrap();
        assert_eq!(best.source, RouteSource::Peer(1));
    }

    #[test]
    fn med_compared_only_same_neighbor_as() {
        let cfg = DecisionConfig::default();
        // Same neighbor AS 7: lower MED wins.
        let mut m10 = attrs(&[7, 9]);
        m10.med = Some(10);
        let mut m5 = attrs(&[7, 8]);
        m5.med = Some(5);
        let best = select([cand(&m10, 0, 1), cand(&m5, 1, 2)], &cfg).unwrap();
        assert_eq!(best.source, RouteSource::Peer(1));

        // Different neighbor AS: MED ignored, falls through to router id.
        let mut x = attrs(&[7, 9]);
        x.med = Some(100);
        let mut y = attrs(&[8, 9]);
        y.med = Some(1);
        let best = select([cand(&x, 0, 1), cand(&y, 1, 2)], &cfg).unwrap();
        assert_eq!(best.source, RouteSource::Peer(0), "lower router id wins");
    }

    #[test]
    fn always_compare_med_flag() {
        let cfg = DecisionConfig {
            always_compare_med: true,
            ..Default::default()
        };
        let mut x = attrs(&[7, 9]);
        x.med = Some(100);
        let mut y = attrs(&[8, 9]);
        y.med = Some(1);
        let best = select([cand(&x, 0, 1), cand(&y, 1, 2)], &cfg).unwrap();
        assert_eq!(best.source, RouteSource::Peer(1));
    }

    #[test]
    fn missing_med_treated_as_best_by_default() {
        let cfg = DecisionConfig::default();
        let mut with_med = attrs(&[7]);
        with_med.med = Some(5);
        let without = attrs(&[7]);
        let best = select([cand(&with_med, 0, 1), cand(&without, 1, 2)], &cfg).unwrap();
        assert_eq!(best.source, RouteSource::Peer(1));
    }

    #[test]
    fn router_id_then_peer_idx_tiebreak() {
        let cfg = DecisionConfig::default();
        let a1 = attrs(&[1]);
        let a2 = attrs(&[2]);
        let best = select([cand(&a1, 0, 9), cand(&a2, 1, 3)], &cfg).unwrap();
        assert_eq!(best.source, RouteSource::Peer(1), "lower router id");

        // Equal router id (possible with relayed sessions): lower peer idx.
        let best = select([cand(&a2, 1, 5), cand(&a1, 0, 5)], &cfg).unwrap();
        assert_eq!(best.source, RouteSource::Peer(0));
    }

    #[test]
    fn local_route_beats_everything() {
        let cfg = DecisionConfig::default();
        let mut great = attrs(&[1]);
        great.local_pref = Some(1000);
        let local_attrs = attrs(&[]);
        let local = Candidate {
            attrs: &local_attrs,
            source: RouteSource::Local,
            peer_router_id: RouterId(0),
        };
        let best = select([cand(&great, 0, 1), local], &cfg).unwrap();
        assert_eq!(best.source, RouteSource::Local);
    }

    #[test]
    fn empty_input_selects_none() {
        let cfg = DecisionConfig::default();
        assert!(select(std::iter::empty(), &cfg).is_none());
    }

    #[test]
    fn selection_independent_of_input_order() {
        let cfg = DecisionConfig::default();
        let a = attrs(&[1, 2]);
        let b = attrs(&[3]);
        let c = attrs(&[4, 5, 6]);
        let c1 = [cand(&a, 0, 1), cand(&b, 1, 2), cand(&c, 2, 3)];
        let c2 = [cand(&c, 2, 3), cand(&a, 0, 1), cand(&b, 1, 2)];
        let best1 = select(c1, &cfg).unwrap();
        let best2 = select(c2, &cfg).unwrap();
        assert_eq!(best1.source, best2.source);
        assert_eq!(best1.source, RouteSource::Peer(1));
    }
}
