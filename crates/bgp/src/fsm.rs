//! BGP session finite-state machine (RFC 4271 §8, simplified).
//!
//! The simulator's links stand in for TCP, so the Connect/Active states
//! collapse: a session starts by sending OPEN directly. The handshake logic
//! is shared by the full router, the cluster BGP speaker and the route
//! collector via [`SessionHandshake`].

use std::fmt;

use crate::msg::{BgpMessage, Capability, NotifCode, NotificationMsg, OpenMsg};
use crate::types::{Asn, RouterId};

/// Session states (Connect/Active are folded into Idle because the simulated
/// transport connects instantly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// No session; nothing sent.
    Idle,
    /// We sent OPEN, awaiting the peer's OPEN.
    OpenSent,
    /// OPENs exchanged, awaiting KEEPALIVE.
    OpenConfirm,
    /// Session fully up; UPDATEs may flow.
    Established,
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SessionState::Idle => "Idle",
            SessionState::OpenSent => "OpenSent",
            SessionState::OpenConfirm => "OpenConfirm",
            SessionState::Established => "Established",
        })
    }
}

/// Events surfaced to the owner of a handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// The session reached Established; the peer's OPEN is attached.
    Established(OpenMsg),
    /// The session failed or was closed by the peer.
    Closed(CloseReason),
}

/// Why a session closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloseReason {
    /// Peer sent NOTIFICATION.
    PeerNotification(NotifCode),
    /// We detected an error and sent NOTIFICATION (attached for sending).
    LocalError(NotifCode),
    /// The underlying link went down.
    LinkDown,
    /// Hold timer expired.
    HoldExpired,
    /// Administrative reset.
    AdminReset,
}

/// Shared handshake driver. The owner feeds it messages and transport
/// events; it returns messages to send and state-change events.
#[derive(Debug, Clone)]
pub struct SessionHandshake {
    state: SessionState,
    my_asn: Asn,
    my_id: RouterId,
    hold_secs: u16,
    /// Expected remote ASN; `None` accepts any (collector behaviour).
    expect_asn: Option<Asn>,
    /// RFC 4724 restart time we advertise; 0 = no GR capability.
    gr_secs: u16,
    /// The peer's OPEN once received.
    remote_open: Option<OpenMsg>,
}

impl SessionHandshake {
    /// New handshake in Idle.
    pub fn new(my_asn: Asn, my_id: RouterId, hold_secs: u16, expect_asn: Option<Asn>) -> Self {
        SessionHandshake {
            state: SessionState::Idle,
            my_asn,
            my_id,
            hold_secs,
            expect_asn,
            gr_secs: 0,
            remote_open: None,
        }
    }

    /// Advertise the RFC 4724 graceful-restart capability with this restart
    /// time in subsequent OPENs (0 withdraws the capability).
    pub fn set_graceful_restart(&mut self, secs: u16) {
        self.gr_secs = secs;
    }

    /// The restart time we advertise (0 = GR disabled).
    pub fn graceful_restart_secs(&self) -> u16 {
        self.gr_secs
    }

    /// The peer's advertised RFC 4724 restart time, if its OPEN carried the
    /// capability. `None` means the peer doesn't do graceful restart.
    pub fn peer_graceful_restart_secs(&self) -> Option<u16> {
        self.remote_open
            .as_ref()?
            .capabilities
            .iter()
            .find_map(|c| match c {
                Capability::GracefulRestart { restart_time_secs } => Some(*restart_time_secs),
                _ => None,
            })
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// True when UPDATEs may flow.
    pub fn is_established(&self) -> bool {
        self.state == SessionState::Established
    }

    /// The peer's OPEN message, once the handshake has seen it.
    pub fn remote_open(&self) -> Option<&OpenMsg> {
        self.remote_open.as_ref()
    }

    /// Negotiated hold time: the smaller of both proposals (0 = disabled).
    pub fn negotiated_hold_secs(&self) -> u16 {
        match &self.remote_open {
            Some(o) => self.hold_secs.min(o.hold_time_secs),
            None => self.hold_secs,
        }
    }

    fn my_open(&self) -> BgpMessage {
        let mut open = OpenMsg::standard(self.my_asn, self.my_id, self.hold_secs);
        if self.gr_secs > 0 {
            open.capabilities.push(Capability::GracefulRestart {
                restart_time_secs: self.gr_secs,
            });
        }
        BgpMessage::Open(open)
    }

    /// Actively start the session. Returns messages to send.
    pub fn start(&mut self) -> Vec<BgpMessage> {
        match self.state {
            SessionState::Idle => {
                self.state = SessionState::OpenSent;
                vec![self.my_open()]
            }
            _ => vec![],
        }
    }

    /// Reset to Idle (link down / admin). The owner handles route cleanup.
    pub fn reset(&mut self) {
        self.state = SessionState::Idle;
        self.remote_open = None;
    }

    /// Feed an incoming message. Returns `(to_send, event)`.
    pub fn on_message(&mut self, msg: &BgpMessage) -> (Vec<BgpMessage>, Option<SessionEvent>) {
        match msg {
            BgpMessage::Open(open) => self.on_open(open),
            BgpMessage::Keepalive => self.on_keepalive(),
            BgpMessage::Notification(n) => {
                let was_idle = self.state == SessionState::Idle;
                self.reset();
                if was_idle {
                    (vec![], None)
                } else {
                    (
                        vec![],
                        Some(SessionEvent::Closed(CloseReason::PeerNotification(n.code))),
                    )
                }
            }
            BgpMessage::RouteRefresh { .. } if self.state == SessionState::Established => {
                // The owner handles re-advertisement; nothing FSM-level.
                (vec![], None)
            }
            BgpMessage::Update(_) | BgpMessage::RouteRefresh { .. } => {
                if self.state == SessionState::Established {
                    // Updates are the owner's business.
                    (vec![], None)
                } else {
                    // UPDATE before Established is an FSM error.
                    self.reset();
                    (
                        vec![BgpMessage::Notification(NotificationMsg {
                            code: NotifCode::FsmError,
                            subcode: 0,
                            data: vec![],
                        })],
                        Some(SessionEvent::Closed(CloseReason::LocalError(
                            NotifCode::FsmError,
                        ))),
                    )
                }
            }
        }
    }

    fn on_open(&mut self, open: &OpenMsg) -> (Vec<BgpMessage>, Option<SessionEvent>) {
        if let Some(expect) = self.expect_asn {
            if open.asn != expect {
                self.reset();
                return (
                    vec![BgpMessage::Notification(NotificationMsg {
                        code: NotifCode::OpenMessage,
                        subcode: 2, // Bad Peer AS
                        data: open.asn.0.to_be_bytes().to_vec(),
                    })],
                    Some(SessionEvent::Closed(CloseReason::LocalError(
                        NotifCode::OpenMessage,
                    ))),
                );
            }
        }
        match self.state {
            SessionState::Idle => {
                // Peer initiated: reply with our OPEN and confirm theirs.
                self.remote_open = Some(open.clone());
                self.state = SessionState::OpenConfirm;
                (vec![self.my_open(), BgpMessage::Keepalive], None)
            }
            SessionState::OpenSent => {
                self.remote_open = Some(open.clone());
                self.state = SessionState::OpenConfirm;
                (vec![BgpMessage::Keepalive], None)
            }
            SessionState::OpenConfirm | SessionState::Established => {
                // Duplicate OPEN: collision resolution simplified to an FSM
                // error (cannot occur with the simulated transport).
                self.reset();
                (
                    vec![BgpMessage::Notification(NotificationMsg {
                        code: NotifCode::FsmError,
                        subcode: 0,
                        data: vec![],
                    })],
                    Some(SessionEvent::Closed(CloseReason::LocalError(
                        NotifCode::FsmError,
                    ))),
                )
            }
        }
    }

    fn on_keepalive(&mut self) -> (Vec<BgpMessage>, Option<SessionEvent>) {
        match self.state {
            SessionState::OpenConfirm => {
                self.state = SessionState::Established;
                let open = self
                    .remote_open
                    .clone()
                    .expect("OpenConfirm implies remote OPEN seen");
                (vec![], Some(SessionEvent::Established(open)))
            }
            // In Established keepalives just refresh the hold timer (owner's
            // job); elsewhere they are ignored.
            _ => (vec![], None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SessionHandshake, SessionHandshake) {
        let a = SessionHandshake::new(Asn(1), RouterId(1), 90, Some(Asn(2)));
        let b = SessionHandshake::new(Asn(2), RouterId(2), 90, Some(Asn(1)));
        (a, b)
    }

    /// Drive both ends to completion, returning the events seen.
    fn run_handshake(
        a: &mut SessionHandshake,
        b: &mut SessionHandshake,
        a_starts: bool,
        b_starts: bool,
    ) -> (Vec<SessionEvent>, Vec<SessionEvent>) {
        let mut a_out: Vec<BgpMessage> = if a_starts { a.start() } else { vec![] };
        let mut b_out: Vec<BgpMessage> = if b_starts { b.start() } else { vec![] };
        let mut a_ev = vec![];
        let mut b_ev = vec![];
        for _ in 0..8 {
            if a_out.is_empty() && b_out.is_empty() {
                break;
            }
            let to_b = std::mem::take(&mut a_out);
            let to_a = std::mem::take(&mut b_out);
            for m in to_b {
                let (send, ev) = b.on_message(&m);
                b_out.extend(send);
                b_ev.extend(ev);
            }
            for m in to_a {
                let (send, ev) = a.on_message(&m);
                a_out.extend(send);
                a_ev.extend(ev);
            }
        }
        (a_ev, b_ev)
    }

    #[test]
    fn simultaneous_open_establishes_both() {
        let (mut a, mut b) = pair();
        let (a_ev, b_ev) = run_handshake(&mut a, &mut b, true, true);
        assert!(a.is_established());
        assert!(b.is_established());
        assert!(matches!(a_ev[0], SessionEvent::Established(_)));
        assert!(matches!(b_ev[0], SessionEvent::Established(_)));
    }

    #[test]
    fn one_sided_start_establishes_both() {
        let (mut a, mut b) = pair();
        let (a_ev, b_ev) = run_handshake(&mut a, &mut b, true, false);
        assert!(a.is_established(), "a: {:?}", a.state());
        assert!(b.is_established(), "b: {:?}", b.state());
        assert_eq!(a_ev.len(), 1);
        assert_eq!(b_ev.len(), 1);
    }

    #[test]
    fn wrong_asn_is_refused() {
        let mut a = SessionHandshake::new(Asn(1), RouterId(1), 90, Some(Asn(2)));
        let mut evil = SessionHandshake::new(Asn(666), RouterId(6), 90, None);
        let msgs = evil.start();
        let (send, ev) = a.on_message(&msgs[0]);
        assert!(matches!(
            ev,
            Some(SessionEvent::Closed(CloseReason::LocalError(
                NotifCode::OpenMessage
            )))
        ));
        assert!(matches!(send[0], BgpMessage::Notification(_)));
        assert_eq!(a.state(), SessionState::Idle);
    }

    #[test]
    fn collector_accepts_any_asn() {
        let mut collector = SessionHandshake::new(Asn(65535), RouterId(99), 0, None);
        let mut r = SessionHandshake::new(Asn(7), RouterId(7), 90, None);
        let (r_ev, c_ev) = run_handshake(&mut r, &mut collector, true, false);
        assert!(collector.is_established());
        assert!(r.is_established());
        assert!(!r_ev.is_empty() && !c_ev.is_empty());
    }

    #[test]
    fn negotiated_hold_is_minimum() {
        let (mut a, mut b) = pair();
        // a proposes 90; make b propose 30.
        b.hold_secs = 30;
        run_handshake(&mut a, &mut b, true, true);
        assert_eq!(a.negotiated_hold_secs(), 30);
        assert_eq!(b.negotiated_hold_secs(), 30);
    }

    #[test]
    fn graceful_restart_capability_is_exchanged() {
        let (mut a, mut b) = pair();
        a.set_graceful_restart(120);
        // b does not advertise GR.
        run_handshake(&mut a, &mut b, true, true);
        assert!(a.is_established() && b.is_established());
        assert_eq!(b.peer_graceful_restart_secs(), Some(120));
        assert_eq!(a.peer_graceful_restart_secs(), None);
        assert_eq!(a.graceful_restart_secs(), 120);
    }

    #[test]
    fn update_before_established_is_fsm_error() {
        let (mut a, _) = pair();
        let upd = BgpMessage::Update(crate::msg::UpdateMsg::default());
        let (send, ev) = a.on_message(&upd);
        assert!(matches!(
            ev,
            Some(SessionEvent::Closed(CloseReason::LocalError(
                NotifCode::FsmError
            )))
        ));
        assert!(matches!(send[0], BgpMessage::Notification(_)));
    }

    #[test]
    fn notification_closes_established_session() {
        let (mut a, mut b) = pair();
        run_handshake(&mut a, &mut b, true, true);
        let notif = BgpMessage::Notification(NotificationMsg {
            code: NotifCode::Cease,
            subcode: 0,
            data: vec![],
        });
        let (_, ev) = a.on_message(&notif);
        assert_eq!(
            ev,
            Some(SessionEvent::Closed(CloseReason::PeerNotification(
                NotifCode::Cease
            )))
        );
        assert_eq!(a.state(), SessionState::Idle);
    }

    #[test]
    fn start_is_idempotent() {
        let (mut a, _) = pair();
        assert_eq!(a.start().len(), 1);
        assert!(a.start().is_empty(), "second start sends nothing");
        assert_eq!(a.state(), SessionState::OpenSent);
    }

    #[test]
    fn reset_returns_to_idle() {
        let (mut a, mut b) = pair();
        run_handshake(&mut a, &mut b, true, true);
        a.reset();
        assert_eq!(a.state(), SessionState::Idle);
        assert!(a.remote_open().is_none());
        // Can re-establish after reset.
        b.reset();
        run_handshake(&mut a, &mut b, true, false);
        assert!(a.is_established() && b.is_established());
    }
}
