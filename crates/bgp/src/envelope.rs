//! Glue between BGP and the simulator's message type.
//!
//! BGP messages travel as [`BgpEnvelope`]s: real RFC 4271 wire bytes plus
//! logical source/destination node ids. Logical addressing matters because
//! the SDN cluster relays control-plane traffic: an external router's
//! physical neighbor may be a switch while the logical session endpoint is
//! the cluster BGP speaker answering *as* a member AS.
//!
//! The application's simulator message type implements [`BgpApp`] so that the
//! router, speaker and collector nodes (which are generic over it) can wrap
//! and unwrap their traffic.

use bgpsdn_netsim::{Cause, DataApp, DataPacket, Message, NodeId};

use crate::msg::BgpMessage;
use crate::types::Prefix;
use crate::wire::{CodecError, Writer};

/// A BGP message in flight: wire bytes plus logical endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpEnvelope {
    /// Logical sender (the session endpoint identity, not necessarily the
    /// physical neighbor).
    pub src: NodeId,
    /// Logical receiver.
    pub dst: NodeId,
    /// Encoded BGP message (header included).
    pub bytes: Vec<u8>,
    /// Causal lineage riding alongside the wire bytes (never encoded, never
    /// counted in [`BgpEnvelope::wire_len`]); [`Cause::NONE`] when causal
    /// tracing is off.
    pub cause: Cause,
}

impl BgpEnvelope {
    /// Encode `msg` into an envelope with no causal lineage.
    pub fn new(src: NodeId, dst: NodeId, msg: &BgpMessage) -> Self {
        BgpEnvelope {
            src,
            dst,
            bytes: msg.encode(),
            cause: Cause::NONE,
        }
    }

    /// Encode `msg` into an envelope carrying causal lineage.
    pub fn with_cause(src: NodeId, dst: NodeId, msg: &BgpMessage, cause: Cause) -> Self {
        BgpEnvelope {
            src,
            dst,
            bytes: msg.encode(),
            cause,
        }
    }

    /// [`with_cause`](Self::with_cause), encoding through a caller-owned
    /// scratch writer. Senders on the hot path (the router, the cluster
    /// speaker) keep one [`Writer`] per node, turning the two allocations
    /// per message of the plain constructors into a single exact-size
    /// `bytes` allocation.
    pub fn with_cause_scratch(
        src: NodeId,
        dst: NodeId,
        msg: &BgpMessage,
        cause: Cause,
        scratch: &mut Writer,
    ) -> Self {
        msg.encode_into(scratch);
        BgpEnvelope {
            src,
            dst,
            bytes: scratch.as_bytes().to_vec(),
            cause,
        }
    }

    /// Decode the carried message.
    pub fn decode(&self) -> Result<BgpMessage, CodecError> {
        BgpMessage::decode(&self.bytes)
    }

    /// Bytes on the wire: payload plus a nominal addressing overhead
    /// (IP + TCP headers).
    pub fn wire_len(&self) -> usize {
        self.bytes.len() + 40
    }
}

/// Experiment-driver commands injected into a router (the framework's
/// equivalents of the paper's "Mininet-BGP commands").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterCommand {
    /// Originate a prefix (like `network <prefix>` appearing at runtime).
    Announce(Prefix),
    /// Stop originating a prefix.
    Withdraw(Prefix),
    /// Administratively reset the session with the given logical peer.
    ResetSession(NodeId),
    /// Send a ROUTE-REFRESH request to the given peer (RFC 2918), asking it
    /// to re-advertise its full table.
    RequestRefresh(NodeId),
}

/// Implemented by the application's simulator message enum so BGP nodes can
/// speak over it.
pub trait BgpApp: Message + DataApp {
    /// Wrap an envelope.
    fn from_bgp(env: BgpEnvelope) -> Self;
    /// Unwrap an envelope.
    fn as_bgp(&self) -> Option<&BgpEnvelope>;
    /// Take the envelope out of the message, or give the message back —
    /// lets dispatch paths consume their payload without a defensive clone.
    fn into_bgp(self) -> Result<BgpEnvelope, Self>
    where
        Self: Sized;
    /// Wrap a driver command.
    fn from_command(cmd: RouterCommand) -> Self;
    /// Unwrap a driver command.
    fn as_command(&self) -> Option<&RouterCommand>;
    /// Take the driver command out of the message, or give the message back.
    fn into_command(self) -> Result<RouterCommand, Self>
    where
        Self: Sized;
}

/// A minimal message type for tests and single-protocol simulations that
/// carry only BGP traffic.
#[derive(Debug, Clone)]
pub enum BgpOnlyMsg {
    /// BGP traffic.
    Bgp(BgpEnvelope),
    /// Driver command.
    Command(RouterCommand),
    /// Data-plane packet.
    Data(DataPacket),
}

impl Message for BgpOnlyMsg {
    fn wire_len(&self) -> usize {
        match self {
            BgpOnlyMsg::Bgp(env) => env.wire_len(),
            BgpOnlyMsg::Command(_) => 0,
            BgpOnlyMsg::Data(p) => p.wire_len(),
        }
    }
}

impl DataApp for BgpOnlyMsg {
    fn from_data(p: DataPacket) -> Self {
        BgpOnlyMsg::Data(p)
    }
    fn as_data(&self) -> Option<&DataPacket> {
        match self {
            BgpOnlyMsg::Data(p) => Some(p),
            _ => None,
        }
    }
}

impl BgpApp for BgpOnlyMsg {
    fn from_bgp(env: BgpEnvelope) -> Self {
        BgpOnlyMsg::Bgp(env)
    }
    fn as_bgp(&self) -> Option<&BgpEnvelope> {
        match self {
            BgpOnlyMsg::Bgp(env) => Some(env),
            _ => None,
        }
    }
    fn into_bgp(self) -> Result<BgpEnvelope, Self> {
        match self {
            BgpOnlyMsg::Bgp(env) => Ok(env),
            other => Err(other),
        }
    }
    fn from_command(cmd: RouterCommand) -> Self {
        BgpOnlyMsg::Command(cmd)
    }
    fn as_command(&self) -> Option<&RouterCommand> {
        match self {
            BgpOnlyMsg::Command(c) => Some(c),
            _ => None,
        }
    }
    fn into_command(self) -> Result<RouterCommand, Self> {
        match self {
            BgpOnlyMsg::Command(c) => Ok(c),
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip() {
        let env = BgpEnvelope::new(NodeId(1), NodeId(2), &BgpMessage::Keepalive);
        assert_eq!(env.decode().unwrap(), BgpMessage::Keepalive);
        assert_eq!(env.wire_len(), 19 + 40);
    }

    #[test]
    fn bgp_only_msg_wraps() {
        let env = BgpEnvelope::new(NodeId(1), NodeId(2), &BgpMessage::Keepalive);
        let m = BgpOnlyMsg::from_bgp(env.clone());
        assert_eq!(m.as_bgp(), Some(&env));
        assert!(m.as_command().is_none());
        assert_eq!(m.wire_len(), env.wire_len());

        let c = BgpOnlyMsg::from_command(RouterCommand::Withdraw(crate::types::pfx("10.0.0.0/8")));
        assert!(c.as_bgp().is_none());
        assert!(matches!(c.as_command(), Some(RouterCommand::Withdraw(_))));
    }
}
