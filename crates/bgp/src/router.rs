//! The BGP router node — the framework's Quagga `bgpd` equivalent.
//!
//! One router emulates one AS (the paper's one-device-per-AS abstraction).
//! It runs the session FSM with every configured neighbor, maintains
//! Adj-RIB-In / Loc-RIB / Adj-RIB-Out, applies relationship policies and
//! route maps, paces advertisements with a jittered per-peer MRAI timer and
//! models per-UPDATE processing delay. All messages cross the simulated
//! links as real RFC 4271 wire bytes.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::marker::PhantomData;

use bgpsdn_netsim::{
    Activity, CausalPhase, Cause, Ctx, DataPacket, LinkId, Node, NodeId, ObsPrefix, PacketKind,
    SimDuration, SimTime, TimerClass, TimerToken, TraceCategory, TraceEvent,
};

use crate::attrs::PathAttributes;
use crate::config::{NeighborConfig, RouterConfig};
use crate::decision::{self, Candidate};
use crate::envelope::{BgpApp, BgpEnvelope, RouterCommand};
use crate::fsm::{CloseReason, SessionEvent, SessionHandshake, SessionState};
use crate::inline::InlineVec;
use crate::msg::{BgpMessage, NotifCode, NotificationMsg, UpdateMsg};
use crate::policy;
use crate::rib::{AdjRibIn, AdjRibOut, LocRib, LocRibEntry, PeerIdx, RibInEntry, RouteSource};
use crate::types::{Asn, Prefix, RouterId};
use crate::wire::Writer;

// Timer token layout: kind in the top byte, payload (peer index or
// processing sequence number) below.
const K_CONNECT: u64 = 1 << 56;
const K_MRAI: u64 = 2 << 56;
const K_KEEPALIVE: u64 = 3 << 56;
const K_HOLD: u64 = 4 << 56;
const K_PROCESS: u64 = 5 << 56;
const K_DAMP: u64 = 6 << 56;
const K_GRSTALE: u64 = 7 << 56;
const KIND_MASK: u64 = 0xFF << 56;

fn tok(kind: u64, payload: u64) -> TimerToken {
    debug_assert_eq!(payload & KIND_MASK, 0);
    TimerToken(kind | payload)
}

/// Telemetry-plane form of a prefix.
fn obs(p: Prefix) -> ObsPrefix {
    ObsPrefix::new(p.network_u32(), p.len())
}

fn obs_list(ps: &[Prefix]) -> Vec<ObsPrefix> {
    ps.iter().map(|&p| obs(p)).collect()
}

/// The prefix an UPDATE's causal events are attributed to (first announced,
/// else first withdrawn).
fn first_prefix(u: &UpdateMsg) -> Option<Prefix> {
    u.nlri.first().or_else(|| u.withdrawn.first()).copied()
}

/// Flattened AS path of a Loc-RIB entry, for [`TraceEvent::RibChange`].
fn obs_path(e: &LocRibEntry) -> Vec<u32> {
    e.attrs.as_path.flatten().into_iter().map(|a| a.0).collect()
}

/// Counters exposed for measurement and tests.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// UPDATE messages sent.
    pub updates_sent: u64,
    /// UPDATE messages received (before processing delay).
    pub updates_received: u64,
    /// Prefix announcements carried in sent UPDATEs.
    pub prefixes_announced: u64,
    /// Prefix withdrawals carried in sent UPDATEs.
    pub prefixes_withdrawn: u64,
    /// Routes rejected by AS_PATH loop detection.
    pub loop_rejected: u64,
    /// Routes rejected by import policy.
    pub policy_rejected: u64,
    /// NOTIFICATION messages sent.
    pub notifications_sent: u64,
    /// Sessions that reached Established (cumulative).
    pub sessions_established: u64,
    /// Sessions dropped for any reason (cumulative).
    pub sessions_dropped: u64,
    /// Best-path changes in the Loc-RIB.
    pub best_path_changes: u64,
    /// Envelopes that failed to decode.
    pub decode_errors: u64,
    /// Data packets forwarded toward a next hop.
    pub data_forwarded: u64,
    /// Data packets delivered locally (destination inside an owned prefix).
    pub data_delivered: u64,
    /// Echo replies generated.
    pub echo_replies: u64,
    /// Data packets dropped: no matching route.
    pub data_no_route: u64,
    /// Data packets dropped: TTL exhausted (forwarding loop guard).
    pub data_ttl_exceeded: u64,
    /// Candidates excluded from the decision by route-flap damping.
    pub damped_suppressed: u64,
    /// Sessions torn down by the maximum-prefix guardrail.
    pub max_prefix_teardowns: u64,
    /// Sessions re-established after having been down at least once.
    pub sessions_reestablished: u64,
    /// Routes retained as stale under RFC 4724 graceful restart.
    pub stale_retained: u64,
    /// Malformed UPDATEs downgraded to withdrawals per RFC 7606 instead of
    /// resetting the session.
    pub treat_as_withdraw: u64,
}

/// A queued outbound change for one peer and prefix.
#[derive(Debug, Clone)]
enum OutChange {
    Announce(PathAttributes),
    Withdraw,
}

/// Per-prefix causal lineage (only populated while causal tracing is on).
/// `current` is the cause any further propagation of this prefix descends
/// from; `last_rib` remembers the previous best-path-change event under the
/// same trigger so consecutive changes chain into a path-hunting round.
#[derive(Debug, Clone, Copy)]
struct PrefixCause {
    current: Cause,
    last_rib: Option<u64>,
}

#[derive(Debug)]
struct PeerRuntime {
    handshake: SessionHandshake,
    remote_router_id: RouterId,
    adj_out: AdjRibOut,
    pending: BTreeMap<Prefix, OutChange>,
    mrai_armed: bool,
    retries: u32,
    /// Ever reached Established (distinguishes first bring-up from a
    /// re-establishment for the `sessions_reestablished` counter).
    ever_established: bool,
    /// The peer's advertised RFC 4724 restart time, captured at session
    /// establishment (the handshake forgets its OPEN on reset).
    peer_gr_secs: u16,
    /// Graceful restart in progress: this peer's Adj-RIB-In routes are
    /// being retained as stale until the K_GRSTALE timer flushes whatever
    /// the restarted peer didn't re-announce.
    gr_stale: bool,
    /// When the peer's session came back during the GR window; routes
    /// (re)learned at or after this instant are fresh, earlier ones stale.
    gr_resumed_at: Option<SimTime>,
}

impl PeerRuntime {
    fn new(handshake: SessionHandshake) -> Self {
        PeerRuntime {
            handshake,
            remote_router_id: RouterId(0),
            adj_out: AdjRibOut::default(),
            pending: BTreeMap::new(),
            mrai_armed: false,
            retries: 0,
            ever_established: false,
            peer_gr_secs: 0,
            gr_stale: false,
            gr_resumed_at: None,
        }
    }
}

/// A BGP router attached to the simulator.
pub struct BgpRouter<M: BgpApp> {
    id: NodeId,
    cfg: RouterConfig,
    by_peer_node: HashMap<NodeId, PeerIdx>,
    peers: Vec<PeerRuntime>,
    adj_in: AdjRibIn,
    loc_rib: LocRib,
    originated: BTreeSet<Prefix>,
    in_seq: u64,
    in_queue: HashMap<u64, (PeerIdx, UpdateMsg, Cause)>,
    last_proc_due: SimTime,
    causes: HashMap<Prefix, PrefixCause>,
    damping: HashMap<(PeerIdx, Prefix), crate::damping::DampingState>,
    damp_seq: u64,
    damp_reuse: HashMap<u64, Prefix>,
    /// Encode scratch reused for every outgoing message, so the send path
    /// performs exactly one allocation per message (the envelope's
    /// exact-size byte vector).
    wire_scratch: Writer,
    stats: RouterStats,
    _m: PhantomData<fn() -> M>,
}

impl<M: BgpApp> BgpRouter<M> {
    /// Build a router for the given node id and configuration.
    pub fn new(id: NodeId, cfg: RouterConfig) -> Self {
        let mut by_peer_node = HashMap::new();
        let mut peers = Vec::with_capacity(cfg.neighbors.len());
        for (i, n) in cfg.neighbors.iter().enumerate() {
            let dup = by_peer_node.insert(n.peer, i);
            assert!(dup.is_none(), "duplicate neighbor {}", n.peer);
            let mut handshake = SessionHandshake::new(
                cfg.asn,
                cfg.router_id,
                cfg.timing.hold_time_secs,
                Some(n.remote_asn),
            );
            handshake.set_graceful_restart(cfg.timing.graceful_restart_secs);
            peers.push(PeerRuntime::new(handshake));
        }
        let originated: BTreeSet<Prefix> = cfg.originate.iter().copied().collect();
        BgpRouter {
            id,
            cfg,
            by_peer_node,
            peers,
            adj_in: AdjRibIn::default(),
            loc_rib: LocRib::default(),
            originated,
            in_seq: 0,
            in_queue: HashMap::new(),
            last_proc_due: SimTime::ZERO,
            causes: HashMap::new(),
            damping: HashMap::new(),
            damp_seq: 0,
            damp_reuse: HashMap::new(),
            wire_scratch: Writer::with_capacity(64),
            stats: RouterStats::default(),
            _m: PhantomData,
        }
    }

    /// Add a neighbor after construction. Node and link ids only exist once
    /// the simulator topology is built, so framework builders construct
    /// routers bare and attach neighbors before the simulation starts.
    /// Must not be called on a running router.
    pub fn add_neighbor(&mut self, n: NeighborConfig) {
        let idx = self.peers.len();
        let dup = self.by_peer_node.insert(n.peer, idx);
        assert!(dup.is_none(), "duplicate neighbor {}", n.peer);
        let mut handshake = SessionHandshake::new(
            self.cfg.asn,
            self.cfg.router_id,
            self.cfg.timing.hold_time_secs,
            Some(n.remote_asn),
        );
        handshake.set_graceful_restart(self.cfg.timing.graceful_restart_secs);
        self.peers.push(PeerRuntime::new(handshake));
        self.cfg.neighbors.push(n);
    }

    // ------------------------------------------------------------------
    // Inspection API (used by experiments, the collector and tests)
    // ------------------------------------------------------------------

    /// This router's ASN.
    pub fn asn(&self) -> Asn {
        self.cfg.asn
    }

    /// The configuration the router runs.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Mutable configuration access for pre-start tuning (route maps,
    /// per-neighbor knobs). Changing wiring-level fields (peers, links) on
    /// a running router is not supported.
    pub fn config_mut(&mut self) -> &mut RouterConfig {
        &mut self.cfg
    }

    /// The Loc-RIB (best routes).
    pub fn loc_rib(&self) -> &LocRib {
        &self.loc_rib
    }

    /// The Adj-RIB-In (accepted candidates).
    pub fn adj_in(&self) -> &AdjRibIn {
        &self.adj_in
    }

    /// Counters.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// Prefixes this router currently originates.
    pub fn originated(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.originated.iter().copied()
    }

    /// Session state toward a logical peer.
    pub fn session_state(&self, peer: NodeId) -> Option<SessionState> {
        self.by_peer_node
            .get(&peer)
            .map(|&i| self.peers[i].handshake.state())
    }

    /// The best route for a prefix, if any.
    pub fn best(&self, prefix: Prefix) -> Option<&LocRibEntry> {
        self.loc_rib.get(prefix)
    }

    /// The node data traffic to `prefix` is forwarded to (`None` when the
    /// prefix is local or unreachable).
    pub fn next_hop_node(&self, prefix: Prefix) -> Option<NodeId> {
        match self.loc_rib.get(prefix)?.source {
            RouteSource::Local => None,
            RouteSource::Peer(i) => Some(self.cfg.neighbors[i].peer),
        }
    }

    /// Data-plane forwarding decision for an address, mirroring
    /// `handle_data`: `None` = no route (blackhole), `Some(None)` = local
    /// delivery, `Some(Some(n))` = forward to node `n`. Used by the offline
    /// connectivity walker.
    pub fn forward_lookup(&self, ip: std::net::Ipv4Addr) -> Option<Option<NodeId>> {
        if self.originated.iter().any(|p| p.contains(ip)) {
            return Some(None);
        }
        match self.loc_rib.lpm(ip)?.1.source {
            RouteSource::Local => Some(None),
            RouteSource::Peer(i) => Some(Some(self.cfg.neighbors[i].peer)),
        }
    }

    /// What was last advertised to a logical peer for a prefix.
    pub fn advertised_to(&self, peer: NodeId, prefix: Prefix) -> Option<&PathAttributes> {
        let i = *self.by_peer_node.get(&peer)?;
        self.peers[i].adj_out.get(prefix)
    }

    // ------------------------------------------------------------------
    // Sending helpers
    // ------------------------------------------------------------------

    fn send_msg(&mut self, ctx: &mut Ctx<'_, M>, peer: PeerIdx, msg: &BgpMessage) {
        self.send_msg_caused(ctx, peer, msg, Cause::NONE);
    }

    fn send_msg_caused(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        peer: PeerIdx,
        msg: &BgpMessage,
        cause: Cause,
    ) {
        let (peer_node, link) = {
            let n = &self.cfg.neighbors[peer];
            (n.peer, n.link)
        };
        if let BgpMessage::Update(u) = msg {
            ctx.trace(TraceCategory::Msg, || TraceEvent::UpdateSent {
                peer: peer_node.0,
                announced: obs_list(&u.nlri),
                withdrawn: obs_list(&u.withdrawn),
            });
            self.stats.updates_sent += 1;
            self.stats.prefixes_announced += u.nlri.len() as u64;
            self.stats.prefixes_withdrawn += u.withdrawn.len() as u64;
            ctx.count("bgp.router.updates_sent", 1);
            ctx.report(Activity::UpdateSent);
        } else {
            ctx.trace(TraceCategory::Msg, || TraceEvent::Note {
                category: TraceCategory::Msg,
                text: format!("-> {peer_node} {msg}"),
            });
        }
        if matches!(msg, BgpMessage::Notification(_)) {
            self.stats.notifications_sent += 1;
        }
        let env =
            BgpEnvelope::with_cause_scratch(self.id, peer_node, msg, cause, &mut self.wire_scratch);
        ctx.send(link, M::from_bgp(env));
    }

    // ------------------------------------------------------------------
    // Causal lineage
    // ------------------------------------------------------------------

    /// Mint a trigger-root causal event and seed the lineage of `prefix`.
    /// No-op (returns 0) while causal tracing is off.
    fn mint_trigger(&mut self, ctx: &mut Ctx<'_, M>, prefix: Option<Prefix>) -> u64 {
        let id = ctx.causal_id();
        if id == 0 {
            return 0;
        }
        ctx.trace(TraceCategory::Causal, || TraceEvent::Causal {
            id,
            parents: vec![],
            trigger: id,
            hop: 0,
            phase: CausalPhase::Trigger,
            prefix: prefix.map(obs),
        });
        if let Some(p) = prefix {
            self.causes.insert(
                p,
                PrefixCause {
                    current: Cause {
                        trigger: id,
                        parent: id,
                        hop: 0,
                    },
                    last_rib: None,
                },
            );
        }
        id
    }

    /// Point the lineage of `prefix` at `cause` (the event that just made
    /// the prefix dirty), resetting the hunt chain when the trigger changed.
    fn set_prefix_cause(&mut self, prefix: Prefix, cause: Cause) {
        let e = self.causes.entry(prefix).or_insert(PrefixCause {
            current: cause,
            last_rib: None,
        });
        if e.current.trigger != cause.trigger {
            e.last_rib = None;
        }
        e.current = cause;
    }

    /// Mint the `mrai_wait` causal event for an outgoing UPDATE carrying
    /// `prefixes` and return the cause the envelope should ride with. The
    /// edge spans from the best-path change that queued the advertisement
    /// to the moment MRAI (plus grouping) lets it leave. Multi-prefix
    /// UPDATEs are attributed to their first prefix — a deterministic
    /// approximation, exact for the single-prefix paper scenarios.
    fn update_cause(&mut self, ctx: &mut Ctx<'_, M>, prefixes: &[Prefix]) -> Cause {
        let Some(&first) = prefixes.first() else {
            return Cause::NONE;
        };
        let Some(pc) = self.causes.get(&first) else {
            return Cause::NONE;
        };
        let cur = pc.current;
        if cur.is_none() {
            return Cause::NONE;
        }
        let id = ctx.causal_id();
        if id == 0 {
            return Cause::NONE;
        }
        ctx.trace(TraceCategory::Causal, || TraceEvent::Causal {
            id,
            parents: vec![cur.parent],
            trigger: cur.trigger,
            hop: cur.hop + 1,
            phase: CausalPhase::MraiWait,
            prefix: Some(obs(first)),
        });
        cur.step(id)
    }

    fn effective_mrai(&self, peer: PeerIdx) -> SimDuration {
        self.cfg.neighbors[peer]
            .mrai_override
            .unwrap_or(self.cfg.timing.mrai)
    }

    // ------------------------------------------------------------------
    // Session lifecycle
    // ------------------------------------------------------------------

    fn schedule_connect(&mut self, ctx: &mut Ctx<'_, M>, peer: PeerIdx, delay: SimDuration) {
        ctx.set_timer(delay, tok(K_CONNECT, peer as u64), TimerClass::Progress);
    }

    fn connect_now(&mut self, ctx: &mut Ctx<'_, M>, peer: PeerIdx) {
        if self.peers[peer].handshake.is_established() {
            return;
        }
        if !ctx.link_up(self.cfg.neighbors[peer].link) {
            return;
        }
        if self.peers[peer].handshake.state() != SessionState::Idle {
            if self.peers[peer].retries == 0 {
                // Bring-up race: the peer's OPEN already moved this
                // handshake along before our own staggered start fired.
                // Leave it to complete.
                return;
            }
            // A supervised reconnect found the previous attempt hanging
            // half-open: its OPEN (or the peer's reply) was lost —
            // typically sent while the peer was crashed. Without
            // intervention both ends can deadlock, one in OpenSent and
            // one in OpenConfirm, each waiting for a message the other
            // already sent. Tell the peer to discard any stale
            // half-state, then start over.
            let cease = BgpMessage::Notification(NotificationMsg {
                code: NotifCode::Cease,
                subcode: 0,
                data: vec![],
            });
            self.send_msg(ctx, peer, &cease);
            self.peers[peer].handshake.reset();
        }
        let msgs = self.peers[peer].handshake.start();
        for m in msgs {
            self.send_msg(ctx, peer, &m);
        }
        // A reconnect attempt supervises itself: if the handshake is still
        // not Established when the doubled backoff elapses, the timer
        // fires again and re-issues the OPEN. Initial bring-up (retries
        // == 0) stays unsupervised so a fault-free run arms no extra
        // timers. The delay is deterministic (no jitter draw) so a
        // supervision chain never perturbs the node's RNG stream.
        let retries = self.peers[peer].retries;
        if retries > 0 && retries < self.cfg.timing.max_connect_retries {
            self.peers[peer].retries += 1;
            let delay = self
                .cfg
                .timing
                .connect_retry
                .saturating_mul(1 << retries.min(6));
            self.schedule_connect(ctx, peer, delay);
        }
    }

    fn on_established(&mut self, ctx: &mut Ctx<'_, M>, peer: PeerIdx) {
        self.stats.sessions_established += 1;
        self.peers[peer].retries = 0;
        self.peers[peer].remote_router_id = self.peers[peer]
            .handshake
            .remote_open()
            .expect("established implies OPEN")
            .router_id;
        // Capture the peer's GR capability now: the handshake forgets its
        // OPEN on reset, but the retention decision happens after the reset.
        self.peers[peer].peer_gr_secs = self.peers[peer]
            .handshake
            .peer_graceful_restart_secs()
            .unwrap_or(0);
        ctx.report(Activity::SessionUp);
        let peer_node = self.cfg.neighbors[peer].peer;
        ctx.trace(TraceCategory::Session, || TraceEvent::SessionUp {
            peer: peer_node.0,
        });
        ctx.count("bgp.router.sessions_established", 1);
        if self.peers[peer].ever_established {
            self.stats.sessions_reestablished += 1;
            ctx.count("bgp.router.sessions_reestablished", 1);
        } else {
            self.peers[peer].ever_established = true;
        }
        // RFC 4724: the restarting peer is back inside the GR window. Mark
        // the resume instant — routes it re-announces from here on are
        // fresh; the K_GRSTALE timer flushes whatever stays older.
        if self.peers[peer].gr_stale {
            self.peers[peer].gr_resumed_at = Some(ctx.now());
            ctx.trace(TraceCategory::Session, || TraceEvent::Note {
                category: TraceCategory::Session,
                text: format!("graceful restart: {peer_node} resumed inside GR window"),
            });
        }
        // Arm keepalive/hold when negotiated.
        let hold = self.peers[peer].handshake.negotiated_hold_secs();
        if hold > 0 {
            let hold_d = SimDuration::from_secs(hold as u64);
            let ka = hold_d / self.cfg.timing.keepalive_divisor as u64;
            ctx.set_timer(ka, tok(K_KEEPALIVE, peer as u64), TimerClass::Maintenance);
            ctx.set_timer(hold_d, tok(K_HOLD, peer as u64), TimerClass::Maintenance);
        }
        // Initial table sync: enqueue the full export view.
        let prefixes: InlineVec<Prefix, 8> = self.loc_rib.iter().map(|(p, _)| p).collect();
        for p in prefixes {
            self.enqueue_export(peer, p);
        }
        self.maybe_flush(ctx, peer);
    }

    fn drop_session(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        peer: PeerIdx,
        reason: CloseReason,
        notify: Option<NotifCode>,
    ) {
        if let Some(code) = notify {
            let msg = BgpMessage::Notification(NotificationMsg {
                code,
                subcode: 0,
                data: vec![],
            });
            self.send_msg(ctx, peer, &msg);
        }
        let was_established = self.peers[peer].handshake.is_established();
        self.peers[peer].handshake.reset();
        self.cleanup_after_close(ctx, peer, was_established, &reason);
        // Schedule a retry with exponential backoff unless the link is gone
        // (link-up will restart the session).
        if !matches!(reason, CloseReason::LinkDown) {
            self.schedule_retry(ctx, peer);
        }
    }

    /// Exponential-backoff reconnect, bounded by `max_connect_retries`.
    fn schedule_retry(&mut self, ctx: &mut Ctx<'_, M>, peer: PeerIdx) {
        if self.peers[peer].retries >= self.cfg.timing.max_connect_retries {
            return;
        }
        self.peers[peer].retries += 1;
        let base = self
            .cfg
            .timing
            .connect_retry
            .saturating_mul(1 << (self.peers[peer].retries - 1).min(6));
        let delay = ctx.rng().jittered(base, 0.75, 1.0);
        self.schedule_connect(ctx, peer, delay);
    }

    // ------------------------------------------------------------------
    // Decision process and export
    // ------------------------------------------------------------------

    /// Re-run the decision process for `prefix`; on change, update the
    /// Loc-RIB and enqueue exports to every peer. Returns true on change.
    fn reselect(&mut self, ctx: &mut Ctx<'_, M>, prefix: Prefix) -> bool {
        let old_path: Option<Vec<u32>> = self.loc_rib.get(prefix).map(obs_path);
        let new_entry: Option<LocRibEntry> = if self.originated.contains(&prefix) {
            // A locally originated route always wins the decision process.
            Some(LocRibEntry {
                source: RouteSource::Local,
                attrs: PathAttributes::originate(self.cfg.next_hop),
                since: ctx.now(),
            })
        } else {
            // Route-flap damping: suppressed candidates sit out the
            // decision; a reuse timer re-runs the selection once the
            // earliest suppressed candidate decays past the reuse threshold.
            let now = ctx.now();
            let mut suppressed_count = 0u64;
            let mut earliest_reuse: Option<bgpsdn_netsim::SimDuration> = None;
            let damping_map = &mut self.damping;
            let dcfg = self.cfg.damping.as_ref();
            let cands = self.adj_in.candidates(prefix).filter(|(i, _)| {
                let Some(dcfg) = dcfg else { return true };
                let suppressed = damping_map.get_mut(&(*i, prefix)).is_some_and(|st| {
                    if !st.is_suppressed(dcfg, now) {
                        return false;
                    }
                    suppressed_count += 1;
                    if let Some(eta) = st.reuse_eta(dcfg, now) {
                        earliest_reuse = Some(match earliest_reuse {
                            Some(cur) if cur <= eta => cur,
                            _ => eta,
                        });
                    }
                    true
                });
                !suppressed
            });
            let cands = cands.map(|(i, e)| Candidate {
                attrs: &e.attrs,
                source: RouteSource::Peer(i),
                peer_router_id: e.peer_router_id,
            });
            let span = ctx.span();
            let selected = decision::select(cands, &self.cfg.decision).map(|best| LocRibEntry {
                source: best.source,
                attrs: best.attrs.clone(),
                since: now,
            });
            ctx.end_span("bgp.decision.select_wall_ns", span);
            self.stats.damped_suppressed += suppressed_count;
            if suppressed_count > 0 {
                ctx.count("bgp.router.damped_suppressed", suppressed_count);
            }
            if let Some(eta) = earliest_reuse {
                let seq = self.damp_seq;
                self.damp_seq += 1;
                self.damp_reuse.insert(seq, prefix);
                ctx.set_timer(
                    eta + bgpsdn_netsim::SimDuration::from_millis(1),
                    tok(K_DAMP, seq),
                    TimerClass::Progress,
                );
            }
            selected
        };

        let changed = match new_entry {
            Some(entry) => self.loc_rib.set(prefix, entry),
            None => self.loc_rib.clear(prefix).is_some(),
        };
        if changed {
            self.stats.best_path_changes += 1;
            ctx.report(Activity::RibChange);
            ctx.report(Activity::FibChange);
            ctx.count("bgp.router.best_path_changes", 1);
            let new_path = self.loc_rib.get(prefix).map(obs_path);
            ctx.trace(TraceCategory::Route, || TraceEvent::RibChange {
                prefix: obs(prefix),
                old_path,
                new_path,
            });
            // Causal: every best-path change is a hunt step. The previous
            // change under the same trigger is an extra (and earlier, hence
            // critical-path-preferred) parent, so the edge spans one full
            // hunting round including any damping hold-down.
            if let Some(pc) = self.causes.get_mut(&prefix) {
                let cur = pc.current;
                if !cur.is_none() {
                    let id = ctx.causal_id();
                    if id != 0 {
                        let mut parents = vec![cur.parent];
                        if let Some(prev) = pc.last_rib {
                            if prev != cur.parent {
                                parents.insert(0, prev);
                            }
                        }
                        let hop = cur.hop + 1;
                        ctx.trace(TraceCategory::Causal, || TraceEvent::Causal {
                            id,
                            parents,
                            trigger: cur.trigger,
                            hop,
                            phase: CausalPhase::HuntStep,
                            prefix: Some(obs(prefix)),
                        });
                        pc.current = Cause {
                            trigger: cur.trigger,
                            parent: id,
                            hop,
                        };
                        pc.last_rib = Some(id);
                    }
                }
            }
            for peer in 0..self.peers.len() {
                self.enqueue_export(peer, prefix);
            }
        }
        changed
    }

    /// Compute the desired advertisement of `prefix` toward `peer` and queue
    /// the delta.
    fn enqueue_export(&mut self, peer: PeerIdx, prefix: Prefix) {
        if !self.peers[peer].handshake.is_established() {
            return;
        }
        let desired = self.export_attrs(peer, prefix);
        let change = match desired {
            Some(attrs) => OutChange::Announce(attrs),
            None => OutChange::Withdraw,
        };
        self.peers[peer].pending.insert(prefix, change);
    }

    /// The attributes `prefix` would be exported with toward `peer`
    /// (policy + transformation), or `None` when it must not be exported.
    fn export_attrs(&self, peer: PeerIdx, prefix: Prefix) -> Option<PathAttributes> {
        let entry = self.loc_rib.get(prefix)?;
        // Optional sender-side loop avoidance (off by default: Quagga sends
        // the route back and lets the peer's AS_PATH check discard it, which
        // is what keeps path exploration MRAI-paced).
        if self.cfg.timing.sender_side_loop_detection && entry.source == RouteSource::Peer(peer) {
            return None;
        }
        let n: &NeighborConfig = &self.cfg.neighbors[peer];
        let learned_from =
            policy::source_relationship(entry.source, |i| self.cfg.neighbors[i].relationship);
        if !policy::export_allowed(self.cfg.mode, learned_from, n.relationship) {
            return None;
        }
        let mut attrs = entry.attrs.clone();
        // eBGP: LOCAL_PREF is local, MED is not propagated beyond the
        // originating hop.
        attrs.local_pref = None;
        if entry.source != RouteSource::Local {
            attrs.med = None;
        }
        attrs.as_path.prepend(self.cfg.asn);
        attrs.next_hop = self.cfg.next_hop;
        match &n.export_map {
            Some(map) => map.apply(prefix, &attrs, self.cfg.asn),
            None => Some(attrs),
        }
    }

    /// Flush pending changes to one peer, respecting MRAI.
    fn maybe_flush(&mut self, ctx: &mut Ctx<'_, M>, peer: PeerIdx) {
        if !self.peers[peer].handshake.is_established() || self.peers[peer].pending.is_empty() {
            return;
        }
        if self.peers[peer].mrai_armed {
            if !self.cfg.timing.mrai_on_withdrawals {
                // Explicit withdrawals bypass the advertisement interval.
                let withdraw_prefixes: InlineVec<Prefix, 8> = self.peers[peer]
                    .pending
                    .iter()
                    .filter(|(_, c)| matches!(c, OutChange::Withdraw))
                    .map(|(p, _)| *p)
                    .collect();
                let mut really: Vec<Prefix> = Vec::new();
                for p in withdraw_prefixes {
                    self.peers[peer].pending.remove(&p);
                    if self.peers[peer].adj_out.withdraw(p) {
                        really.push(p);
                    }
                }
                if !really.is_empty() {
                    let cause = self.update_cause(ctx, &really);
                    let msg = BgpMessage::Update(UpdateMsg::withdraw(really));
                    self.send_msg_caused(ctx, peer, &msg, cause);
                }
            }
            return;
        }
        let sent = self.send_pending(ctx, peer);
        let mrai = self.effective_mrai(peer);
        if sent && !mrai.is_zero() {
            self.peers[peer].mrai_armed = true;
            let (lo, hi) = self.cfg.timing.mrai_jitter;
            let delay = ctx.rng().jittered(mrai, lo, hi);
            ctx.set_timer(delay, tok(K_MRAI, peer as u64), TimerClass::Progress);
        }
    }

    /// Send everything pending toward a peer. Returns true when at least one
    /// UPDATE went out.
    fn send_pending(&mut self, ctx: &mut Ctx<'_, M>, peer: PeerIdx) -> bool {
        let pending = std::mem::take(&mut self.peers[peer].pending);
        let mut withdraws: Vec<Prefix> = Vec::new();
        // Group announcements sharing identical attributes into one UPDATE.
        let mut groups: Vec<(PathAttributes, Vec<Prefix>)> = Vec::new();
        for (prefix, change) in pending {
            match change {
                OutChange::Withdraw => {
                    if self.peers[peer].adj_out.withdraw(prefix) {
                        withdraws.push(prefix);
                    }
                }
                OutChange::Announce(attrs) => {
                    if self.peers[peer].adj_out.advertise(prefix, attrs.clone()) {
                        match groups.iter_mut().find(|(a, _)| *a == attrs) {
                            Some((_, ps)) => ps.push(prefix),
                            None => groups.push((attrs, vec![prefix])),
                        }
                    }
                }
            }
        }
        let mut sent = false;
        if !withdraws.is_empty() {
            let cause = self.update_cause(ctx, &withdraws);
            let msg = BgpMessage::Update(UpdateMsg::withdraw(withdraws));
            self.send_msg_caused(ctx, peer, &msg, cause);
            sent = true;
        }
        for (attrs, prefixes) in groups {
            let cause = self.update_cause(ctx, &prefixes);
            let msg = BgpMessage::Update(UpdateMsg::announce(prefixes, attrs));
            self.send_msg_caused(ctx, peer, &msg, cause);
            sent = true;
        }
        sent
    }

    fn flush_all(&mut self, ctx: &mut Ctx<'_, M>) {
        for peer in 0..self.peers.len() {
            self.maybe_flush(ctx, peer);
        }
    }

    // ------------------------------------------------------------------
    // Inbound processing
    // ------------------------------------------------------------------

    fn process_update(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        peer: PeerIdx,
        upd: UpdateMsg,
        cause: Cause,
    ) {
        if !self.peers[peer].handshake.is_established() {
            return; // session dropped while the update sat in the CPU queue
        }
        ctx.report(Activity::UpdateReceived);
        // Causal: the dequeue closes the CPU processing-delay edge.
        let mut cur = Cause::NONE;
        if !cause.is_none() {
            let id = ctx.causal_id();
            if id != 0 {
                let first = first_prefix(&upd);
                ctx.trace(TraceCategory::Causal, || TraceEvent::Causal {
                    id,
                    parents: vec![cause.parent],
                    trigger: cause.trigger,
                    hop: cause.hop + 1,
                    phase: CausalPhase::ProcDelay,
                    prefix: first.map(obs),
                });
                cur = cause.step(id);
            }
        }
        let mut affected: BTreeSet<Prefix> = BTreeSet::new();

        for p in &upd.withdrawn {
            if self.adj_in.remove(*p, peer) {
                affected.insert(*p);
                if let Some(dcfg) = &self.cfg.damping {
                    let now = ctx.now();
                    self.damping
                        .entry((peer, *p))
                        .or_insert_with(|| crate::damping::DampingState::new(now))
                        .on_withdrawal(dcfg, now);
                }
            }
        }

        if let Some(attrs) = &upd.attrs {
            let rel = self.cfg.neighbors[peer].relationship;
            let looped = attrs.as_path.contains(self.cfg.asn);
            let import_ok = policy::import_allowed(rel) && !looped;
            for p in &upd.nlri {
                if !import_ok {
                    if looped {
                        self.stats.loop_rejected += 1;
                    } else {
                        self.stats.policy_rejected += 1;
                    }
                    // A rejected route still implicitly replaces (removes)
                    // any earlier accepted one from this peer.
                    if self.adj_in.remove(*p, peer) {
                        affected.insert(*p);
                    }
                    continue;
                }
                let mut eff = attrs.clone();
                if let Some(lp) = policy::import_local_pref(self.cfg.mode, rel) {
                    eff.local_pref = Some(lp);
                }
                let accepted = match &self.cfg.neighbors[peer].import_map {
                    Some(map) => map.apply(*p, &eff, self.cfg.asn),
                    None => Some(eff),
                };
                match accepted {
                    Some(final_attrs) => {
                        let existed = self.adj_in.get(*p, peer).is_some();
                        let entry = RibInEntry {
                            attrs: final_attrs,
                            peer_router_id: self.peers[peer].remote_router_id,
                            learned_at: ctx.now(),
                        };
                        if self.adj_in.insert(*p, peer, entry) {
                            affected.insert(*p);
                            // A replacement announcement is a flap too.
                            if existed {
                                if let Some(dcfg) = &self.cfg.damping {
                                    let now = ctx.now();
                                    self.damping
                                        .entry((peer, *p))
                                        .or_insert_with(|| crate::damping::DampingState::new(now))
                                        .on_attribute_change(dcfg, now);
                                }
                            }
                        }
                    }
                    None => {
                        self.stats.policy_rejected += 1;
                        if self.adj_in.remove(*p, peer) {
                            affected.insert(*p);
                        }
                    }
                }
            }
        }

        // Maximum-prefix guardrail (like Quagga's `maximum-prefix`): a peer
        // exceeding its allowance is cut off with a Cease notification.
        if let Some(limit) = self.cfg.neighbors[peer].max_prefixes {
            if self.adj_in.count_for_peer(peer) > limit {
                self.stats.max_prefix_teardowns += 1;
                ctx.trace(TraceCategory::Session, || TraceEvent::Note {
                    category: TraceCategory::Session,
                    text: format!("max-prefix limit {limit} exceeded; tearing session down"),
                });
                self.drop_session(ctx, peer, CloseReason::AdminReset, Some(NotifCode::Cease));
                return;
            }
        }

        if !cur.is_none() {
            for &p in &affected {
                self.set_prefix_cause(p, cur);
            }
        }
        for p in affected {
            self.reselect(ctx, p);
        }
        self.flush_all(ctx);
    }

    fn handle_command(&mut self, ctx: &mut Ctx<'_, M>, cmd: &RouterCommand) {
        match cmd {
            RouterCommand::Announce(p) => {
                self.originated.insert(*p);
                ctx.report(Activity::PrefixOriginated);
                ctx.trace(TraceCategory::Experiment, || TraceEvent::Note {
                    category: TraceCategory::Experiment,
                    text: format!("announce {p}"),
                });
                self.mint_trigger(ctx, Some(*p));
                self.reselect(ctx, *p);
                self.flush_all(ctx);
            }
            RouterCommand::Withdraw(p) => {
                self.originated.remove(p);
                ctx.report(Activity::PrefixWithdrawn);
                ctx.trace(TraceCategory::Experiment, || TraceEvent::Note {
                    category: TraceCategory::Experiment,
                    text: format!("withdraw {p}"),
                });
                self.mint_trigger(ctx, Some(*p));
                self.reselect(ctx, *p);
                self.flush_all(ctx);
            }
            RouterCommand::ResetSession(peer_node) => {
                if let Some(&i) = self.by_peer_node.get(peer_node) {
                    self.drop_session(ctx, i, CloseReason::AdminReset, Some(NotifCode::Cease));
                }
            }
            RouterCommand::RequestRefresh(peer_node) => {
                if let Some(&i) = self.by_peer_node.get(peer_node) {
                    if self.peers[i].handshake.is_established() {
                        self.send_msg(ctx, i, &BgpMessage::RouteRefresh { afi: 1, safi: 1 });
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Forward (or locally deliver) a data packet by FIB longest-prefix
    /// match. The AS device answers echo requests for any address inside a
    /// prefix it originates (hosts live "inside" the single-device AS).
    pub(crate) fn handle_data(&mut self, ctx: &mut Ctx<'_, M>, pkt: DataPacket) {
        // Local delivery?
        if self.originated.iter().any(|p| p.contains(pkt.dst)) {
            self.stats.data_delivered += 1;
            if pkt.kind == PacketKind::EchoRequest {
                self.stats.echo_replies += 1;
                let reply = pkt.reply_to();
                self.route_packet_out(ctx, reply);
            }
            return;
        }
        match pkt.decrement_ttl() {
            Some(fwd) => self.route_packet_out(ctx, fwd),
            None => {
                self.stats.data_ttl_exceeded += 1;
                ctx.trace(TraceCategory::Msg, || TraceEvent::Note {
                    category: TraceCategory::Msg,
                    text: format!("TTL exceeded for {} -> {}", pkt.src, pkt.dst),
                });
            }
        }
    }

    fn route_packet_out(&mut self, ctx: &mut Ctx<'_, M>, pkt: DataPacket) {
        match self.loc_rib.lpm(pkt.dst) {
            Some((_, entry)) => match entry.source {
                RouteSource::Local => {
                    // Destination inside one of our prefixes but not
                    // originated anymore: treat as delivered.
                    self.stats.data_delivered += 1;
                }
                RouteSource::Peer(i) => {
                    let link = self.cfg.neighbors[i].link;
                    self.stats.data_forwarded += 1;
                    ctx.send(link, M::from_data(pkt));
                }
            },
            None => {
                self.stats.data_no_route += 1;
                ctx.trace(TraceCategory::Msg, || TraceEvent::Note {
                    category: TraceCategory::Msg,
                    text: format!("no route for {} -> {}", pkt.src, pkt.dst),
                });
            }
        }
    }

    /// Originate a data packet from this AS (used by ping drivers).
    pub fn send_packet(&mut self, ctx: &mut Ctx<'_, M>, pkt: DataPacket) {
        self.route_packet_out(ctx, pkt);
    }

    fn handle_bgp(&mut self, ctx: &mut Ctx<'_, M>, env: &BgpEnvelope) {
        if env.dst != self.id {
            // Not for us: routers do not relay control traffic.
            return;
        }
        let peer = match self.by_peer_node.get(&env.src) {
            Some(&i) => i,
            None => return, // unknown speaker; ignore
        };
        let msg = match env.decode() {
            Ok(m) => m,
            Err(e) => {
                self.stats.decode_errors += 1;
                ctx.trace(TraceCategory::Session, || TraceEvent::Note {
                    category: TraceCategory::Session,
                    text: format!("decode error: {e}"),
                });
                // RFC 7606: a malformed UPDATE whose framing is intact
                // (only attribute content is bad) is downgraded to a
                // withdrawal of every prefix it mentioned — the session
                // survives. Broken framing still resets the session.
                if self.peers[peer].handshake.is_established() {
                    if let Some(upd) = UpdateMsg::salvage_withdraw(&env.bytes) {
                        self.stats.treat_as_withdraw += 1;
                        ctx.count("bgp.router.treat_as_withdraw", 1);
                        let src = env.src;
                        let n = upd.withdrawn.len();
                        ctx.trace(TraceCategory::Session, || TraceEvent::Note {
                            category: TraceCategory::Session,
                            text: format!(
                                "treat-as-withdraw: malformed UPDATE from {src} downgraded to {n} withdrawals"
                            ),
                        });
                        self.refresh_hold(ctx, peer);
                        self.queue_update(ctx, peer, upd, env.cause);
                        return;
                    }
                }
                self.drop_session(
                    ctx,
                    peer,
                    CloseReason::LocalError(NotifCode::MessageHeader),
                    Some(NotifCode::MessageHeader),
                );
                return;
            }
        };
        if let BgpMessage::Update(u) = &msg {
            ctx.trace(TraceCategory::Msg, || TraceEvent::UpdateDelivered {
                peer: env.src.0,
                announced: obs_list(&u.nlri),
                withdrawn: obs_list(&u.withdrawn),
            });
        } else {
            ctx.trace(TraceCategory::Msg, || TraceEvent::Note {
                category: TraceCategory::Msg,
                text: format!("<- {} {}", env.src, msg),
            });
        }

        // Any traffic refreshes the hold timer on an established session.
        self.refresh_hold(ctx, peer);

        if let BgpMessage::Update(upd) = msg {
            if self.peers[peer].handshake.is_established() {
                self.queue_update(ctx, peer, upd, env.cause);
                return;
            }
            // Fall through to the FSM, which treats early UPDATE as an error.
            let was = self.peers[peer].handshake.is_established();
            let (to_send, event) = self.peers[peer]
                .handshake
                .on_message(&BgpMessage::Update(upd));
            self.finish_fsm_step(ctx, peer, was, to_send, event);
            return;
        }

        if matches!(msg, BgpMessage::RouteRefresh { .. })
            && self.peers[peer].handshake.is_established()
        {
            // RFC 2918: re-send our full Adj-RIB-Out on this session.
            self.peers[peer].adj_out.clear();
            let prefixes: InlineVec<Prefix, 8> = self.loc_rib.iter().map(|(p, _)| p).collect();
            for p in prefixes {
                self.enqueue_export(peer, p);
            }
            self.maybe_flush(ctx, peer);
            return;
        }

        let was = self.peers[peer].handshake.is_established();
        let (to_send, event) = self.peers[peer].handshake.on_message(&msg);
        self.finish_fsm_step(ctx, peer, was, to_send, event);
    }

    /// Re-arm the hold timer on an established session (any received
    /// traffic proves the peer alive).
    fn refresh_hold(&mut self, ctx: &mut Ctx<'_, M>, peer: PeerIdx) {
        if self.peers[peer].handshake.is_established() {
            let hold = self.peers[peer].handshake.negotiated_hold_secs();
            if hold > 0 {
                ctx.set_timer(
                    SimDuration::from_secs(hold as u64),
                    tok(K_HOLD, peer as u64),
                    TimerClass::Maintenance,
                );
            }
        }
    }

    /// Queue an accepted UPDATE behind the modelled CPU processing delay
    /// (FIFO per router), minting the link-propagation causal edge.
    fn queue_update(&mut self, ctx: &mut Ctx<'_, M>, peer: PeerIdx, upd: UpdateMsg, cause: Cause) {
        self.stats.updates_received += 1;
        let (lo, hi) = self.cfg.timing.processing_delay;
        let delay = ctx.rng().duration_between(lo, hi);
        let mut due = ctx.now() + delay;
        let floor = self.last_proc_due + SimDuration::from_nanos(1);
        if due < floor {
            due = floor;
        }
        self.last_proc_due = due;
        // Causal: the delivery closes the link-propagation edge; the
        // queue entry inherits the lineage for the processing edge.
        let mut qcause = Cause::NONE;
        if !cause.is_none() {
            let id = ctx.causal_id();
            if id != 0 {
                let first = first_prefix(&upd);
                ctx.trace(TraceCategory::Causal, || TraceEvent::Causal {
                    id,
                    parents: vec![cause.parent],
                    trigger: cause.trigger,
                    hop: cause.hop + 1,
                    phase: CausalPhase::LinkProp,
                    prefix: first.map(obs),
                });
                qcause = cause.step(id);
            }
        }
        let seq = self.in_seq;
        self.in_seq += 1;
        self.in_queue.insert(seq, (peer, upd, qcause));
        ctx.set_timer_at(due, tok(K_PROCESS, seq), TimerClass::Progress);
    }

    /// End of the RFC 4724 restart window: flush every route from `peer`
    /// that wasn't re-announced since the session resumed (all of them if
    /// the peer never came back), then reconverge.
    fn gr_stale_flush(&mut self, ctx: &mut Ctx<'_, M>, peer: PeerIdx) {
        if !self.peers[peer].gr_stale {
            return;
        }
        let cutoff = self.peers[peer].gr_resumed_at.unwrap_or(SimTime::MAX);
        self.peers[peer].gr_stale = false;
        self.peers[peer].gr_resumed_at = None;
        let affected = self.adj_in.flush_stale(peer, cutoff);
        let peer_node = self.cfg.neighbors[peer].peer;
        let flushed = affected.len();
        ctx.trace(TraceCategory::Session, || TraceEvent::Note {
            category: TraceCategory::Session,
            text: format!(
                "graceful restart: window over; flushed {flushed} stale routes from {peer_node}"
            ),
        });
        if affected.is_empty() {
            return;
        }
        // Causal: the end of the GR window is a trigger of its own — the
        // convergence it forces was deferred, not caused, by the crash.
        let tid = self.mint_trigger(ctx, None);
        if tid != 0 {
            for &p in &affected {
                self.causes.insert(
                    p,
                    PrefixCause {
                        current: Cause {
                            trigger: tid,
                            parent: tid,
                            hop: 0,
                        },
                        last_rib: None,
                    },
                );
            }
        }
        for p in affected {
            self.reselect(ctx, p);
        }
        self.flush_all(ctx);
    }

    /// True when the best route for `prefix` is a stale GR-retained path:
    /// learned from a peer whose session is in the graceful-restart window
    /// and not (yet) re-announced since the peer resumed. The verifier
    /// downgrades such routes from "blackhole" to "consistent but stale".
    pub fn route_is_gr_stale(&self, prefix: Prefix) -> bool {
        let Some(entry) = self.loc_rib.get(prefix) else {
            return false;
        };
        let RouteSource::Peer(i) = entry.source else {
            return false;
        };
        let pr = &self.peers[i];
        if !pr.gr_stale {
            return false;
        }
        match pr.gr_resumed_at {
            None => true,
            Some(t) => self.adj_in.get(prefix, i).is_none_or(|e| e.learned_at < t),
        }
    }

    fn finish_fsm_step(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        peer: PeerIdx,
        was_established: bool,
        to_send: Vec<BgpMessage>,
        event: Option<SessionEvent>,
    ) {
        for m in to_send {
            self.send_msg(ctx, peer, &m);
        }
        match event {
            Some(SessionEvent::Established(_)) => self.on_established(ctx, peer),
            Some(SessionEvent::Closed(reason)) => {
                // The handshake already reset itself; run the cleanup that
                // drop_session does for state above the FSM, then retry.
                self.cleanup_after_close(ctx, peer, was_established, &reason);
                self.schedule_retry(ctx, peer);
            }
            None => {}
        }
    }

    /// Tear down per-peer routing state after the FSM returned to Idle.
    fn cleanup_after_close(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        peer: PeerIdx,
        was_established: bool,
        reason: &CloseReason,
    ) {
        self.peers[peer].pending.clear();
        self.peers[peer].adj_out.clear();
        self.peers[peer].mrai_armed = false;
        ctx.cancel_timer(tok(K_MRAI, peer as u64));
        ctx.cancel_timer(tok(K_KEEPALIVE, peer as u64));
        ctx.cancel_timer(tok(K_HOLD, peer as u64));
        if !was_established {
            return;
        }
        self.stats.sessions_dropped += 1;
        ctx.report(Activity::SessionDown);
        ctx.count("bgp.router.sessions_dropped", 1);
        let peer_node = self.cfg.neighbors[peer].peer;
        ctx.trace(TraceCategory::Session, || TraceEvent::SessionDown {
            peer: peer_node.0,
            reason: format!("{reason:?}"),
        });
        // RFC 4724 graceful restart: a hold-timer expiry on a GR-negotiated
        // session means the peer is presumed restarting — retain its routes
        // as stale instead of flushing, and arm the restart-window timer to
        // flush whatever the peer doesn't re-announce in time. Any other
        // close reason (NOTIFICATION, link down, admin) is a deliberate
        // teardown and flushes immediately.
        let own_gr = self.peers[peer].handshake.graceful_restart_secs();
        let peer_gr = self.peers[peer].peer_gr_secs;
        if matches!(reason, CloseReason::HoldExpired) && own_gr > 0 && peer_gr > 0 {
            let retained = self.adj_in.count_for_peer(peer) as u64;
            self.peers[peer].gr_stale = true;
            self.peers[peer].gr_resumed_at = None;
            self.stats.stale_retained += retained;
            ctx.count("bgp.router.stale_retained", retained);
            let window = SimDuration::from_secs(own_gr.min(peer_gr) as u64);
            // Progress class: a pending stale flush is protocol work — the
            // run must not count as converged while stale routes linger.
            ctx.set_timer(window, tok(K_GRSTALE, peer as u64), TimerClass::Progress);
            ctx.trace(TraceCategory::Session, || TraceEvent::Note {
                category: TraceCategory::Session,
                text: format!(
                    "graceful restart: retaining {retained} stale routes from {peer_node} for {window}"
                ),
            });
            return;
        }
        if self.peers[peer].gr_stale {
            self.peers[peer].gr_stale = false;
            self.peers[peer].gr_resumed_at = None;
            ctx.cancel_timer(tok(K_GRSTALE, peer as u64));
        }
        let affected = self.adj_in.remove_peer(peer);
        let had_routes = !affected.is_empty();
        // RFC 2439: routes lost to a session reset are unreachability flaps
        // like explicit withdrawals, so a flapping session accumulates
        // penalty against the peer's routes.
        if let Some(dcfg) = &self.cfg.damping {
            let now = ctx.now();
            for &p in &affected {
                self.damping
                    .entry((peer, p))
                    .or_insert_with(|| crate::damping::DampingState::new(now))
                    .on_withdrawal(dcfg, now);
            }
        }
        // Causal: a session loss that invalidated routes is a convergence
        // trigger of its own (one root per endpoint that notices the loss).
        if had_routes {
            let tid = self.mint_trigger(ctx, None);
            if tid != 0 {
                for &p in &affected {
                    self.causes.insert(
                        p,
                        PrefixCause {
                            current: Cause {
                                trigger: tid,
                                parent: tid,
                                hop: 0,
                            },
                            last_rib: None,
                        },
                    );
                }
            }
        }
        for p in affected {
            self.reselect(ctx, p);
        }
        if had_routes {
            self.flush_all(ctx);
        }
    }
}

impl<M: BgpApp> Node<M> for BgpRouter<M> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        // Install configured originations.
        let origins: InlineVec<Prefix, 8> = self.originated.iter().copied().collect();
        for p in origins {
            self.reselect(ctx, p);
        }
        // Stagger session bring-up so OPENs don't all collide at t=0.
        for peer in 0..self.peers.len() {
            let delay = ctx
                .rng()
                .duration_between(SimDuration::ZERO, self.cfg.timing.connect_stagger);
            self.schedule_connect(ctx, peer, delay);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, _from: NodeId, link: LinkId, msg: M) {
        if link.is_control() {
            match msg.into_command() {
                Ok(cmd) => self.handle_command(ctx, &cmd),
                Err(msg) => {
                    if let Some(pkt) = msg.as_data() {
                        // Driver-originated traffic (ping drivers inject here).
                        let pkt = *pkt;
                        self.send_packet(ctx, pkt);
                    }
                }
            }
            return;
        }
        let msg = match msg.into_bgp() {
            Ok(env) => {
                self.handle_bgp(ctx, &env);
                return;
            }
            Err(msg) => msg,
        };
        if let Some(pkt) = msg.as_data() {
            let pkt = *pkt;
            self.handle_data(ctx, pkt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: TimerToken) {
        let kind = token.0 & KIND_MASK;
        let payload = (token.0 & !KIND_MASK) as usize;
        match kind {
            K_CONNECT => self.connect_now(ctx, payload),
            K_MRAI => {
                self.peers[payload].mrai_armed = false;
                self.maybe_flush(ctx, payload);
            }
            K_KEEPALIVE => {
                if self.peers[payload].handshake.is_established() {
                    self.send_msg(ctx, payload, &BgpMessage::Keepalive);
                    let hold = self.peers[payload].handshake.negotiated_hold_secs();
                    let ka = SimDuration::from_secs(hold as u64)
                        / self.cfg.timing.keepalive_divisor as u64;
                    ctx.set_timer(
                        ka,
                        tok(K_KEEPALIVE, payload as u64),
                        TimerClass::Maintenance,
                    );
                }
            }
            K_HOLD => {
                if self.peers[payload].handshake.is_established() {
                    self.drop_session(
                        ctx,
                        payload,
                        CloseReason::HoldExpired,
                        Some(NotifCode::HoldTimerExpired),
                    );
                }
            }
            K_PROCESS => {
                if let Some((peer, upd, cause)) = self.in_queue.remove(&(payload as u64)) {
                    self.process_update(ctx, peer, upd, cause);
                }
            }
            K_DAMP => {
                if let Some(prefix) = self.damp_reuse.remove(&(payload as u64)) {
                    // A suppressed candidate may be reusable now.
                    self.reselect(ctx, prefix);
                    self.flush_all(ctx);
                }
            }
            K_GRSTALE => self.gr_stale_flush(ctx, payload),
            _ => unreachable!("unknown timer kind"),
        }
    }

    /// A crash loses everything volatile: sessions, RIBs, queued work and
    /// timers (the simulator already invalidated the timers). Configured
    /// state survives — `originated` is operator intent, and cumulative
    /// stats keep counting across the outage. Restart then behaves exactly
    /// like a cold start: reselect origins, stagger session bring-up, and
    /// re-advertise everything as sessions come back.
    fn on_restart(&mut self, ctx: &mut Ctx<'_, M>) {
        for peer in self.peers.iter_mut() {
            peer.handshake.reset();
            peer.remote_router_id = RouterId(0);
            peer.adj_out.clear();
            peer.pending.clear();
            peer.mrai_armed = false;
            peer.retries = 0;
            peer.peer_gr_secs = 0;
            peer.gr_stale = false;
            peer.gr_resumed_at = None;
        }
        self.adj_in = AdjRibIn::default();
        self.loc_rib = LocRib::default();
        self.in_queue.clear();
        self.last_proc_due = SimTime::ZERO;
        self.causes.clear();
        self.damping.clear();
        self.damp_reuse.clear();
        ctx.trace(TraceCategory::Session, || TraceEvent::Note {
            category: TraceCategory::Session,
            text: "router restarted: volatile state wiped".to_string(),
        });
        self.on_start(ctx);
    }

    fn on_link_change(&mut self, ctx: &mut Ctx<'_, M>, link: LinkId, up: bool) {
        let peers: InlineVec<PeerIdx, 4> = self
            .cfg
            .neighbors
            .iter()
            .enumerate()
            .filter(|(_, n)| n.link == link)
            .map(|(i, _)| i)
            .collect();
        for peer in peers {
            if up {
                self.peers[peer].retries = 0;
                let delay = ctx
                    .rng()
                    .duration_between(SimDuration::ZERO, self.cfg.timing.connect_stagger);
                self.schedule_connect(ctx, peer, delay);
            } else {
                self.drop_session(ctx, peer, CloseReason::LinkDown, None);
            }
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
