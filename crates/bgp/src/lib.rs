//! # bgpsdn-bgp — a from-scratch BGP-4 implementation for the emulation framework
//!
//! This crate is the framework's Quagga replacement: a complete, deterministic
//! BGP-4 speaker that runs inside the [`bgpsdn_netsim`] discrete-event
//! simulator. It provides:
//!
//! * the RFC 4271 **wire codec** ([`msg`], [`attrs`], [`wire`]) — every
//!   message that crosses a simulated link is encoded to and decoded from
//!   real BGP bytes;
//! * the **session FSM** ([`fsm`]) shared by routers, the cluster BGP
//!   speaker and the route collector;
//! * the three **RIBs** ([`rib`]) and the RFC 4271 §9.1 **decision process**
//!   ([`decision`]);
//! * **policy** ([`policy`]): Gao–Rexford relationship templates (the
//!   paper's customer-to-provider / peer-to-peer configuration) and
//!   Quagga-style route maps;
//! * the event-driven **router node** ([`router`]) with jittered MRAI
//!   pacing, per-UPDATE processing delay, hold/keepalive timers, loop
//!   detection and session retry logic.

#![warn(missing_docs)]

pub mod attrs;
pub mod config;
pub mod damping;
pub mod decision;
pub mod envelope;
pub mod fsm;
pub mod inline;
pub mod msg;
pub mod policy;
pub mod rib;
pub mod router;
pub mod types;
pub mod wire;

pub use attrs::{AsPath, Community, Origin, PathAttributes, Segment};
pub use config::{NeighborConfig, RouterConfig, TimingConfig};
pub use damping::{DampingConfig, DampingState};
pub use decision::{Candidate, DecisionConfig};
pub use envelope::{BgpApp, BgpEnvelope, BgpOnlyMsg, RouterCommand};
pub use fsm::{CloseReason, SessionEvent, SessionHandshake, SessionState};
pub use inline::InlineVec;
pub use msg::{BgpMessage, Capability, NotifCode, NotificationMsg, OpenMsg, UpdateMsg};
pub use policy::{
    export_allowed, import_allowed, import_local_pref, MatchCond, PolicyMode, Relationship,
    RouteMap, Rule, SetAction,
};
pub use rib::{AdjRibIn, AdjRibOut, LocRib, LocRibEntry, PeerIdx, RibInEntry, RouteSource};
pub use router::{BgpRouter, RouterStats};
pub use types::{pfx, Asn, Prefix, PrefixError, RouterId, SharedPath};
pub use wire::CodecError;
