//! Byte-level encoding helpers shared by the BGP message codec.
//!
//! BGP is big-endian throughout. The reader returns structured errors rather
//! than panicking, so malformed input (fuzzed or truncated) is always
//! surfaced as a [`CodecError`] that the session layer converts into a
//! NOTIFICATION.

use std::fmt;
use std::net::Ipv4Addr;

use crate::types::{Prefix, PrefixError};

/// Decoding/encoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before a complete field.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// The 16-byte marker was not all-ones.
    BadMarker,
    /// Header length field out of the RFC 4271 bounds or inconsistent.
    BadLength(u16),
    /// Unknown message type code.
    BadMessageType(u8),
    /// Unsupported BGP version in OPEN.
    BadVersion(u8),
    /// Malformed path attribute.
    BadAttribute {
        /// Attribute type code.
        code: u8,
        /// Explanation.
        reason: &'static str,
    },
    /// Malformed NLRI prefix.
    BadPrefix(PrefixError),
    /// Trailing bytes after a complete message body.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { what } => write!(f, "truncated while reading {what}"),
            CodecError::BadMarker => write!(f, "bad header marker"),
            CodecError::BadLength(l) => write!(f, "bad message length {l}"),
            CodecError::BadMessageType(t) => write!(f, "unknown message type {t}"),
            CodecError::BadVersion(v) => write!(f, "unsupported BGP version {v}"),
            CodecError::BadAttribute { code, reason } => {
                write!(f, "bad path attribute {code}: {reason}")
            }
            CodecError::BadPrefix(e) => write!(f, "bad NLRI: {e}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<PrefixError> for CodecError {
    fn from(e: PrefixError) -> Self {
        CodecError::BadPrefix(e)
    }
}

/// Big-endian cursor over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when everything was consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, CodecError> {
        let b = self.take(2, what)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read an IPv4 address.
    pub fn ipv4(&mut self, what: &'static str) -> Result<Ipv4Addr, CodecError> {
        Ok(Ipv4Addr::from(self.u32(what)?))
    }

    /// Read one RFC 4271 NLRI entry: length byte + ceil(len/8) prefix bytes.
    pub fn nlri_prefix(&mut self) -> Result<Prefix, CodecError> {
        let len = self.u8("nlri length")?;
        if len > 32 {
            return Err(CodecError::BadPrefix(PrefixError::BadLength(len)));
        }
        let nbytes = len.div_ceil(8) as usize;
        let bytes = self.take(nbytes, "nlri prefix bytes")?;
        let mut octets = [0u8; 4];
        octets[..nbytes].copy_from_slice(bytes);
        // RFC: trailing bits are irrelevant; mask them off.
        Ok(Prefix::new_masked(Ipv4Addr::from(octets), len)?)
    }

    /// Split off a sub-reader over the next `n` bytes.
    pub fn sub(&mut self, n: usize, what: &'static str) -> Result<Reader<'a>, CodecError> {
        Ok(Reader::new(self.take(n, what)?))
    }
}

/// Growable big-endian encoder.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Fresh writer with `capacity` bytes pre-reserved — the right
    /// constructor for an encode scratch that will be cleared and reused.
    pub fn with_capacity(capacity: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Drop the contents, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and take the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far, without consuming the writer. Scratch
    /// users copy these out and [`clear`](Writer::clear) for the next
    /// message.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append an IPv4 address.
    pub fn ipv4(&mut self, ip: Ipv4Addr) {
        self.buf.extend_from_slice(&ip.octets());
    }

    /// Append one NLRI entry (length byte + minimal prefix bytes).
    pub fn nlri_prefix(&mut self, p: Prefix) {
        self.u8(p.len());
        let nbytes = p.len().div_ceil(8) as usize;
        self.buf.extend_from_slice(&p.network().octets()[..nbytes]);
    }

    /// Overwrite the big-endian u16 at `pos` (for back-patching lengths).
    pub fn patch_u16(&mut self, pos: usize, v: u16) {
        self.buf[pos..pos + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Overwrite the byte at `pos` (for back-patching one-byte lengths).
    pub fn patch_u8(&mut self, pos: usize, v: u8) {
        self.buf[pos] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::pfx;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0x1234);
        w.u32(0xDEADBEEF);
        w.ipv4(Ipv4Addr::new(10, 1, 2, 3));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 0xAB);
        assert_eq!(r.u16("b").unwrap(), 0x1234);
        assert_eq!(r.u32("c").unwrap(), 0xDEADBEEF);
        assert_eq!(r.ipv4("d").unwrap(), Ipv4Addr::new(10, 1, 2, 3));
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = Reader::new(&[0x01]);
        assert_eq!(r.u16("field"), Err(CodecError::Truncated { what: "field" }));
    }

    #[test]
    fn nlri_roundtrip_various_lengths() {
        for p in [
            pfx("0.0.0.0/0"),
            pfx("10.0.0.0/8"),
            pfx("10.32.0.0/11"),
            pfx("192.168.7.0/24"),
            pfx("1.2.3.4/32"),
        ] {
            let mut w = Writer::new();
            w.nlri_prefix(p);
            // Encoded size is 1 + ceil(len/8)
            assert_eq!(w.len(), 1 + p.len().div_ceil(8) as usize);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.nlri_prefix().unwrap(), p);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn nlri_rejects_overlong() {
        let mut r = Reader::new(&[40, 1, 2, 3, 4, 5]);
        assert!(matches!(r.nlri_prefix(), Err(CodecError::BadPrefix(_))));
    }

    #[test]
    fn nlri_masks_trailing_bits() {
        // /4 with low bits set in the single prefix byte: must be masked.
        let mut r = Reader::new(&[4, 0xFF]);
        assert_eq!(r.nlri_prefix().unwrap(), pfx("240.0.0.0/4"));
    }

    #[test]
    fn sub_reader_bounds() {
        let bytes = [1, 2, 3, 4, 5];
        let mut r = Reader::new(&bytes);
        let mut s = r.sub(3, "sub").unwrap();
        assert_eq!(s.take(3, "x").unwrap(), &[1, 2, 3]);
        assert!(s.is_empty());
        assert_eq!(r.remaining(), 2);
        assert!(r.sub(3, "sub2").is_err());
    }

    #[test]
    fn patch_u16_back_patches() {
        let mut w = Writer::new();
        w.u16(0);
        w.u8(7);
        w.patch_u16(0, 0x0102);
        assert_eq!(w.into_bytes(), vec![1, 2, 7]);
    }
}
