//! Fundamental BGP types: AS numbers, router identifiers, IPv4 prefixes.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An Autonomous System number (4-octet capable, RFC 6793).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn(pub u32);

impl Asn {
    /// AS_TRANS (RFC 6793): placed in the 2-octet OPEN "My AS" field when
    /// the real ASN does not fit in 16 bits.
    pub const TRANS: Asn = Asn(23456);

    /// True when this ASN fits the classic 2-octet field.
    pub fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

/// The BGP Identifier: a 32-bit value conventionally written as an IPv4
/// address, unique per router. Used as the final decision-process tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub u32);

impl RouterId {
    /// Build from an IPv4 address.
    pub fn from_ip(ip: Ipv4Addr) -> Self {
        RouterId(u32::from(ip))
    }

    /// View as an IPv4 address.
    pub fn as_ip(self) -> Ipv4Addr {
        Ipv4Addr::from(self.0)
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_ip())
    }
}

/// Errors from [`Prefix`] construction and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// Prefix length above 32.
    BadLength(u8),
    /// Host bits set beyond the mask.
    HostBitsSet,
    /// Unparseable textual form.
    BadSyntax(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::BadLength(l) => write!(f, "prefix length {l} > 32"),
            PrefixError::HostBitsSet => write!(f, "host bits set below prefix length"),
            PrefixError::BadSyntax(s) => write!(f, "cannot parse prefix: {s:?}"),
        }
    }
}

impl std::error::Error for PrefixError {}

/// An IPv4 prefix in canonical (masked) form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Default for Prefix {
    /// The default route, `0.0.0.0/0` — the placeholder value
    /// [`InlineVec`](crate::inline::InlineVec) fills unused slots with.
    fn default() -> Self {
        Prefix::DEFAULT
    }
}

impl Prefix {
    /// The default route, `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { addr: 0, len: 0 };

    /// Construct, rejecting host bits below the mask.
    pub fn new(ip: Ipv4Addr, len: u8) -> Result<Prefix, PrefixError> {
        if len > 32 {
            return Err(PrefixError::BadLength(len));
        }
        let addr = u32::from(ip);
        let masked = addr & Self::mask_for(len);
        if masked != addr {
            return Err(PrefixError::HostBitsSet);
        }
        Ok(Prefix { addr, len })
    }

    /// Construct, silently masking any host bits.
    pub fn new_masked(ip: Ipv4Addr, len: u8) -> Result<Prefix, PrefixError> {
        if len > 32 {
            return Err(PrefixError::BadLength(len));
        }
        let addr = u32::from(ip) & Self::mask_for(len);
        Ok(Prefix { addr, len })
    }

    fn mask_for(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network address.
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// The network address as raw bits.
    pub fn network_u32(self) -> u32 {
        self.addr
    }

    /// Prefix length in bits (not a container size — a /0 is not "empty").
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// The netmask.
    pub fn mask(self) -> Ipv4Addr {
        Ipv4Addr::from(Self::mask_for(self.len))
    }

    /// True when `ip` falls inside this prefix.
    pub fn contains(self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::mask_for(self.len)) == self.addr
    }

    /// True when `other` is equal to or more specific than `self`.
    pub fn covers(self, other: Prefix) -> bool {
        other.len >= self.len && (other.addr & Self::mask_for(self.len)) == self.addr
    }

    /// Number of host addresses (saturating for /0).
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len as u64)
    }

    /// The `i`-th address inside the prefix (panics when out of range);
    /// used by the IP allocator to hand out host addresses.
    pub fn nth(self, i: u64) -> Ipv4Addr {
        assert!(i < self.size(), "host index {i} out of {self}");
        Ipv4Addr::from(self.addr + i as u32)
    }

    /// Split into two prefixes one bit longer. Panics on a /32.
    pub fn split(self) -> (Prefix, Prefix) {
        assert!(self.len < 32, "cannot split a /32");
        let len = self.len + 1;
        let hi_bit = 1u32 << (32 - len);
        (
            Prefix {
                addr: self.addr,
                len,
            },
            Prefix {
                addr: self.addr | hi_bit,
                len,
            },
        )
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::BadSyntax(s.into()))?;
        let ip: Ipv4Addr = ip.parse().map_err(|_| PrefixError::BadSyntax(s.into()))?;
        let len: u8 = len.parse().map_err(|_| PrefixError::BadSyntax(s.into()))?;
        Prefix::new(ip, len)
    }
}

/// Convenience constructor used pervasively in tests and examples:
/// `pfx("10.0.1.0/24")`. Panics on bad input.
pub fn pfx(s: &str) -> Prefix {
    s.parse().unwrap_or_else(|e| panic!("pfx({s:?}): {e}"))
}

/// An immutable, interned AS-path sequence shared by reference count.
///
/// A flattened AS path flows controller → speaker → BGP encoder and is
/// stored per prefix on both ends; behind an `Arc<[Asn]>`, every hand-off
/// and per-prefix copy is a pointer bump instead of a heap clone. Derefs
/// to `[Asn]`, so slice-based helpers (`accept_route`, `from_seq`) take it
/// unchanged.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SharedPath(std::sync::Arc<[Asn]>);

impl SharedPath {
    /// The ASNs of the path.
    pub fn as_slice(&self) -> &[Asn] {
        &self.0
    }

    /// True when two handles share the same interned allocation (cheap
    /// equality fast path; falls back to slice comparison when false).
    pub fn same_interned(&self, other: &SharedPath) -> bool {
        std::sync::Arc::ptr_eq(&self.0, &other.0)
    }
}

impl std::ops::Deref for SharedPath {
    type Target = [Asn];
    fn deref(&self) -> &[Asn] {
        &self.0
    }
}

impl From<Vec<Asn>> for SharedPath {
    fn from(v: Vec<Asn>) -> Self {
        SharedPath(v.into())
    }
}

impl From<&[Asn]> for SharedPath {
    fn from(v: &[Asn]) -> Self {
        SharedPath(v.into())
    }
}

impl FromIterator<Asn> for SharedPath {
    fn from_iter<I: IntoIterator<Item = Asn>>(iter: I) -> Self {
        SharedPath(iter.into_iter().collect())
    }
}

impl fmt::Display for SharedPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", a.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_display_and_16bit() {
        assert_eq!(Asn(65001).to_string(), "AS65001");
        assert!(Asn(65535).is_16bit());
        assert!(!Asn(65536).is_16bit());
        assert_eq!(Asn::TRANS, Asn(23456));
    }

    #[test]
    fn router_id_roundtrip() {
        let id = RouterId::from_ip(Ipv4Addr::new(10, 0, 0, 7));
        assert_eq!(id.as_ip(), Ipv4Addr::new(10, 0, 0, 7));
        assert_eq!(id.to_string(), "10.0.0.7");
    }

    #[test]
    fn prefix_parse_and_display() {
        let p = pfx("192.168.4.0/22");
        assert_eq!(p.to_string(), "192.168.4.0/22");
        assert_eq!(p.len(), 22);
        assert_eq!(p.mask(), Ipv4Addr::new(255, 255, 252, 0));
    }

    #[test]
    fn prefix_rejects_host_bits() {
        assert_eq!(
            Prefix::new(Ipv4Addr::new(10, 0, 0, 1), 24),
            Err(PrefixError::HostBitsSet)
        );
        let p = Prefix::new_masked(Ipv4Addr::new(10, 0, 0, 1), 24).unwrap();
        assert_eq!(p, pfx("10.0.0.0/24"));
    }

    #[test]
    fn prefix_rejects_bad_length_and_syntax() {
        assert_eq!(
            Prefix::new(Ipv4Addr::UNSPECIFIED, 33),
            Err(PrefixError::BadLength(33))
        );
        assert!(matches!(
            "x/24".parse::<Prefix>(),
            Err(PrefixError::BadSyntax(_))
        ));
        assert!(matches!(
            "10.0.0.0".parse::<Prefix>(),
            Err(PrefixError::BadSyntax(_))
        ));
        assert!(matches!(
            "10.0.0.0/xx".parse::<Prefix>(),
            Err(PrefixError::BadSyntax(_))
        ));
    }

    #[test]
    fn contains_and_covers() {
        let p = pfx("10.1.0.0/16");
        assert!(p.contains(Ipv4Addr::new(10, 1, 2, 3)));
        assert!(!p.contains(Ipv4Addr::new(10, 2, 0, 0)));
        assert!(p.covers(pfx("10.1.4.0/24")));
        assert!(p.covers(p));
        assert!(!p.covers(pfx("10.0.0.0/8")));
        assert!(Prefix::DEFAULT.covers(p));
    }

    #[test]
    fn nth_and_size() {
        let p = pfx("10.0.0.0/30");
        assert_eq!(p.size(), 4);
        assert_eq!(p.nth(1), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(p.nth(3), Ipv4Addr::new(10, 0, 0, 3));
    }

    #[test]
    #[should_panic]
    fn nth_out_of_range_panics() {
        pfx("10.0.0.0/30").nth(4);
    }

    #[test]
    fn split_halves() {
        let (a, b) = pfx("10.0.0.0/8").split();
        assert_eq!(a, pfx("10.0.0.0/9"));
        assert_eq!(b, pfx("10.128.0.0/9"));
    }

    #[test]
    fn default_route() {
        assert_eq!(Prefix::DEFAULT.to_string(), "0.0.0.0/0");
        assert!(Prefix::DEFAULT.contains(Ipv4Addr::new(1, 2, 3, 4)));
        assert_eq!(pfx("0.0.0.0/0"), Prefix::DEFAULT);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![pfx("10.0.0.0/8"), pfx("9.0.0.0/8"), pfx("10.0.0.0/16")];
        v.sort();
        assert_eq!(
            v,
            vec![pfx("9.0.0.0/8"), pfx("10.0.0.0/8"), pfx("10.0.0.0/16")]
        );
    }

    #[test]
    fn shared_path_clones_are_interned() {
        let p: SharedPath = vec![Asn(65000), Asn(65001)].into();
        let q = p.clone();
        assert!(p.same_interned(&q), "clone must share the allocation");
        assert_eq!(p, q);
        assert_eq!(p.as_slice(), &[Asn(65000), Asn(65001)]);
        // Deref gives slice methods for free.
        assert_eq!(p.len(), 2);
        assert!(p.contains(&Asn(65001)));
        assert_eq!(p.to_string(), "65000 65001");
        // Structurally equal but separately built: equal, not interned.
        let r: SharedPath = [Asn(65000), Asn(65001)].as_slice().into();
        assert_eq!(p, r);
        assert!(!p.same_interned(&r));
        // Ordering follows the ASN sequence.
        let s: SharedPath = vec![Asn(65000)].into();
        assert!(s < p);
    }
}
