//! Route-flap damping (RFC 2439), as shipped by Quagga/Cisco.
//!
//! Each `(peer, prefix)` accumulates a penalty on every flap (withdrawal or
//! attribute change). The penalty decays exponentially with a configurable
//! half-life; a route whose penalty exceeds the suppress threshold is
//! excluded from the decision process until it decays below the reuse
//! threshold. Damping is the *distributed* answer to route flaps — the
//! paper's controller answers the same problem centrally with delayed
//! recomputation, which makes this module the natural ablation baseline.

use bgpsdn_netsim::{SimDuration, SimTime};

/// Damping parameters (defaults follow Cisco/RFC 2439 figure values).
#[derive(Debug, Clone)]
pub struct DampingConfig {
    /// Penalty added per withdrawal flap.
    pub withdrawal_penalty: f64,
    /// Penalty added per re-advertisement with changed attributes.
    pub attribute_penalty: f64,
    /// Penalty above which a route is suppressed.
    pub suppress_threshold: f64,
    /// Penalty below which a suppressed route is reusable again.
    pub reuse_threshold: f64,
    /// Exponential decay half-life.
    pub half_life: SimDuration,
    /// Penalty ceiling (caps maximum suppression time).
    pub max_penalty: f64,
}

impl Default for DampingConfig {
    fn default() -> Self {
        DampingConfig {
            withdrawal_penalty: 1000.0,
            attribute_penalty: 500.0,
            suppress_threshold: 2000.0,
            reuse_threshold: 750.0,
            half_life: SimDuration::from_secs(15 * 60),
            max_penalty: 16000.0,
        }
    }
}

impl DampingConfig {
    /// An aggressive profile suited to short simulations (seconds-scale
    /// half-life instead of the operational 15 minutes).
    pub fn fast() -> DampingConfig {
        DampingConfig {
            half_life: SimDuration::from_secs(60),
            ..Default::default()
        }
    }
}

/// Damping state of one `(peer, prefix)` route.
#[derive(Debug, Clone)]
pub struct DampingState {
    penalty: f64,
    last_update: SimTime,
    suppressed: bool,
}

impl DampingState {
    /// Fresh, undamped state.
    pub fn new(now: SimTime) -> DampingState {
        DampingState {
            penalty: 0.0,
            last_update: now,
            suppressed: false,
        }
    }

    fn decay_to(&mut self, cfg: &DampingConfig, now: SimTime) {
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            let hl = cfg.half_life.as_secs_f64().max(f64::MIN_POSITIVE);
            self.penalty *= 0.5f64.powf(dt / hl);
            self.last_update = now;
        }
    }

    /// Record a withdrawal flap. Returns the new suppression state.
    pub fn on_withdrawal(&mut self, cfg: &DampingConfig, now: SimTime) -> bool {
        self.bump(cfg, now, cfg.withdrawal_penalty)
    }

    /// Record a re-advertisement with changed attributes.
    pub fn on_attribute_change(&mut self, cfg: &DampingConfig, now: SimTime) -> bool {
        self.bump(cfg, now, cfg.attribute_penalty)
    }

    fn bump(&mut self, cfg: &DampingConfig, now: SimTime, add: f64) -> bool {
        self.decay_to(cfg, now);
        self.penalty = (self.penalty + add).min(cfg.max_penalty);
        if self.penalty >= cfg.suppress_threshold {
            self.suppressed = true;
        }
        self.suppressed
    }

    /// Whether the route is currently suppressed, updating decay first.
    pub fn is_suppressed(&mut self, cfg: &DampingConfig, now: SimTime) -> bool {
        self.decay_to(cfg, now);
        if self.suppressed && self.penalty < cfg.reuse_threshold {
            self.suppressed = false;
        }
        self.suppressed
    }

    /// Current penalty after decay.
    pub fn penalty(&mut self, cfg: &DampingConfig, now: SimTime) -> f64 {
        self.decay_to(cfg, now);
        self.penalty
    }

    /// Time from `now` until a suppressed route decays to the reuse
    /// threshold (`None` when not suppressed).
    pub fn reuse_eta(&mut self, cfg: &DampingConfig, now: SimTime) -> Option<SimDuration> {
        if !self.is_suppressed(cfg, now) {
            return None;
        }
        // penalty * 0.5^(t/hl) = reuse  =>  t = hl * log2(penalty / reuse)
        let ratio = self.penalty / cfg.reuse_threshold;
        let secs = cfg.half_life.as_secs_f64() * ratio.log2();
        Some(SimDuration::from_secs_f64(secs.max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_flap_does_not_suppress() {
        let cfg = DampingConfig::default();
        let mut st = DampingState::new(t(0));
        assert!(!st.on_withdrawal(&cfg, t(0)));
        assert!(!st.is_suppressed(&cfg, t(1)));
        assert!((st.penalty(&cfg, t(0)) - 1000.0).abs() < 1.0);
    }

    #[test]
    fn repeated_flaps_suppress() {
        let cfg = DampingConfig::default();
        let mut st = DampingState::new(t(0));
        st.on_withdrawal(&cfg, t(0));
        // Slight decay after 1 s keeps the pair just below 2000 …
        assert!(!st.on_withdrawal(&cfg, t(1)));
        // … but a third flap crosses the threshold.
        let suppressed = st.on_withdrawal(&cfg, t(2));
        assert!(suppressed, "3000 >= suppress threshold");
        assert!(st.is_suppressed(&cfg, t(3)));
    }

    #[test]
    fn penalty_decays_with_half_life() {
        let cfg = DampingConfig {
            half_life: SimDuration::from_secs(10),
            ..Default::default()
        };
        let mut st = DampingState::new(t(0));
        st.on_withdrawal(&cfg, t(0));
        let p = st.penalty(&cfg, t(10));
        assert!((p - 500.0).abs() < 1.0, "one half-life: {p}");
        let p = st.penalty(&cfg, t(30));
        assert!((p - 125.0).abs() < 1.0, "three half-lives: {p}");
    }

    #[test]
    fn suppressed_route_becomes_reusable() {
        let cfg = DampingConfig {
            half_life: SimDuration::from_secs(10),
            ..Default::default()
        };
        let mut st = DampingState::new(t(0));
        st.on_withdrawal(&cfg, t(0));
        st.on_withdrawal(&cfg, t(0));
        st.on_withdrawal(&cfg, t(0));
        assert!(st.is_suppressed(&cfg, t(0)));
        let eta = st.reuse_eta(&cfg, t(0)).unwrap();
        // 3000 -> 750 is two half-lives = 20 s.
        assert!((eta.as_secs_f64() - 20.0).abs() < 0.5, "{eta}");
        assert!(st.is_suppressed(&cfg, t(15)));
        assert!(!st.is_suppressed(&cfg, t(21)), "decayed below reuse");
        assert!(st.reuse_eta(&cfg, t(21)).is_none());
    }

    #[test]
    fn penalty_is_capped() {
        let cfg = DampingConfig::default();
        let mut st = DampingState::new(t(0));
        for _ in 0..100 {
            st.on_withdrawal(&cfg, t(0));
        }
        assert!(st.penalty(&cfg, t(0)) <= cfg.max_penalty);
    }

    #[test]
    fn attribute_changes_accumulate_half_as_fast() {
        let cfg = DampingConfig::default();
        let mut a = DampingState::new(t(0));
        let mut b = DampingState::new(t(0));
        a.on_withdrawal(&cfg, t(0));
        b.on_attribute_change(&cfg, t(0));
        assert!(a.penalty(&cfg, t(0)) > b.penalty(&cfg, t(0)));
    }
}
