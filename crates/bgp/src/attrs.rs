//! BGP path attributes (RFC 4271 §4.3, plus communities, RFC 1997).
//!
//! AS numbers inside AS_PATH are encoded as 4 octets: both ends of every
//! session in this framework advertise the four-octet-AS capability
//! (RFC 6793), so the AS4_PATH compatibility dance is unnecessary.

use std::fmt;
use std::net::Ipv4Addr;

use crate::types::Asn;
use crate::wire::{CodecError, Reader, Writer};

/// ORIGIN attribute values, ordered by decision-process preference
/// (IGP < EGP < Incomplete; lower wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Origin {
    /// Interior to the originating AS.
    Igp = 0,
    /// Learned via EGP.
    Egp = 1,
    /// Learned by other means.
    Incomplete = 2,
}

impl Origin {
    fn from_u8(v: u8) -> Result<Origin, CodecError> {
        match v {
            0 => Ok(Origin::Igp),
            1 => Ok(Origin::Egp),
            2 => Ok(Origin::Incomplete),
            _ => Err(CodecError::BadAttribute {
                code: attr_code::ORIGIN,
                reason: "origin value out of range",
            }),
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Origin::Igp => "i",
            Origin::Egp => "e",
            Origin::Incomplete => "?",
        })
    }
}

/// One AS_PATH segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Ordered sequence of traversed ASes.
    Sequence(Vec<Asn>),
    /// Unordered set (result of aggregation).
    Set(Vec<Asn>),
}

const SEG_SET: u8 = 1;
const SEG_SEQUENCE: u8 = 2;

/// The AS_PATH attribute: the ASes a route has traversed, most recent first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AsPath {
    /// Segments, first segment is nearest.
    pub segments: Vec<Segment>,
}

impl AsPath {
    /// The empty path (a locally originated route).
    pub fn empty() -> AsPath {
        AsPath { segments: vec![] }
    }

    /// A pure sequence path.
    pub fn from_seq(asns: impl IntoIterator<Item = u32>) -> AsPath {
        AsPath {
            segments: vec![Segment::Sequence(asns.into_iter().map(Asn).collect())],
        }
    }

    /// Prepend one AS (what a router does on eBGP export).
    pub fn prepend(&mut self, asn: Asn) {
        match self.segments.first_mut() {
            Some(Segment::Sequence(seq)) => seq.insert(0, asn),
            _ => self.segments.insert(0, Segment::Sequence(vec![asn])),
        }
    }

    /// Prepend the same AS `n` times (path prepending policy action).
    pub fn prepend_n(&mut self, asn: Asn, n: usize) {
        for _ in 0..n {
            self.prepend(asn);
        }
    }

    /// Decision-process length: each sequence member counts 1, each set
    /// counts 1 in total (RFC 4271 §9.1.2.2 a).
    pub fn path_len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Sequence(seq) => seq.len(),
                Segment::Set(_) => 1,
            })
            .sum()
    }

    /// True when `asn` appears anywhere (loop detection).
    pub fn contains(&self, asn: Asn) -> bool {
        self.segments.iter().any(|s| match s {
            Segment::Sequence(v) | Segment::Set(v) => v.contains(&asn),
        })
    }

    /// The neighboring AS: first AS of the first sequence segment.
    pub fn first_asn(&self) -> Option<Asn> {
        match self.segments.first() {
            Some(Segment::Sequence(v)) => v.first().copied(),
            Some(Segment::Set(v)) => v.first().copied(),
            None => None,
        }
    }

    /// The originating AS: last AS of the last segment.
    pub fn origin_asn(&self) -> Option<Asn> {
        match self.segments.last() {
            Some(Segment::Sequence(v)) => v.last().copied(),
            Some(Segment::Set(v)) => v.last().copied(),
            None => None,
        }
    }

    /// All ASes in order of appearance (sets flattened in stored order).
    pub fn flatten(&self) -> Vec<Asn> {
        let mut out = Vec::new();
        for s in &self.segments {
            match s {
                Segment::Sequence(v) | Segment::Set(v) => out.extend_from_slice(v),
            }
        }
        out
    }

    /// True for a locally-originated (empty) path.
    pub fn is_empty(&self) -> bool {
        self.path_len() == 0
    }

    pub(crate) fn encode(&self, w: &mut Writer) {
        for seg in &self.segments {
            let (ty, asns) = match seg {
                Segment::Set(v) => (SEG_SET, v),
                Segment::Sequence(v) => (SEG_SEQUENCE, v),
            };
            w.u8(ty);
            w.u8(asns.len() as u8);
            for a in asns {
                w.u32(a.0);
            }
        }
    }

    /// Encoded size in bytes, known without encoding — lets the attribute
    /// framing write its length header up front instead of detouring
    /// through a scratch buffer.
    pub(crate) fn wire_len(&self) -> usize {
        self.segments
            .iter()
            .map(|seg| {
                let asns = match seg {
                    Segment::Set(v) | Segment::Sequence(v) => v,
                };
                2 + 4 * asns.len()
            })
            .sum()
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<AsPath, CodecError> {
        let mut segments = Vec::new();
        while !r.is_empty() {
            let ty = r.u8("as_path segment type")?;
            let n = r.u8("as_path segment count")? as usize;
            if n == 0 {
                return Err(CodecError::BadAttribute {
                    code: attr_code::AS_PATH,
                    reason: "empty segment",
                });
            }
            let mut asns = Vec::with_capacity(n);
            for _ in 0..n {
                asns.push(Asn(r.u32("as_path asn")?));
            }
            segments.push(match ty {
                SEG_SET => Segment::Set(asns),
                SEG_SEQUENCE => Segment::Sequence(asns),
                _ => {
                    return Err(CodecError::BadAttribute {
                        code: attr_code::AS_PATH,
                        reason: "unknown segment type",
                    })
                }
            });
        }
        Ok(AsPath { segments })
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg {
                Segment::Sequence(v) => {
                    let parts: Vec<String> = v.iter().map(|a| a.0.to_string()).collect();
                    write!(f, "{}", parts.join(" "))?;
                }
                Segment::Set(v) => {
                    let parts: Vec<String> = v.iter().map(|a| a.0.to_string()).collect();
                    write!(f, "{{{}}}", parts.join(","))?;
                }
            }
        }
        if self.segments.is_empty() {
            write!(f, "<local>")?;
        }
        Ok(())
    }
}

/// A standard community value (RFC 1997), displayed `asn:value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Community(pub u32);

impl Community {
    /// Build from the conventional `asn:value` halves.
    pub fn new(asn: u16, value: u16) -> Community {
        Community(((asn as u32) << 16) | value as u32)
    }

    /// The high (AS) half.
    pub fn asn(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low (value) half.
    pub fn value(self) -> u16 {
        self.0 as u16
    }

    /// NO_EXPORT well-known community.
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
    /// NO_ADVERTISE well-known community.
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn(), self.value())
    }
}

/// Attribute type codes.
pub mod attr_code {
    /// ORIGIN.
    pub const ORIGIN: u8 = 1;
    /// AS_PATH.
    pub const AS_PATH: u8 = 2;
    /// NEXT_HOP.
    pub const NEXT_HOP: u8 = 3;
    /// MULTI_EXIT_DISC.
    pub const MED: u8 = 4;
    /// LOCAL_PREF.
    pub const LOCAL_PREF: u8 = 5;
    /// ATOMIC_AGGREGATE.
    pub const ATOMIC_AGGREGATE: u8 = 6;
    /// AGGREGATOR.
    pub const AGGREGATOR: u8 = 7;
    /// COMMUNITY (RFC 1997).
    pub const COMMUNITY: u8 = 8;
}

mod flags {
    pub const OPTIONAL: u8 = 0x80;
    pub const TRANSITIVE: u8 = 0x40;
    pub const _PARTIAL: u8 = 0x20;
    pub const EXT_LEN: u8 = 0x10;
}

/// An unrecognized optional attribute carried through unmodified.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RawAttribute {
    /// Original flag octet.
    pub flags: u8,
    /// Attribute type code.
    pub code: u8,
    /// Raw value bytes.
    pub value: Vec<u8>,
}

/// The full set of path attributes carried by an UPDATE.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathAttributes {
    /// Mandatory ORIGIN.
    pub origin: Origin,
    /// Mandatory AS_PATH.
    pub as_path: AsPath,
    /// Mandatory NEXT_HOP.
    pub next_hop: Ipv4Addr,
    /// Optional MULTI_EXIT_DISC.
    pub med: Option<u32>,
    /// LOCAL_PREF (mandatory on iBGP; we also use it internally to carry
    /// policy preference, but never send it on eBGP sessions).
    pub local_pref: Option<u32>,
    /// ATOMIC_AGGREGATE marker.
    pub atomic_aggregate: bool,
    /// AGGREGATOR (AS, router) pair.
    pub aggregator: Option<(Asn, Ipv4Addr)>,
    /// Standard communities.
    pub communities: Vec<Community>,
    /// Unknown optional-transitive attributes passed through.
    pub unknown: Vec<RawAttribute>,
}

impl PathAttributes {
    /// Attributes for a locally originated route.
    pub fn originate(next_hop: Ipv4Addr) -> PathAttributes {
        PathAttributes {
            origin: Origin::Igp,
            as_path: AsPath::empty(),
            next_hop,
            med: None,
            local_pref: None,
            atomic_aggregate: false,
            aggregator: None,
            communities: Vec::new(),
            unknown: Vec::new(),
        }
    }

    /// Write the `(flags, code, length)` attribute header for a body of
    /// `len` bytes that the caller writes directly afterwards.
    fn encode_header(w: &mut Writer, flag: u8, code: u8, len: usize) {
        if len > 255 {
            w.u8(flag | flags::EXT_LEN);
            w.u8(code);
            w.u16(len as u16);
        } else {
            w.u8(flag);
            w.u8(code);
            w.u8(len as u8);
        }
    }

    fn encode_one(w: &mut Writer, flag: u8, code: u8, body: &[u8]) {
        Self::encode_header(w, flag, code, body.len());
        w.bytes(body);
    }

    /// Encode the attribute block (without the two-byte total length that
    /// precedes it in an UPDATE; the message codec writes that).
    pub fn encode(&self, w: &mut Writer) {
        // ORIGIN: well-known mandatory.
        Self::encode_one(
            w,
            flags::TRANSITIVE,
            attr_code::ORIGIN,
            &[self.origin as u8],
        );
        // AS_PATH: body length is known up front, so it encodes straight
        // into `w` — no per-message scratch buffer.
        Self::encode_header(
            w,
            flags::TRANSITIVE,
            attr_code::AS_PATH,
            self.as_path.wire_len(),
        );
        self.as_path.encode(w);
        // NEXT_HOP.
        Self::encode_one(
            w,
            flags::TRANSITIVE,
            attr_code::NEXT_HOP,
            &self.next_hop.octets(),
        );
        if let Some(med) = self.med {
            Self::encode_one(w, flags::OPTIONAL, attr_code::MED, &med.to_be_bytes());
        }
        if let Some(lp) = self.local_pref {
            Self::encode_one(
                w,
                flags::TRANSITIVE,
                attr_code::LOCAL_PREF,
                &lp.to_be_bytes(),
            );
        }
        if self.atomic_aggregate {
            Self::encode_one(w, flags::TRANSITIVE, attr_code::ATOMIC_AGGREGATE, &[]);
        }
        if let Some((asn, ip)) = self.aggregator {
            Self::encode_header(
                w,
                flags::OPTIONAL | flags::TRANSITIVE,
                attr_code::AGGREGATOR,
                8,
            );
            w.u32(asn.0);
            w.ipv4(ip);
        }
        if !self.communities.is_empty() {
            Self::encode_header(
                w,
                flags::OPTIONAL | flags::TRANSITIVE,
                attr_code::COMMUNITY,
                self.communities.len() * 4,
            );
            for c in &self.communities {
                w.u32(c.0);
            }
        }
        for raw in &self.unknown {
            Self::encode_one(w, raw.flags & !flags::EXT_LEN, raw.code, &raw.value);
        }
    }

    /// Decode an attribute block. `r` must span exactly the block.
    pub fn decode(r: &mut Reader<'_>) -> Result<PathAttributes, CodecError> {
        let mut origin = None;
        let mut as_path = None;
        let mut next_hop = None;
        let mut med = None;
        let mut local_pref = None;
        let mut atomic_aggregate = false;
        let mut aggregator = None;
        let mut communities = Vec::new();
        let mut unknown = Vec::new();

        while !r.is_empty() {
            let flag = r.u8("attr flags")?;
            let code = r.u8("attr code")?;
            let len = if flag & flags::EXT_LEN != 0 {
                r.u16("attr ext length")? as usize
            } else {
                r.u8("attr length")? as usize
            };
            let mut body = r.sub(len, "attr body")?;
            match code {
                attr_code::ORIGIN => {
                    origin = Some(Origin::from_u8(body.u8("origin")?)?);
                }
                attr_code::AS_PATH => {
                    as_path = Some(AsPath::decode(&mut body)?);
                }
                attr_code::NEXT_HOP => {
                    next_hop = Some(body.ipv4("next_hop")?);
                }
                attr_code::MED => {
                    med = Some(body.u32("med")?);
                }
                attr_code::LOCAL_PREF => {
                    local_pref = Some(body.u32("local_pref")?);
                }
                attr_code::ATOMIC_AGGREGATE => {
                    atomic_aggregate = true;
                }
                attr_code::AGGREGATOR => {
                    let asn = Asn(body.u32("aggregator asn")?);
                    let ip = body.ipv4("aggregator id")?;
                    aggregator = Some((asn, ip));
                }
                attr_code::COMMUNITY => {
                    if len % 4 != 0 {
                        return Err(CodecError::BadAttribute {
                            code,
                            reason: "community length not multiple of 4",
                        });
                    }
                    while !body.is_empty() {
                        communities.push(Community(body.u32("community")?));
                    }
                }
                _ => {
                    if flag & flags::OPTIONAL == 0 {
                        return Err(CodecError::BadAttribute {
                            code,
                            reason: "unknown well-known attribute",
                        });
                    }
                    unknown.push(RawAttribute {
                        flags: flag,
                        code,
                        value: body.take(body.remaining(), "raw attr")?.to_vec(),
                    });
                    continue;
                }
            }
            if !body.is_empty() {
                return Err(CodecError::BadAttribute {
                    code,
                    reason: "trailing bytes in attribute body",
                });
            }
        }

        Ok(PathAttributes {
            origin: origin.ok_or(CodecError::BadAttribute {
                code: attr_code::ORIGIN,
                reason: "missing mandatory ORIGIN",
            })?,
            as_path: as_path.ok_or(CodecError::BadAttribute {
                code: attr_code::AS_PATH,
                reason: "missing mandatory AS_PATH",
            })?,
            next_hop: next_hop.ok_or(CodecError::BadAttribute {
                code: attr_code::NEXT_HOP,
                reason: "missing mandatory NEXT_HOP",
            })?,
            med,
            local_pref,
            atomic_aggregate,
            aggregator,
            communities,
            unknown,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(attrs: &PathAttributes) -> PathAttributes {
        let mut w = Writer::new();
        attrs.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let out = PathAttributes::decode(&mut r).expect("decode");
        assert!(r.is_empty());
        out
    }

    #[test]
    fn minimal_attrs_roundtrip() {
        let a = PathAttributes::originate(Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(roundtrip(&a), a);
    }

    #[test]
    fn full_attrs_roundtrip() {
        let mut a = PathAttributes::originate(Ipv4Addr::new(10, 9, 8, 7));
        a.origin = Origin::Incomplete;
        a.as_path = AsPath::from_seq([65001, 65002, 65003]);
        a.as_path.segments.push(Segment::Set(vec![Asn(1), Asn(2)]));
        a.med = Some(77);
        a.local_pref = Some(130);
        a.atomic_aggregate = true;
        a.aggregator = Some((Asn(65001), Ipv4Addr::new(1, 1, 1, 1)));
        a.communities = vec![Community::new(65001, 42), Community::NO_EXPORT];
        a.unknown.push(RawAttribute {
            flags: 0xC0,
            code: 99,
            value: vec![1, 2, 3],
        });
        assert_eq!(roundtrip(&a), a);
    }

    #[test]
    fn as_path_prepend_and_len() {
        let mut p = AsPath::empty();
        assert!(p.is_empty());
        assert_eq!(p.path_len(), 0);
        p.prepend(Asn(3));
        p.prepend(Asn(2));
        p.prepend(Asn(1));
        assert_eq!(p.path_len(), 3);
        assert_eq!(p.first_asn(), Some(Asn(1)));
        assert_eq!(p.origin_asn(), Some(Asn(3)));
        assert_eq!(p.flatten(), vec![Asn(1), Asn(2), Asn(3)]);
        assert_eq!(p.to_string(), "1 2 3");
    }

    #[test]
    fn as_path_set_counts_one() {
        let p = AsPath {
            segments: vec![
                Segment::Sequence(vec![Asn(1), Asn(2)]),
                Segment::Set(vec![Asn(3), Asn(4), Asn(5)]),
            ],
        };
        assert_eq!(p.path_len(), 3);
        assert_eq!(p.origin_asn(), Some(Asn(5)));
        assert_eq!(p.to_string(), "1 2 {3,4,5}");
        assert!(p.contains(Asn(4)));
        assert!(!p.contains(Asn(9)));
    }

    #[test]
    fn prepend_n_repeats() {
        let mut p = AsPath::from_seq([7]);
        p.prepend_n(Asn(5), 3);
        assert_eq!(p.flatten(), vec![Asn(5), Asn(5), Asn(5), Asn(7)]);
        assert_eq!(p.path_len(), 4);
    }

    #[test]
    fn community_halves() {
        let c = Community::new(65010, 300);
        assert_eq!(c.asn(), 65010);
        assert_eq!(c.value(), 300);
        assert_eq!(c.to_string(), "65010:300");
        assert_eq!(Community::NO_EXPORT.to_string(), "65535:65281");
    }

    #[test]
    fn decode_rejects_missing_mandatory() {
        // Only an ORIGIN attribute: AS_PATH and NEXT_HOP missing.
        let mut w = Writer::new();
        PathAttributes::encode_one(&mut w, flags::TRANSITIVE, attr_code::ORIGIN, &[0]);
        let bytes = w.into_bytes();
        let err = PathAttributes::decode(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, CodecError::BadAttribute { code: 2, .. }));
    }

    #[test]
    fn decode_rejects_bad_origin_value() {
        let mut w = Writer::new();
        PathAttributes::encode_one(&mut w, flags::TRANSITIVE, attr_code::ORIGIN, &[9]);
        let bytes = w.into_bytes();
        assert!(PathAttributes::decode(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn decode_rejects_unknown_wellknown() {
        let mut w = Writer::new();
        // flags without OPTIONAL bit, unknown code 50
        PathAttributes::encode_one(&mut w, flags::TRANSITIVE, 50, &[1]);
        let bytes = w.into_bytes();
        let err = PathAttributes::decode(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, CodecError::BadAttribute { code: 50, .. }));
    }

    #[test]
    fn extended_length_attribute_roundtrip() {
        // An AS_PATH long enough to need the extended-length flag (>255 B).
        let mut a = PathAttributes::originate(Ipv4Addr::new(1, 1, 1, 1));
        a.as_path = AsPath::from_seq(0..80u32); // 80*4 + 2 = 322 bytes
        let out = roundtrip(&a);
        assert_eq!(out.as_path.path_len(), 80);
    }

    #[test]
    fn empty_as_path_segment_rejected() {
        let bytes = [SEG_SEQUENCE, 0u8];
        assert!(AsPath::decode(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn origin_ordering_for_decision() {
        assert!(Origin::Igp < Origin::Egp);
        assert!(Origin::Egp < Origin::Incomplete);
    }
}
