//! BGP-4 messages and their RFC 4271 wire format.
//!
//! Every message that crosses a simulated link is encoded to real wire bytes
//! and decoded on arrival, so the codec is exercised by every experiment and
//! transmission delay reflects true message size.

use std::fmt;

use crate::attrs::PathAttributes;
use crate::types::{Asn, Prefix, RouterId};
use crate::wire::{CodecError, Reader, Writer};

/// Length of the fixed header (marker + length + type).
pub const HEADER_LEN: usize = 19;
/// Maximum message length permitted by RFC 4271.
pub const MAX_MESSAGE_LEN: usize = 4096;

const TYPE_OPEN: u8 = 1;
const TYPE_UPDATE: u8 = 2;
const TYPE_NOTIFICATION: u8 = 3;
const TYPE_KEEPALIVE: u8 = 4;
const TYPE_ROUTE_REFRESH: u8 = 5;

/// A capability advertised in OPEN (RFC 5492 parameter type 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Multiprotocol extensions (RFC 4760): AFI/SAFI pair.
    MultiProtocol {
        /// Address family identifier (1 = IPv4).
        afi: u16,
        /// Subsequent AFI (1 = unicast).
        safi: u8,
    },
    /// Route refresh (RFC 2918).
    RouteRefresh,
    /// Four-octet AS numbers (RFC 6793).
    FourOctetAs(Asn),
    /// Graceful restart (RFC 4724): the sender asks its peers to retain
    /// its routes as stale for up to `restart_time_secs` after a session
    /// drop. The framework models neither the restart-state flag nor
    /// per-AFI forwarding-state bits, so only the restart time is carried
    /// (flags nibble encoded as zero).
    GracefulRestart {
        /// Restart time in seconds (12-bit field on the wire).
        restart_time_secs: u16,
    },
    /// Anything we don't model, carried raw.
    Unknown {
        /// Capability code.
        code: u8,
        /// Raw capability value.
        value: Vec<u8>,
    },
}

/// OPEN message: session parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMsg {
    /// Protocol version, always 4.
    pub version: u8,
    /// The sender's ASN (full 32-bit value; the 2-octet header field carries
    /// AS_TRANS when it doesn't fit).
    pub asn: Asn,
    /// Proposed hold time in seconds (0 disables keepalive/hold).
    pub hold_time_secs: u16,
    /// Sender's BGP identifier.
    pub router_id: RouterId,
    /// Advertised capabilities.
    pub capabilities: Vec<Capability>,
}

impl OpenMsg {
    /// Standard OPEN for this framework: 4-octet-AS + MP-IPv4 + route
    /// refresh capabilities.
    pub fn standard(asn: Asn, router_id: RouterId, hold_time_secs: u16) -> OpenMsg {
        OpenMsg {
            version: 4,
            asn,
            hold_time_secs,
            router_id,
            capabilities: vec![
                Capability::MultiProtocol { afi: 1, safi: 1 },
                Capability::RouteRefresh,
                Capability::FourOctetAs(asn),
            ],
        }
    }
}

/// UPDATE message: withdrawals plus (optionally) one advertisement of a set
/// of prefixes sharing path attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UpdateMsg {
    /// Prefixes no longer reachable via the sender.
    pub withdrawn: Vec<Prefix>,
    /// Attributes for the advertised NLRI (must be present when `nlri` is).
    pub attrs: Option<PathAttributes>,
    /// Newly advertised prefixes.
    pub nlri: Vec<Prefix>,
}

impl UpdateMsg {
    /// An announcement of `prefixes` with shared `attrs`.
    pub fn announce(prefixes: Vec<Prefix>, attrs: PathAttributes) -> UpdateMsg {
        UpdateMsg {
            withdrawn: vec![],
            attrs: Some(attrs),
            nlri: prefixes,
        }
    }

    /// A pure withdrawal of `prefixes`.
    pub fn withdraw(prefixes: Vec<Prefix>) -> UpdateMsg {
        UpdateMsg {
            withdrawn: prefixes,
            attrs: None,
            nlri: vec![],
        }
    }

    /// True when the message carries nothing.
    pub fn is_empty(&self) -> bool {
        self.withdrawn.is_empty() && self.nlri.is_empty()
    }

    /// RFC 7606 "treat-as-withdraw" salvage: given the raw bytes of an
    /// UPDATE whose path attributes failed to decode, recover the prefixes
    /// it was talking about without interpreting any attribute *content*.
    /// The attribute block is walked as pure TLV framing (flags, type,
    /// 1- or 2-byte length, skip); the withdrawn and NLRI blocks must parse
    /// as prefixes. Returns a pure withdrawal of every mentioned prefix, or
    /// `None` when the framing itself is broken (header, lengths, prefix
    /// encodings) — those errors still warrant a session reset.
    pub fn salvage_withdraw(bytes: &[u8]) -> Option<UpdateMsg> {
        let mut r = Reader::new(bytes);
        let marker = r.take(16, "marker").ok()?;
        if marker.iter().any(|&b| b != 0xFF) {
            return None;
        }
        let len = r.u16("length").ok()? as usize;
        if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&len) || len != bytes.len() {
            return None;
        }
        if r.u8("type").ok()? != TYPE_UPDATE {
            return None;
        }
        let wd_len = r.u16("withdrawn length").ok()? as usize;
        let mut wd = r.sub(wd_len, "withdrawn routes").ok()?;
        let mut withdrawn = Vec::new();
        while !wd.is_empty() {
            withdrawn.push(wd.nlri_prefix().ok()?);
        }
        let at_len = r.u16("attrs length").ok()? as usize;
        let mut at = r.sub(at_len, "path attributes").ok()?;
        while !at.is_empty() {
            let flags = at.u8("attr flags").ok()?;
            let _ty = at.u8("attr type").ok()?;
            let alen = if flags & 0x10 != 0 {
                at.u16("attr ext len").ok()? as usize
            } else {
                at.u8("attr len").ok()? as usize
            };
            at.take(alen, "attr value").ok()?;
        }
        while !r.is_empty() {
            withdrawn.push(r.nlri_prefix().ok()?);
        }
        Some(UpdateMsg::withdraw(withdrawn))
    }
}

/// NOTIFICATION error codes (RFC 4271 §4.5). Only the codes this
/// implementation can emit are named; others decode as `Other`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifCode {
    /// Message header error.
    MessageHeader,
    /// OPEN message error.
    OpenMessage,
    /// UPDATE message error.
    UpdateMessage,
    /// Hold timer expired.
    HoldTimerExpired,
    /// FSM error.
    FsmError,
    /// Administrative cease.
    Cease,
    /// Unmodeled code.
    Other(u8),
}

impl NotifCode {
    fn to_u8(self) -> u8 {
        match self {
            NotifCode::MessageHeader => 1,
            NotifCode::OpenMessage => 2,
            NotifCode::UpdateMessage => 3,
            NotifCode::HoldTimerExpired => 4,
            NotifCode::FsmError => 5,
            NotifCode::Cease => 6,
            NotifCode::Other(c) => c,
        }
    }

    fn from_u8(c: u8) -> NotifCode {
        match c {
            1 => NotifCode::MessageHeader,
            2 => NotifCode::OpenMessage,
            3 => NotifCode::UpdateMessage,
            4 => NotifCode::HoldTimerExpired,
            5 => NotifCode::FsmError,
            6 => NotifCode::Cease,
            other => NotifCode::Other(other),
        }
    }
}

/// NOTIFICATION message: fatal session error, connection closes after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMsg {
    /// Error code.
    pub code: NotifCode,
    /// Error subcode (0 when unspecific).
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

/// Any BGP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpMessage {
    /// Session open.
    Open(OpenMsg),
    /// Route advertisement/withdrawal.
    Update(UpdateMsg),
    /// Fatal error.
    Notification(NotificationMsg),
    /// Liveness.
    Keepalive,
    /// Re-advertisement request (RFC 2918): the peer asks for the full
    /// Adj-RIB-Out again, e.g. after a policy change.
    RouteRefresh {
        /// Address family (1 = IPv4).
        afi: u16,
        /// Subsequent address family (1 = unicast).
        safi: u8,
    },
}

impl fmt::Display for BgpMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpMessage::Open(o) => write!(f, "OPEN({}, hold {}s)", o.asn, o.hold_time_secs),
            BgpMessage::Update(u) => write!(
                f,
                "UPDATE(+{} -{}{})",
                u.nlri.len(),
                u.withdrawn.len(),
                u.attrs
                    .as_ref()
                    .map(|a| format!(" path [{}]", a.as_path))
                    .unwrap_or_default()
            ),
            BgpMessage::Notification(n) => write!(f, "NOTIFICATION({:?}/{})", n.code, n.subcode),
            BgpMessage::Keepalive => write!(f, "KEEPALIVE"),
            BgpMessage::RouteRefresh { afi, safi } => {
                write!(f, "ROUTE-REFRESH({afi}/{safi})")
            }
        }
    }
}

impl BgpMessage {
    /// Encode to RFC 4271 wire bytes, including the 19-byte header.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Encode into a reusable scratch writer: the writer is cleared first,
    /// and on return holds exactly the wire bytes [`encode`](Self::encode)
    /// would have produced. Every length field is back-patched in place, so
    /// the whole message — sub-blocks included — is written in one pass
    /// with no intermediate buffers; a caller looping over messages pays
    /// for at most one buffer growth, ever.
    pub fn encode_into(&self, w: &mut Writer) {
        w.clear();
        w.bytes(&[0xFF; 16]);
        w.u16(0); // length, patched below
        match self {
            BgpMessage::Open(o) => {
                w.u8(TYPE_OPEN);
                w.u8(o.version);
                let my_as = if o.asn.is_16bit() {
                    o.asn.0 as u16
                } else {
                    Asn::TRANS.0 as u16
                };
                w.u16(my_as);
                w.u16(o.hold_time_secs);
                w.u32(o.router_id.0);
                // Optional parameters: one capabilities parameter.
                if o.capabilities.is_empty() {
                    w.u8(0);
                } else {
                    let opt_pos = w.len();
                    w.u8(0); // total opt params length, patched below
                    w.u8(2); // param type: capabilities
                    let caps_pos = w.len();
                    w.u8(0); // capabilities length, patched below
                    for c in &o.capabilities {
                        encode_capability(w, c);
                    }
                    let caps_len = w.len() - caps_pos - 1;
                    w.patch_u8(caps_pos, caps_len as u8);
                    w.patch_u8(opt_pos, (caps_len + 2) as u8);
                }
            }
            BgpMessage::Update(u) => {
                w.u8(TYPE_UPDATE);
                let wd_pos = w.len();
                w.u16(0); // withdrawn routes length, patched below
                for p in &u.withdrawn {
                    w.nlri_prefix(*p);
                }
                w.patch_u16(wd_pos, (w.len() - wd_pos - 2) as u16);
                let at_pos = w.len();
                w.u16(0); // total path attribute length, patched below
                if let Some(attrs) = &u.attrs {
                    attrs.encode(w);
                }
                w.patch_u16(at_pos, (w.len() - at_pos - 2) as u16);
                for p in &u.nlri {
                    w.nlri_prefix(*p);
                }
            }
            BgpMessage::Notification(n) => {
                w.u8(TYPE_NOTIFICATION);
                w.u8(n.code.to_u8());
                w.u8(n.subcode);
                w.bytes(&n.data);
            }
            BgpMessage::Keepalive => {
                w.u8(TYPE_KEEPALIVE);
            }
            BgpMessage::RouteRefresh { afi, safi } => {
                w.u8(TYPE_ROUTE_REFRESH);
                w.u16(*afi);
                w.u8(0);
                w.u8(*safi);
            }
        }
        let len = w.len();
        assert!(len <= MAX_MESSAGE_LEN, "message too long: {len}");
        w.patch_u16(16, len as u16);
    }

    /// Decode one message from wire bytes. The buffer must contain exactly
    /// one message.
    pub fn decode(bytes: &[u8]) -> Result<BgpMessage, CodecError> {
        let mut r = Reader::new(bytes);
        let marker = r.take(16, "marker")?;
        if marker.iter().any(|&b| b != 0xFF) {
            return Err(CodecError::BadMarker);
        }
        let len = r.u16("length")?;
        if (len as usize) < HEADER_LEN || len as usize > MAX_MESSAGE_LEN {
            return Err(CodecError::BadLength(len));
        }
        if len as usize != bytes.len() {
            return Err(CodecError::BadLength(len));
        }
        let ty = r.u8("type")?;
        let msg = match ty {
            TYPE_OPEN => {
                let version = r.u8("version")?;
                if version != 4 {
                    return Err(CodecError::BadVersion(version));
                }
                let my_as = r.u16("my AS")?;
                let hold = r.u16("hold time")?;
                let router_id = RouterId(r.u32("router id")?);
                let opt_len = r.u8("opt params len")? as usize;
                let mut opts = r.sub(opt_len, "opt params")?;
                let mut capabilities = Vec::new();
                while !opts.is_empty() {
                    let ptype = opts.u8("param type")?;
                    let plen = opts.u8("param len")? as usize;
                    let mut body = opts.sub(plen, "param body")?;
                    if ptype == 2 {
                        while !body.is_empty() {
                            capabilities.push(decode_capability(&mut body)?);
                        }
                    }
                    // Non-capability parameters are ignored (deprecated auth).
                }
                // Honor the 4-octet-AS capability for the true ASN.
                let asn = capabilities
                    .iter()
                    .find_map(|c| match c {
                        Capability::FourOctetAs(a) => Some(*a),
                        _ => None,
                    })
                    .unwrap_or(Asn(my_as as u32));
                BgpMessage::Open(OpenMsg {
                    version,
                    asn,
                    hold_time_secs: hold,
                    router_id,
                    capabilities,
                })
            }
            TYPE_UPDATE => {
                let wd_len = r.u16("withdrawn length")? as usize;
                let mut wd = r.sub(wd_len, "withdrawn routes")?;
                let mut withdrawn = Vec::new();
                while !wd.is_empty() {
                    withdrawn.push(wd.nlri_prefix()?);
                }
                let at_len = r.u16("attrs length")? as usize;
                let mut at = r.sub(at_len, "path attributes")?;
                let attrs = if at_len == 0 {
                    None
                } else {
                    Some(PathAttributes::decode(&mut at)?)
                };
                let mut nlri = Vec::new();
                while !r.is_empty() {
                    nlri.push(r.nlri_prefix()?);
                }
                if !nlri.is_empty() && attrs.is_none() {
                    return Err(CodecError::BadAttribute {
                        code: 0,
                        reason: "NLRI without path attributes",
                    });
                }
                BgpMessage::Update(UpdateMsg {
                    withdrawn,
                    attrs,
                    nlri,
                })
            }
            TYPE_NOTIFICATION => {
                let code = NotifCode::from_u8(r.u8("notif code")?);
                let subcode = r.u8("notif subcode")?;
                let data = r.take(r.remaining(), "notif data")?.to_vec();
                BgpMessage::Notification(NotificationMsg {
                    code,
                    subcode,
                    data,
                })
            }
            TYPE_KEEPALIVE => {
                if len as usize != HEADER_LEN {
                    return Err(CodecError::BadLength(len));
                }
                BgpMessage::Keepalive
            }
            TYPE_ROUTE_REFRESH => {
                let afi = r.u16("refresh afi")?;
                let _res = r.u8("refresh reserved")?;
                let safi = r.u8("refresh safi")?;
                BgpMessage::RouteRefresh { afi, safi }
            }
            other => return Err(CodecError::BadMessageType(other)),
        };
        if !r.is_empty() {
            return Err(CodecError::TrailingBytes(r.remaining()));
        }
        Ok(msg)
    }
}

fn encode_capability(w: &mut Writer, c: &Capability) {
    match c {
        Capability::MultiProtocol { afi, safi } => {
            w.u8(1);
            w.u8(4);
            w.u16(*afi);
            w.u8(0);
            w.u8(*safi);
        }
        Capability::RouteRefresh => {
            w.u8(2);
            w.u8(0);
        }
        Capability::FourOctetAs(asn) => {
            w.u8(65);
            w.u8(4);
            w.u32(asn.0);
        }
        Capability::GracefulRestart { restart_time_secs } => {
            w.u8(64);
            w.u8(2);
            // Flags nibble (restart-state etc.) always zero; 12-bit time.
            w.u16(restart_time_secs & 0x0FFF);
        }
        Capability::Unknown { code, value } => {
            w.u8(*code);
            w.u8(value.len() as u8);
            w.bytes(value);
        }
    }
}

fn decode_capability(r: &mut Reader<'_>) -> Result<Capability, CodecError> {
    let code = r.u8("cap code")?;
    let len = r.u8("cap len")? as usize;
    let mut body = r.sub(len, "cap body")?;
    Ok(match (code, len) {
        (1, 4) => {
            let afi = body.u16("mp afi")?;
            let _res = body.u8("mp reserved")?;
            let safi = body.u8("mp safi")?;
            Capability::MultiProtocol { afi, safi }
        }
        (2, 0) => Capability::RouteRefresh,
        (64, 2) => Capability::GracefulRestart {
            restart_time_secs: body.u16("gr time")? & 0x0FFF,
        },
        (65, 4) => Capability::FourOctetAs(Asn(body.u32("as4")?)),
        _ => Capability::Unknown {
            code,
            value: body.take(len, "cap raw")?.to_vec(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::pfx;
    use std::net::Ipv4Addr;

    fn roundtrip(m: &BgpMessage) -> BgpMessage {
        let bytes = m.encode();
        BgpMessage::decode(&bytes).expect("decode")
    }

    #[test]
    fn keepalive_roundtrip_is_19_bytes() {
        let m = BgpMessage::Keepalive;
        let bytes = m.encode();
        assert_eq!(bytes.len(), HEADER_LEN);
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn open_roundtrip_16bit_as() {
        let m = BgpMessage::Open(OpenMsg::standard(
            Asn(65001),
            RouterId::from_ip(Ipv4Addr::new(10, 0, 0, 1)),
            90,
        ));
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn open_roundtrip_32bit_as_uses_as_trans() {
        let big = Asn(4_200_000_001);
        let m = BgpMessage::Open(OpenMsg::standard(
            big,
            RouterId::from_ip(Ipv4Addr::new(10, 0, 0, 2)),
            180,
        ));
        let bytes = m.encode();
        // The 2-octet field (at offset 20..22) must carry AS_TRANS.
        assert_eq!(
            u16::from_be_bytes([bytes[20], bytes[21]]) as u32,
            Asn::TRANS.0
        );
        // But decoding recovers the true ASN from the capability.
        match roundtrip(&m) {
            BgpMessage::Open(o) => assert_eq!(o.asn, big),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_announce_roundtrip() {
        let mut attrs = PathAttributes::originate(Ipv4Addr::new(10, 0, 0, 1));
        attrs.as_path = crate::attrs::AsPath::from_seq([65001, 65002]);
        let m = BgpMessage::Update(UpdateMsg::announce(
            vec![pfx("10.1.0.0/16"), pfx("10.2.0.0/16")],
            attrs,
        ));
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn update_withdraw_roundtrip() {
        let m = BgpMessage::Update(UpdateMsg::withdraw(vec![pfx("10.1.0.0/16")]));
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn update_mixed_roundtrip() {
        let attrs = PathAttributes::originate(Ipv4Addr::new(192, 0, 2, 1));
        let m = BgpMessage::Update(UpdateMsg {
            withdrawn: vec![pfx("198.51.100.0/24")],
            attrs: Some(attrs),
            nlri: vec![pfx("203.0.113.0/24")],
        });
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn notification_roundtrip() {
        let m = BgpMessage::Notification(NotificationMsg {
            code: NotifCode::HoldTimerExpired,
            subcode: 0,
            data: vec![9, 9],
        });
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn route_refresh_roundtrip() {
        let m = BgpMessage::RouteRefresh { afi: 1, safi: 1 };
        let bytes = m.encode();
        assert_eq!(bytes.len(), HEADER_LEN + 4);
        assert_eq!(roundtrip(&m), m);
        assert_eq!(m.to_string(), "ROUTE-REFRESH(1/1)");
    }

    #[test]
    fn bad_marker_rejected() {
        let mut bytes = BgpMessage::Keepalive.encode();
        bytes[3] = 0x00;
        assert_eq!(BgpMessage::decode(&bytes), Err(CodecError::BadMarker));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut bytes = BgpMessage::Keepalive.encode();
        bytes[17] = 100; // claim a longer message
        assert!(matches!(
            BgpMessage::decode(&bytes),
            Err(CodecError::BadLength(_))
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = BgpMessage::Keepalive.encode();
        bytes[18] = 9;
        assert_eq!(
            BgpMessage::decode(&bytes),
            Err(CodecError::BadMessageType(9))
        );
    }

    #[test]
    fn bad_version_rejected() {
        let m = BgpMessage::Open(OpenMsg::standard(Asn(1), RouterId(1), 0));
        let mut bytes = m.encode();
        bytes[19] = 3; // version field
        assert_eq!(BgpMessage::decode(&bytes), Err(CodecError::BadVersion(3)));
    }

    #[test]
    fn nlri_without_attrs_rejected() {
        // Hand-craft an UPDATE with NLRI but zero attribute length.
        let mut w = Writer::new();
        w.bytes(&[0xFF; 16]);
        w.u16(0);
        w.u8(TYPE_UPDATE);
        w.u16(0); // withdrawn len
        w.u16(0); // attrs len
        w.nlri_prefix(pfx("10.0.0.0/8"));
        let len = w.len();
        w.patch_u16(16, len as u16);
        let bytes = w.into_bytes();
        assert!(BgpMessage::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = BgpMessage::Keepalive.encode();
        for cut in 0..bytes.len() {
            assert!(
                BgpMessage::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn display_is_compact() {
        let m = BgpMessage::Update(UpdateMsg::withdraw(vec![pfx("10.0.0.0/8")]));
        assert_eq!(m.to_string(), "UPDATE(+0 -1)");
    }
}
