//! Router configuration.
//!
//! Defaults follow the Quagga configuration the paper's framework generates:
//! 30 s eBGP MRAI (advertisement-interval) with RFC 4271 §9.2.1.1 jitter,
//! millisecond-scale update processing delays, keepalives disabled in
//! experiments (hold negotiation still works when enabled).

use std::net::Ipv4Addr;

use bgpsdn_netsim::{LinkId, NodeId, SimDuration};

use crate::decision::DecisionConfig;
use crate::policy::{PolicyMode, Relationship, RouteMap};
use crate::types::{Asn, Prefix, RouterId};

/// Protocol timing knobs.
#[derive(Debug, Clone)]
pub struct TimingConfig {
    /// Minimum Route Advertisement Interval for eBGP sessions.
    pub mrai: SimDuration,
    /// MRAI jitter window as fractions of the base (RFC: 0.75–1.0).
    pub mrai_jitter: (f64, f64),
    /// Whether explicit withdrawals wait for MRAI too (RFC 4271 says the
    /// interval applies to advertisements only; Quagga queues both — flip
    /// this to emulate that).
    pub mrai_on_withdrawals: bool,
    /// Uniform per-UPDATE processing delay window (router CPU model).
    pub processing_delay: (SimDuration, SimDuration),
    /// Proposed hold time in seconds; 0 disables keepalive/hold entirely.
    pub hold_time_secs: u16,
    /// RFC 4724 graceful restart: advertise the capability with this
    /// restart time and retain a dead peer's routes as stale for the
    /// negotiated window (min of both sides) after a hold-timer expiry.
    /// 0 disables GR entirely (the default).
    pub graceful_restart_secs: u16,
    /// Keepalive interval as a fraction of hold (RFC suggests 1/3).
    pub keepalive_divisor: u32,
    /// Maximum random stagger applied to initial session bring-up.
    pub connect_stagger: SimDuration,
    /// Base delay before a failed session is retried (exponential backoff).
    pub connect_retry: SimDuration,
    /// Give up re-trying a session after this many consecutive failures.
    pub max_connect_retries: u32,
    /// Sender-side loop detection (RFC 4271 §9.1.3 MAY): suppress
    /// advertising a route back to the peer it was learned from. Quagga does
    /// not do this — the receiver's AS_PATH check discards the update — and
    /// the slow Tdown path-exploration behaviour the paper measures depends
    /// on those MRAI-paced re-advertisements, so the default is off.
    pub sender_side_loop_detection: bool,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            mrai: SimDuration::from_secs(30),
            mrai_jitter: (0.75, 1.0),
            mrai_on_withdrawals: false,
            processing_delay: (SimDuration::from_millis(1), SimDuration::from_millis(10)),
            hold_time_secs: 0,
            graceful_restart_secs: 0,
            keepalive_divisor: 3,
            connect_stagger: SimDuration::from_millis(100),
            connect_retry: SimDuration::from_secs(1),
            max_connect_retries: 5,
            sender_side_loop_detection: false,
        }
    }
}

impl TimingConfig {
    /// Timing with a specific MRAI and everything else default.
    pub fn with_mrai(mrai: SimDuration) -> Self {
        TimingConfig {
            mrai,
            ..Default::default()
        }
    }
}

/// One configured neighbor.
#[derive(Debug, Clone)]
pub struct NeighborConfig {
    /// Logical session endpoint (the peer's node id).
    pub peer: NodeId,
    /// Physical link the session runs over.
    pub link: LinkId,
    /// Expected remote ASN.
    pub remote_asn: Asn,
    /// Business relationship of the neighbor relative to this router.
    pub relationship: Relationship,
    /// Per-neighbor MRAI override.
    pub mrai_override: Option<SimDuration>,
    /// Extra import policy applied after relationship defaults.
    pub import_map: Option<RouteMap>,
    /// Extra export policy applied after relationship filtering.
    pub export_map: Option<RouteMap>,
    /// Maximum-prefix guardrail: tear the session down (NOTIFICATION
    /// Cease) when the peer advertises more prefixes than this.
    pub max_prefixes: Option<usize>,
}

impl NeighborConfig {
    /// A neighbor with default policy hooks.
    pub fn new(peer: NodeId, link: LinkId, remote_asn: Asn, relationship: Relationship) -> Self {
        NeighborConfig {
            peer,
            link,
            remote_asn,
            relationship,
            mrai_override: None,
            import_map: None,
            export_map: None,
            max_prefixes: None,
        }
    }

    /// A monitoring session toward a route collector: export-only and not
    /// MRAI-throttled, so measurements see updates promptly.
    pub fn monitor(peer: NodeId, link: LinkId, remote_asn: Asn) -> Self {
        NeighborConfig {
            peer,
            link,
            remote_asn,
            relationship: Relationship::Monitor,
            mrai_override: Some(SimDuration::ZERO),
            import_map: None,
            export_map: None,
            max_prefixes: None,
        }
    }
}

/// Complete configuration of one BGP router (one AS in the paper's
/// one-device-per-AS abstraction).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// This router's AS number.
    pub asn: Asn,
    /// BGP identifier.
    pub router_id: RouterId,
    /// NEXT_HOP address used in advertisements.
    pub next_hop: Ipv4Addr,
    /// Policy regime.
    pub mode: PolicyMode,
    /// Decision-process knobs.
    pub decision: DecisionConfig,
    /// Timers.
    pub timing: TimingConfig,
    /// Sessions to run.
    pub neighbors: Vec<NeighborConfig>,
    /// Prefixes originated at startup.
    pub originate: Vec<Prefix>,
    /// Route-flap damping (RFC 2439); `None` disables it (the default, as
    /// in modern deployments — enable for the damping ablation).
    pub damping: Option<crate::damping::DampingConfig>,
}

impl RouterConfig {
    /// Minimal config: derive router-id and next-hop from the ASN
    /// (`10.255.x.y` scheme), no neighbors yet.
    pub fn new(asn: Asn) -> Self {
        let ip = Ipv4Addr::new(10, 255, (asn.0 >> 8) as u8, asn.0 as u8);
        RouterConfig {
            asn,
            router_id: RouterId::from_ip(ip),
            next_hop: ip,
            mode: PolicyMode::AllPermit,
            decision: DecisionConfig::default(),
            timing: TimingConfig::default(),
            neighbors: Vec::new(),
            originate: Vec::new(),
            damping: None,
        }
    }

    /// Add a neighbor (builder style).
    pub fn with_neighbor(mut self, n: NeighborConfig) -> Self {
        self.neighbors.push(n);
        self
    }

    /// Originate a prefix at startup (builder style).
    pub fn with_origin(mut self, p: Prefix) -> Self {
        self.originate.push(p);
        self
    }

    /// Set the policy mode (builder style).
    pub fn with_mode(mut self, mode: PolicyMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set timing (builder style).
    pub fn with_timing(mut self, t: TimingConfig) -> Self {
        self.timing = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_timing_matches_quagga_profile() {
        let t = TimingConfig::default();
        assert_eq!(t.mrai, SimDuration::from_secs(30));
        assert_eq!(t.mrai_jitter, (0.75, 1.0));
        assert!(!t.mrai_on_withdrawals);
        assert_eq!(t.hold_time_secs, 0, "keepalives off by default");
        assert_eq!(t.graceful_restart_secs, 0, "GR off by default");
    }

    #[test]
    fn router_config_derives_identity() {
        let c = RouterConfig::new(Asn(0x0102));
        assert_eq!(c.next_hop, Ipv4Addr::new(10, 255, 1, 2));
        assert_eq!(c.router_id.as_ip(), Ipv4Addr::new(10, 255, 1, 2));
    }

    #[test]
    fn builder_chains() {
        let c = RouterConfig::new(Asn(1))
            .with_mode(PolicyMode::GaoRexford)
            .with_origin(crate::types::pfx("10.1.0.0/16"))
            .with_neighbor(NeighborConfig::new(
                NodeId(2),
                LinkId(0),
                Asn(2),
                Relationship::Peer,
            ))
            .with_timing(TimingConfig::with_mrai(SimDuration::from_secs(5)));
        assert_eq!(c.mode, PolicyMode::GaoRexford);
        assert_eq!(c.neighbors.len(), 1);
        assert_eq!(c.originate.len(), 1);
        assert_eq!(c.timing.mrai, SimDuration::from_secs(5));
    }

    #[test]
    fn monitor_neighbor_unthrottled() {
        let n = NeighborConfig::monitor(NodeId(9), LinkId(3), Asn(65535));
        assert_eq!(n.relationship, Relationship::Monitor);
        assert_eq!(n.mrai_override, Some(SimDuration::ZERO));
    }
}
