//! Routing policy: business relationships (Gao–Rexford) and route maps.
//!
//! The framework configures neighbors with a [`Relationship`] (the paper's
//! "customer-to-provider and peer-to-peer relationships" templates). Under
//! [`PolicyMode::GaoRexford`] the classic export rule applies: routes learned
//! from a customer are exported to everyone; routes learned from a peer or a
//! provider are exported only to customers. [`PolicyMode::AllPermit`] turns
//! every AS into a transit AS (the configuration of the paper's clique
//! experiments, where path exploration requires re-export).
//!
//! Route maps provide the per-neighbor match/set hooks Quagga-style
//! configurations use for overrides.

use crate::attrs::{Community, PathAttributes};
use crate::rib::RouteSource;
use crate::types::{Asn, Prefix};

/// Business relationship of a neighbor, from the configuring router's point
/// of view: "this neighbor is my …".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// Neighbor pays me: widest import preference, export everything.
    Customer,
    /// Settlement-free peer.
    Peer,
    /// I pay this neighbor.
    Provider,
    /// A passive monitoring session (route collector): we export everything
    /// and import nothing, and it never counts as a real neighbor for
    /// policy classification.
    Monitor,
}

impl Relationship {
    /// The relationship as seen from the other end of the session.
    pub fn inverse(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Provider => Relationship::Customer,
            Relationship::Peer => Relationship::Peer,
            Relationship::Monitor => Relationship::Monitor,
        }
    }
}

/// Overall policy regime of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyMode {
    /// Accept and re-export everything (full transit). LOCAL_PREF is the
    /// decision default everywhere.
    AllPermit,
    /// Gao–Rexford import preferences and export filtering.
    GaoRexford,
}

/// LOCAL_PREF assigned on import by relationship under Gao–Rexford.
/// Customer routes are most preferred, then peers, then providers.
pub fn import_local_pref(mode: PolicyMode, rel: Relationship) -> Option<u32> {
    match mode {
        PolicyMode::AllPermit => None, // leave at decision default
        PolicyMode::GaoRexford => Some(match rel {
            Relationship::Customer => 130,
            Relationship::Peer => 110,
            Relationship::Provider => 90,
            Relationship::Monitor => 0, // imports are rejected anyway
        }),
    }
}

/// Whether imports from a neighbor with this relationship are accepted at
/// all (monitor sessions are export-only).
pub fn import_allowed(rel: Relationship) -> bool {
    rel != Relationship::Monitor
}

/// The Gao–Rexford export rule.
///
/// `learned_from` is how the best route entered this AS (`None` = locally
/// originated), `to` is the neighbor we are exporting to.
pub fn export_allowed(
    mode: PolicyMode,
    learned_from: Option<Relationship>,
    to: Relationship,
) -> bool {
    // Everything is always exported to monitors: that's their purpose.
    if to == Relationship::Monitor {
        return true;
    }
    match mode {
        PolicyMode::AllPermit => true,
        PolicyMode::GaoRexford => match learned_from {
            // Own routes and customer routes go everywhere.
            None | Some(Relationship::Customer) => true,
            // Peer/provider routes only go down to customers.
            Some(Relationship::Peer) | Some(Relationship::Provider) => to == Relationship::Customer,
            Some(Relationship::Monitor) => false, // never re-export monitor input
        },
    }
}

/// Helper: relationship class of a Loc-RIB source given the neighbor table.
pub fn source_relationship(
    source: RouteSource,
    rel_of_peer: impl Fn(usize) -> Relationship,
) -> Option<Relationship> {
    match source {
        RouteSource::Local => None,
        RouteSource::Peer(i) => Some(rel_of_peer(i)),
    }
}

/// A match condition inside a route-map rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchCond {
    /// Exact prefix match.
    PrefixExact(Prefix),
    /// Prefix equal to or more specific than the given one.
    PrefixWithin(Prefix),
    /// AS_PATH mentions this AS anywhere.
    AsPathContains(Asn),
    /// Route was originated by this AS.
    OriginatedBy(Asn),
    /// Carries this community.
    CommunityHas(Community),
}

impl MatchCond {
    fn matches(&self, prefix: Prefix, attrs: &PathAttributes, my_asn: Asn) -> bool {
        match self {
            MatchCond::PrefixExact(p) => *p == prefix,
            MatchCond::PrefixWithin(p) => p.covers(prefix),
            MatchCond::AsPathContains(a) => attrs.as_path.contains(*a),
            MatchCond::OriginatedBy(a) => attrs.as_path.origin_asn().unwrap_or(my_asn) == *a,
            MatchCond::CommunityHas(c) => attrs.communities.contains(c),
        }
    }
}

/// A set action inside a route-map rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetAction {
    /// Overwrite LOCAL_PREF.
    LocalPref(u32),
    /// Overwrite MED.
    Med(u32),
    /// Prepend own (or any) ASN `n` extra times.
    Prepend(Asn, u8),
    /// Attach a community.
    AddCommunity(Community),
    /// Remove all communities.
    StripCommunities,
}

impl SetAction {
    fn apply(&self, attrs: &mut PathAttributes) {
        match self {
            SetAction::LocalPref(v) => attrs.local_pref = Some(*v),
            SetAction::Med(v) => attrs.med = Some(*v),
            SetAction::Prepend(asn, n) => attrs.as_path.prepend_n(*asn, *n as usize),
            SetAction::AddCommunity(c) => {
                if !attrs.communities.contains(c) {
                    attrs.communities.push(*c);
                }
            }
            SetAction::StripCommunities => attrs.communities.clear(),
        }
    }
}

/// One rule: if all conditions match, apply the actions and permit/deny.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// All must match (empty = match anything).
    pub conds: Vec<MatchCond>,
    /// Applied when the rule matches and permits.
    pub actions: Vec<SetAction>,
    /// Permit (true) or deny (false) on match.
    pub permit: bool,
}

/// An ordered route map. The first matching rule decides; routes matching no
/// rule follow `default_permit`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteMap {
    /// Ordered rules.
    pub rules: Vec<Rule>,
    /// Disposition when no rule matches.
    pub default_permit: bool,
}

impl Default for RouteMap {
    fn default() -> Self {
        RouteMap {
            rules: vec![],
            default_permit: true,
        }
    }
}

impl RouteMap {
    /// A permit-all map.
    pub fn permit_all() -> RouteMap {
        RouteMap::default()
    }

    /// A deny-all map.
    pub fn deny_all() -> RouteMap {
        RouteMap {
            rules: vec![],
            default_permit: false,
        }
    }

    /// Apply to a route. Returns the transformed attributes or `None` when
    /// denied. The input attributes are cloned only on permit.
    pub fn apply(
        &self,
        prefix: Prefix,
        attrs: &PathAttributes,
        my_asn: Asn,
    ) -> Option<PathAttributes> {
        for rule in &self.rules {
            if rule.conds.iter().all(|c| c.matches(prefix, attrs, my_asn)) {
                if !rule.permit {
                    return None;
                }
                let mut out = attrs.clone();
                for a in &rule.actions {
                    a.apply(&mut out);
                }
                return Some(out);
            }
        }
        if self.default_permit {
            Some(attrs.clone())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;
    use crate::types::pfx;
    use std::net::Ipv4Addr;

    #[test]
    fn relationship_inverse() {
        assert_eq!(Relationship::Customer.inverse(), Relationship::Provider);
        assert_eq!(Relationship::Provider.inverse(), Relationship::Customer);
        assert_eq!(Relationship::Peer.inverse(), Relationship::Peer);
        assert_eq!(Relationship::Monitor.inverse(), Relationship::Monitor);
    }

    #[test]
    fn gao_rexford_local_prefs_ordered() {
        let m = PolicyMode::GaoRexford;
        let c = import_local_pref(m, Relationship::Customer).unwrap();
        let p = import_local_pref(m, Relationship::Peer).unwrap();
        let pr = import_local_pref(m, Relationship::Provider).unwrap();
        assert!(c > p && p > pr);
        assert_eq!(
            import_local_pref(PolicyMode::AllPermit, Relationship::Peer),
            None
        );
    }

    #[test]
    fn monitor_sessions_are_export_only() {
        assert!(!import_allowed(Relationship::Monitor));
        assert!(import_allowed(Relationship::Peer));
        for lf in [
            None,
            Some(Relationship::Customer),
            Some(Relationship::Peer),
            Some(Relationship::Provider),
        ] {
            assert!(export_allowed(
                PolicyMode::GaoRexford,
                lf,
                Relationship::Monitor
            ));
        }
    }

    #[test]
    fn gao_rexford_export_matrix() {
        let m = PolicyMode::GaoRexford;
        use Relationship::*;
        // Own routes go everywhere.
        assert!(export_allowed(m, None, Customer));
        assert!(export_allowed(m, None, Peer));
        assert!(export_allowed(m, None, Provider));
        // Customer routes go everywhere.
        assert!(export_allowed(m, Some(Customer), Customer));
        assert!(export_allowed(m, Some(Customer), Peer));
        assert!(export_allowed(m, Some(Customer), Provider));
        // Peer routes: only to customers.
        assert!(export_allowed(m, Some(Peer), Customer));
        assert!(!export_allowed(m, Some(Peer), Peer));
        assert!(!export_allowed(m, Some(Peer), Provider));
        // Provider routes: only to customers.
        assert!(export_allowed(m, Some(Provider), Customer));
        assert!(!export_allowed(m, Some(Provider), Peer));
        assert!(!export_allowed(m, Some(Provider), Provider));
        // Monitor input never re-exported.
        assert!(!export_allowed(m, Some(Monitor), Customer));
    }

    #[test]
    fn all_permit_exports_everything() {
        use Relationship::*;
        for lf in [None, Some(Peer), Some(Provider), Some(Customer)] {
            for to in [Customer, Peer, Provider] {
                assert!(export_allowed(PolicyMode::AllPermit, lf, to));
            }
        }
    }

    fn attrs(path: &[u32]) -> PathAttributes {
        let mut a = PathAttributes::originate(Ipv4Addr::new(10, 0, 0, 1));
        a.as_path = AsPath::from_seq(path.iter().copied());
        a
    }

    #[test]
    fn route_map_first_match_wins() {
        let map = RouteMap {
            rules: vec![
                Rule {
                    conds: vec![MatchCond::PrefixExact(pfx("10.0.0.0/8"))],
                    actions: vec![SetAction::LocalPref(200)],
                    permit: true,
                },
                Rule {
                    conds: vec![],
                    actions: vec![],
                    permit: false,
                },
            ],
            default_permit: true,
        };
        let a = attrs(&[1]);
        let hit = map.apply(pfx("10.0.0.0/8"), &a, Asn(9)).unwrap();
        assert_eq!(hit.local_pref, Some(200));
        assert!(
            map.apply(pfx("20.0.0.0/8"), &a, Asn(9)).is_none(),
            "caught by deny-any"
        );
    }

    #[test]
    fn route_map_conditions_are_conjunctive() {
        let map = RouteMap {
            rules: vec![Rule {
                conds: vec![
                    MatchCond::PrefixWithin(pfx("10.0.0.0/8")),
                    MatchCond::AsPathContains(Asn(7)),
                ],
                actions: vec![SetAction::AddCommunity(Community::new(1, 1))],
                permit: true,
            }],
            default_permit: false,
        };
        let with7 = attrs(&[5, 7]);
        let without7 = attrs(&[5, 6]);
        assert!(map.apply(pfx("10.1.0.0/16"), &with7, Asn(9)).is_some());
        assert!(map.apply(pfx("10.1.0.0/16"), &without7, Asn(9)).is_none());
        assert!(map.apply(pfx("11.0.0.0/8"), &with7, Asn(9)).is_none());
    }

    #[test]
    fn set_actions_apply() {
        let map = RouteMap {
            rules: vec![Rule {
                conds: vec![],
                actions: vec![
                    SetAction::Med(55),
                    SetAction::Prepend(Asn(9), 2),
                    SetAction::AddCommunity(Community::new(9, 1)),
                ],
                permit: true,
            }],
            default_permit: true,
        };
        let a = attrs(&[1]);
        let out = map.apply(pfx("10.0.0.0/8"), &a, Asn(9)).unwrap();
        assert_eq!(out.med, Some(55));
        assert_eq!(out.as_path.flatten(), vec![Asn(9), Asn(9), Asn(1)]);
        assert_eq!(out.communities, vec![Community::new(9, 1)]);
    }

    #[test]
    fn strip_communities_and_dedup() {
        let mut a = attrs(&[1]);
        a.communities = vec![Community::new(1, 1)];
        let strip = RouteMap {
            rules: vec![Rule {
                conds: vec![MatchCond::CommunityHas(Community::new(1, 1))],
                actions: vec![SetAction::StripCommunities],
                permit: true,
            }],
            default_permit: true,
        };
        let out = strip.apply(pfx("10.0.0.0/8"), &a, Asn(9)).unwrap();
        assert!(out.communities.is_empty());

        // AddCommunity is idempotent.
        let add = RouteMap {
            rules: vec![Rule {
                conds: vec![],
                actions: vec![
                    SetAction::AddCommunity(Community::new(2, 2)),
                    SetAction::AddCommunity(Community::new(2, 2)),
                ],
                permit: true,
            }],
            default_permit: true,
        };
        let out = add.apply(pfx("10.0.0.0/8"), &a, Asn(9)).unwrap();
        assert_eq!(
            out.communities
                .iter()
                .filter(|c| **c == Community::new(2, 2))
                .count(),
            1
        );
    }

    #[test]
    fn originated_by_matches_last_asn() {
        let map = RouteMap {
            rules: vec![Rule {
                conds: vec![MatchCond::OriginatedBy(Asn(3))],
                actions: vec![],
                permit: true,
            }],
            default_permit: false,
        };
        assert!(map
            .apply(pfx("10.0.0.0/8"), &attrs(&[1, 2, 3]), Asn(9))
            .is_some());
        assert!(map
            .apply(pfx("10.0.0.0/8"), &attrs(&[3, 2, 1]), Asn(9))
            .is_none());
    }

    #[test]
    fn deny_all_and_permit_all() {
        let a = attrs(&[1]);
        assert!(RouteMap::permit_all()
            .apply(pfx("1.0.0.0/8"), &a, Asn(9))
            .is_some());
        assert!(RouteMap::deny_all()
            .apply(pfx("1.0.0.0/8"), &a, Asn(9))
            .is_none());
    }
}
