//! Routing Information Bases: Adj-RIB-In, Loc-RIB and Adj-RIB-Out.
//!
//! All maps are `BTreeMap`s so iteration order — and therefore everything
//! downstream of it, including which UPDATE goes out first — is
//! deterministic.

use std::collections::BTreeMap;

use bgpsdn_netsim::SimTime;

use crate::attrs::PathAttributes;
use crate::inline::InlineVec;
use crate::types::{Prefix, RouterId};

/// Index of a neighbor in the router's configuration, used as the peer key
/// throughout the RIBs.
pub type PeerIdx = usize;

/// Where a Loc-RIB route came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteSource {
    /// Locally originated (configured network statement).
    Local,
    /// Learned from the neighbor with this index.
    Peer(PeerIdx),
}

/// A route as stored in Adj-RIB-In.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibInEntry {
    /// Path attributes exactly as accepted by import policy.
    pub attrs: PathAttributes,
    /// Router-id of the advertising peer (decision tie-break).
    pub peer_router_id: RouterId,
    /// When the route was (last) received.
    pub learned_at: SimTime,
}

/// Per-prefix, per-peer store of accepted routes.
#[derive(Debug, Default)]
pub struct AdjRibIn {
    routes: BTreeMap<Prefix, BTreeMap<PeerIdx, RibInEntry>>,
}

impl AdjRibIn {
    /// Insert or replace the peer's route for a prefix. Returns true when
    /// this changed stored state (new route or different attributes). A
    /// re-advertisement with identical attributes is not a change, but it
    /// still refreshes `learned_at` — graceful restart distinguishes
    /// stale-retained routes from re-announced ones by that timestamp.
    pub fn insert(&mut self, prefix: Prefix, peer: PeerIdx, entry: RibInEntry) -> bool {
        let slot = self.routes.entry(prefix).or_default();
        match slot.get_mut(&peer) {
            Some(old) if old.attrs == entry.attrs => {
                old.learned_at = entry.learned_at;
                old.peer_router_id = entry.peer_router_id;
                false
            }
            _ => {
                slot.insert(peer, entry);
                true
            }
        }
    }

    /// Remove the peer's route for a prefix. Returns true when a route was
    /// actually removed.
    pub fn remove(&mut self, prefix: Prefix, peer: PeerIdx) -> bool {
        if let Some(slot) = self.routes.get_mut(&prefix) {
            let removed = slot.remove(&peer).is_some();
            if slot.is_empty() {
                self.routes.remove(&prefix);
            }
            removed
        } else {
            false
        }
    }

    /// Remove every route learned from `peer` (session reset). Returns the
    /// affected prefixes; sessions carrying few routes (the common clique
    /// case) stay allocation-free.
    pub fn remove_peer(&mut self, peer: PeerIdx) -> InlineVec<Prefix, 8> {
        let mut affected = InlineVec::new();
        self.routes.retain(|prefix, slot| {
            if slot.remove(&peer).is_some() {
                affected.push(*prefix);
            }
            !slot.is_empty()
        });
        affected
    }

    /// Remove every route learned from `peer` that was last received
    /// before `cutoff` — the RFC 4724 stale flush at the end of a graceful
    /// restart window: anything the restarted peer re-announced carries a
    /// fresh `learned_at` and survives; anything it didn't is stale and
    /// goes. Returns the affected prefixes.
    pub fn flush_stale(&mut self, peer: PeerIdx, cutoff: SimTime) -> InlineVec<Prefix, 8> {
        let mut affected = InlineVec::new();
        self.routes.retain(|prefix, slot| {
            if let Some(e) = slot.get(&peer) {
                if e.learned_at < cutoff {
                    slot.remove(&peer);
                    affected.push(*prefix);
                }
            }
            !slot.is_empty()
        });
        affected
    }

    /// Candidate routes for one prefix, in peer-index order.
    pub fn candidates(&self, prefix: Prefix) -> impl Iterator<Item = (PeerIdx, &RibInEntry)> {
        self.routes
            .get(&prefix)
            .into_iter()
            .flat_map(|slot| slot.iter().map(|(p, e)| (*p, e)))
    }

    /// The peer's route for a prefix, if accepted.
    pub fn get(&self, prefix: Prefix, peer: PeerIdx) -> Option<&RibInEntry> {
        self.routes.get(&prefix)?.get(&peer)
    }

    /// All prefixes with at least one candidate.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.routes.keys().copied()
    }

    /// Total number of stored routes across all prefixes and peers.
    pub fn route_count(&self) -> usize {
        self.routes.values().map(|s| s.len()).sum()
    }

    /// Number of prefixes currently learned from one peer (the
    /// maximum-prefix guardrail's counter).
    pub fn count_for_peer(&self, peer: PeerIdx) -> usize {
        self.routes
            .values()
            .filter(|slot| slot.contains_key(&peer))
            .count()
    }
}

/// The selected best route for a prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocRibEntry {
    /// Who supplied the route.
    pub source: RouteSource,
    /// Attributes of the winning route (import-policy view).
    pub attrs: PathAttributes,
    /// When this selection was made.
    pub since: SimTime,
}

/// The router's view of best routes.
#[derive(Debug)]
pub struct LocRib {
    best: BTreeMap<Prefix, LocRibEntry>,
    /// Number of stored prefixes per prefix length, so `lpm` probes only
    /// the populated lengths (one exact-match lookup each) instead of
    /// scanning the whole table.
    len_counts: [u32; 33],
}

impl Default for LocRib {
    fn default() -> Self {
        LocRib {
            best: BTreeMap::new(),
            len_counts: [0; 33],
        }
    }
}

impl LocRib {
    /// Set the best route for a prefix. Returns true when the selection
    /// changed (source or attributes differ).
    pub fn set(&mut self, prefix: Prefix, entry: LocRibEntry) -> bool {
        match self.best.get(&prefix) {
            Some(old) if old.source == entry.source && old.attrs == entry.attrs => false,
            _ => {
                if self.best.insert(prefix, entry).is_none() {
                    self.len_counts[prefix.len() as usize] += 1;
                }
                true
            }
        }
    }

    /// Remove the best route (prefix now unreachable). Returns the removed
    /// entry when there was one.
    pub fn clear(&mut self, prefix: Prefix) -> Option<LocRibEntry> {
        let removed = self.best.remove(&prefix);
        if removed.is_some() {
            self.len_counts[prefix.len() as usize] -= 1;
        }
        removed
    }

    /// Current best route for a prefix.
    pub fn get(&self, prefix: Prefix) -> Option<&LocRibEntry> {
        self.best.get(&prefix)
    }

    /// Longest-prefix match for a destination address (the FIB lookup).
    ///
    /// Walks the populated prefix lengths from most to least specific and
    /// probes each bucket with one exact lookup of the address masked to
    /// that length — O(lengths present × log n) instead of O(table size).
    pub fn lpm(&self, ip: std::net::Ipv4Addr) -> Option<(Prefix, &LocRibEntry)> {
        for len in (0..=32u8).rev() {
            if self.len_counts[len as usize] == 0 {
                continue;
            }
            let probe = Prefix::new_masked(ip, len).expect("length in range");
            if let Some(e) = self.best.get(&probe) {
                return Some((probe, e));
            }
        }
        None
    }

    /// All `(prefix, best)` pairs in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &LocRibEntry)> {
        self.best.iter().map(|(p, e)| (*p, e))
    }

    /// Number of reachable prefixes.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// True when no prefix is reachable.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }
}

/// What was last advertised to one peer (for delta computation), keyed by
/// prefix.
#[derive(Debug, Default)]
pub struct AdjRibOut {
    advertised: BTreeMap<Prefix, PathAttributes>,
}

impl AdjRibOut {
    /// Record an advertisement. Returns true when it differs from what was
    /// previously advertised (i.e. an UPDATE is warranted).
    pub fn advertise(&mut self, prefix: Prefix, attrs: PathAttributes) -> bool {
        match self.advertised.get(&prefix) {
            Some(old) if *old == attrs => false,
            _ => {
                self.advertised.insert(prefix, attrs);
                true
            }
        }
    }

    /// Record a withdrawal. Returns true when the prefix was advertised.
    pub fn withdraw(&mut self, prefix: Prefix) -> bool {
        self.advertised.remove(&prefix).is_some()
    }

    /// Attributes last advertised for a prefix.
    pub fn get(&self, prefix: Prefix) -> Option<&PathAttributes> {
        self.advertised.get(&prefix)
    }

    /// Everything currently advertised, in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &PathAttributes)> {
        self.advertised.iter().map(|(p, a)| (*p, a))
    }

    /// Number of advertised prefixes.
    pub fn len(&self) -> usize {
        self.advertised.len()
    }

    /// True when nothing has been advertised.
    pub fn is_empty(&self) -> bool {
        self.advertised.is_empty()
    }

    /// Drop all state (session reset).
    pub fn clear(&mut self) {
        self.advertised.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::pfx;
    use std::net::Ipv4Addr;

    fn entry(nh: u8) -> RibInEntry {
        RibInEntry {
            attrs: PathAttributes::originate(Ipv4Addr::new(10, 0, 0, nh)),
            peer_router_id: RouterId(nh as u32),
            learned_at: SimTime::ZERO,
        }
    }

    #[test]
    fn adj_in_insert_dedups_identical() {
        let mut rib = AdjRibIn::default();
        let p = pfx("10.0.0.0/8");
        assert!(rib.insert(p, 0, entry(1)));
        assert!(!rib.insert(p, 0, entry(1)), "same attrs: no change");
        assert!(rib.insert(p, 0, entry(2)), "different attrs: change");
        assert_eq!(rib.route_count(), 1);
    }

    #[test]
    fn adj_in_identical_reinsert_refreshes_learned_at() {
        let mut rib = AdjRibIn::default();
        let p = pfx("10.0.0.0/8");
        assert!(rib.insert(p, 0, entry(1)));
        let refreshed = RibInEntry {
            learned_at: SimTime::from_secs(7),
            ..entry(1)
        };
        assert!(!rib.insert(p, 0, refreshed), "no state change reported");
        assert_eq!(rib.get(p, 0).unwrap().learned_at, SimTime::from_secs(7));
    }

    #[test]
    fn adj_in_flush_stale_keeps_refreshed_routes() {
        let mut rib = AdjRibIn::default();
        let old = RibInEntry {
            learned_at: SimTime::from_secs(1),
            ..entry(1)
        };
        let fresh = RibInEntry {
            learned_at: SimTime::from_secs(10),
            ..entry(1)
        };
        rib.insert(pfx("10.0.0.0/8"), 0, old.clone());
        rib.insert(pfx("20.0.0.0/8"), 0, fresh);
        rib.insert(pfx("10.0.0.0/8"), 1, old); // other peer untouched
        let mut flushed: Vec<Prefix> = rib
            .flush_stale(0, SimTime::from_secs(5))
            .into_iter()
            .collect();
        flushed.sort();
        assert_eq!(flushed, vec![pfx("10.0.0.0/8")]);
        assert!(rib.get(pfx("20.0.0.0/8"), 0).is_some(), "re-announced kept");
        assert!(rib.get(pfx("10.0.0.0/8"), 1).is_some(), "other peer kept");
    }

    #[test]
    fn adj_in_remove_and_cleanup() {
        let mut rib = AdjRibIn::default();
        let p = pfx("10.0.0.0/8");
        rib.insert(p, 0, entry(1));
        rib.insert(p, 1, entry(2));
        assert_eq!(rib.candidates(p).count(), 2);
        assert!(rib.remove(p, 0));
        assert!(!rib.remove(p, 0));
        assert_eq!(rib.candidates(p).count(), 1);
        assert!(rib.remove(p, 1));
        assert_eq!(rib.prefixes().count(), 0, "empty slot pruned");
    }

    #[test]
    fn adj_in_remove_peer_returns_affected() {
        let mut rib = AdjRibIn::default();
        rib.insert(pfx("10.0.0.0/8"), 0, entry(1));
        rib.insert(pfx("10.0.0.0/8"), 1, entry(2));
        rib.insert(pfx("20.0.0.0/8"), 0, entry(1));
        let mut affected: Vec<Prefix> = rib.remove_peer(0).into_iter().collect();
        affected.sort();
        assert_eq!(affected, vec![pfx("10.0.0.0/8"), pfx("20.0.0.0/8")]);
        assert_eq!(rib.route_count(), 1);
        assert!(rib.get(pfx("10.0.0.0/8"), 1).is_some());
    }

    #[test]
    fn loc_rib_set_detects_change() {
        let mut rib = LocRib::default();
        let p = pfx("10.0.0.0/8");
        let e = LocRibEntry {
            source: RouteSource::Peer(0),
            attrs: PathAttributes::originate(Ipv4Addr::new(1, 1, 1, 1)),
            since: SimTime::ZERO,
        };
        assert!(rib.set(p, e.clone()));
        assert!(!rib.set(p, e.clone()), "identical selection: no change");
        let e2 = LocRibEntry {
            source: RouteSource::Peer(1),
            ..e
        };
        assert!(rib.set(p, e2));
        assert_eq!(rib.len(), 1);
        assert!(rib.clear(p).is_some());
        assert!(rib.is_empty());
        assert!(rib.clear(p).is_none());
    }

    #[test]
    fn loc_rib_timestamp_change_alone_is_not_a_change() {
        let mut rib = LocRib::default();
        let p = pfx("10.0.0.0/8");
        let mk = |t| LocRibEntry {
            source: RouteSource::Local,
            attrs: PathAttributes::originate(Ipv4Addr::new(1, 1, 1, 1)),
            since: t,
        };
        assert!(rib.set(p, mk(SimTime::ZERO)));
        assert!(!rib.set(p, mk(SimTime::from_secs(5))));
        // Original timestamp preserved? No: we keep the old entry on no-change.
        assert_eq!(rib.get(p).unwrap().since, SimTime::ZERO);
    }

    #[test]
    fn adj_out_delta_logic() {
        let mut out = AdjRibOut::default();
        let p = pfx("10.0.0.0/8");
        let a1 = PathAttributes::originate(Ipv4Addr::new(1, 1, 1, 1));
        let a2 = PathAttributes::originate(Ipv4Addr::new(2, 2, 2, 2));
        assert!(out.advertise(p, a1.clone()));
        assert!(!out.advertise(p, a1.clone()), "same attrs suppressed");
        assert!(out.advertise(p, a2), "changed attrs re-advertised");
        assert!(out.withdraw(p));
        assert!(!out.withdraw(p), "double withdraw suppressed");
        assert!(out.advertise(p, a1));
        out.clear();
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn loc_rib_lpm_prefers_most_specific() {
        let mut rib = LocRib::default();
        let mk = |nh: u8| LocRibEntry {
            source: RouteSource::Peer(nh as usize),
            attrs: PathAttributes::originate(Ipv4Addr::new(10, 0, 0, nh)),
            since: SimTime::ZERO,
        };
        rib.set(pfx("10.0.0.0/8"), mk(1));
        rib.set(pfx("10.1.0.0/16"), mk(2));
        rib.set(pfx("10.1.2.0/24"), mk(3));
        rib.set(pfx("0.0.0.0/0"), mk(4));
        fn hit(rib: &LocRib, ip: [u8; 4]) -> Option<Prefix> {
            rib.lpm(Ipv4Addr::from(ip)).map(|(p, _)| p)
        }
        assert_eq!(hit(&rib, [10, 1, 2, 9]), Some(pfx("10.1.2.0/24")));
        assert_eq!(hit(&rib, [10, 1, 9, 9]), Some(pfx("10.1.0.0/16")));
        assert_eq!(hit(&rib, [10, 9, 9, 9]), Some(pfx("10.0.0.0/8")));
        assert_eq!(hit(&rib, [9, 9, 9, 9]), Some(pfx("0.0.0.0/0")));
        // Re-setting an existing prefix must not corrupt bucket counts …
        rib.set(pfx("10.1.2.0/24"), mk(5));
        assert_eq!(hit(&rib, [10, 1, 2, 9]), Some(pfx("10.1.2.0/24")));
        // … and clearing empties its bucket so lookups fall through.
        rib.clear(pfx("10.1.2.0/24"));
        assert_eq!(hit(&rib, [10, 1, 2, 9]), Some(pfx("10.1.0.0/16")));
        rib.clear(pfx("0.0.0.0/0"));
        rib.clear(pfx("10.0.0.0/8"));
        rib.clear(pfx("10.1.0.0/16"));
        assert_eq!(hit(&rib, [10, 1, 2, 9]), None);
        assert!(rib.clear(pfx("10.1.0.0/16")).is_none(), "double clear");
    }

    #[test]
    fn loc_rib_lpm_edge_cases() {
        let mut rib = LocRib::default();
        let mk = |nh: u8| LocRibEntry {
            source: RouteSource::Peer(nh as usize),
            attrs: PathAttributes::originate(Ipv4Addr::new(10, 0, 0, nh)),
            since: SimTime::ZERO,
        };
        let hit = |rib: &LocRib, ip: [u8; 4]| rib.lpm(Ipv4Addr::from(ip)).map(|(p, _)| p);

        // A /0-only table is a default route: every address matches it,
        // including the extremes of the space.
        rib.set(pfx("0.0.0.0/0"), mk(1));
        assert_eq!(hit(&rib, [0, 0, 0, 0]), Some(pfx("0.0.0.0/0")));
        assert_eq!(hit(&rib, [255, 255, 255, 255]), Some(pfx("0.0.0.0/0")));

        // Exact /32 host route vs a covering /24: the host route wins for
        // its one address, the /24 for every neighbor.
        rib.set(pfx("10.1.2.0/24"), mk(2));
        rib.set(pfx("10.1.2.7/32"), mk(3));
        assert_eq!(hit(&rib, [10, 1, 2, 7]), Some(pfx("10.1.2.7/32")));
        assert_eq!(hit(&rib, [10, 1, 2, 8]), Some(pfx("10.1.2.0/24")));

        // Bucket boundaries: the first and last address of each of the
        // /8, /16, /24 blocks stay inside that block, and one step past
        // the block's top falls through to the next-shorter covering
        // prefix, never to a sibling.
        rib.set(pfx("10.0.0.0/8"), mk(4));
        rib.set(pfx("10.1.0.0/16"), mk(5));
        assert_eq!(hit(&rib, [10, 1, 2, 0]), Some(pfx("10.1.2.0/24")));
        assert_eq!(hit(&rib, [10, 1, 2, 255]), Some(pfx("10.1.2.0/24")));
        assert_eq!(hit(&rib, [10, 1, 3, 0]), Some(pfx("10.1.0.0/16")));
        assert_eq!(hit(&rib, [10, 1, 0, 0]), Some(pfx("10.1.0.0/16")));
        assert_eq!(hit(&rib, [10, 1, 255, 255]), Some(pfx("10.1.0.0/16")));
        assert_eq!(hit(&rib, [10, 2, 0, 0]), Some(pfx("10.0.0.0/8")));
        assert_eq!(hit(&rib, [10, 0, 0, 0]), Some(pfx("10.0.0.0/8")));
        assert_eq!(hit(&rib, [10, 255, 255, 255]), Some(pfx("10.0.0.0/8")));
        assert_eq!(hit(&rib, [11, 0, 0, 0]), Some(pfx("0.0.0.0/0")));

        // Dropping the default leaves off-tree addresses unroutable while
        // the specific buckets keep answering.
        rib.clear(pfx("0.0.0.0/0"));
        assert_eq!(hit(&rib, [11, 0, 0, 0]), None);
        assert_eq!(hit(&rib, [10, 1, 2, 7]), Some(pfx("10.1.2.7/32")));
    }

    #[test]
    fn iteration_is_prefix_ordered() {
        let mut rib = AdjRibIn::default();
        rib.insert(pfx("30.0.0.0/8"), 0, entry(1));
        rib.insert(pfx("10.0.0.0/8"), 0, entry(1));
        rib.insert(pfx("20.0.0.0/8"), 0, entry(1));
        let order: Vec<Prefix> = rib.prefixes().collect();
        assert_eq!(
            order,
            vec![pfx("10.0.0.0/8"), pfx("20.0.0.0/8"), pfx("30.0.0.0/8")]
        );
    }
}
