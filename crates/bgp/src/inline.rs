//! Hand-rolled SmallVec-style storage for short, transient lists.
//!
//! The router hot path builds many tiny lists per event — the peers on a
//! flapped link, the prefixes withdrawn in one flush round, the Loc-RIB
//! snapshot exported at session bring-up. Almost all of them hold a handful
//! of elements, so a heap `Vec` pays an allocation for nothing. An
//! [`InlineVec<T, N>`] keeps the first `N` elements in a plain array on the
//! stack and only touches the heap when a list actually grows past that —
//! the common case allocates zero bytes.
//!
//! `T: Copy + Default` keeps the implementation `unsafe`-free (the inline
//! slots are pre-initialized with `T::default()`); the lists this is for
//! carry `Prefix` and peer indices, which are all trivially copyable.

/// A vector that stores its first `N` elements inline and spills the rest
/// to the heap.
#[derive(Debug, Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    inline: [T; N],
    len: usize,
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec {
            inline: [T::default(); N],
            len: 0,
            spill: Vec::new(),
        }
    }
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Empty list, nothing allocated.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored elements (inline + spilled).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the list outgrew its inline capacity.
    pub fn spilled(&self) -> bool {
        self.len > N
    }

    /// Append an element; allocation-free until the list exceeds `N`.
    pub fn push(&mut self, v: T) {
        if self.len < N {
            self.inline[self.len] = v;
        } else {
            self.spill.push(v);
        }
        self.len += 1;
    }

    /// Drop all elements, keeping any spill allocation for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Iterate over the elements in push order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline[..self.len.min(N)]
            .iter()
            .chain(self.spill.iter())
    }
}

impl<T: Copy + Default, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter =
        std::iter::Chain<std::iter::Take<std::array::IntoIter<T, N>>, std::vec::IntoIter<T>>;

    fn into_iter(self) -> Self::IntoIter {
        self.inline
            .into_iter()
            .take(self.len.min(N))
            .chain(self.spill)
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::iter::Chain<std::slice::Iter<'a, T>, std::slice::Iter<'a, T>>;

    fn into_iter(self) -> Self::IntoIter {
        self.inline[..self.len.min(N)]
            .iter()
            .chain(self.spill.iter())
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        v.extend(iter);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.len(), 4);
        assert!(!v.spilled());
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn spills_past_capacity_preserving_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..7 {
            v.push(i);
        }
        assert_eq!(v.len(), 7);
        assert!(v.spilled());
        assert_eq!(
            v.iter().copied().collect::<Vec<_>>(),
            (0..7).collect::<Vec<_>>()
        );
        assert_eq!(
            v.into_iter().collect::<Vec<_>>(),
            (0..7).collect::<Vec<_>>()
        );
    }

    #[test]
    fn collect_and_borrowing_iteration() {
        let v: InlineVec<u32, 4> = (0..6).collect();
        let mut sum = 0;
        for &x in &v {
            sum += x;
        }
        assert_eq!(sum, 15);
    }

    #[test]
    fn clear_resets_but_keeps_usable() {
        let mut v: InlineVec<u32, 2> = (0..5).collect();
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.iter().count(), 0);
        v.push(9);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![9]);
    }
}
