//! Property-based tests of the decision process and policy engine.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use bgpsdn_bgp::{
    decision, pfx, AsPath, Asn, Candidate, Community, DecisionConfig, MatchCond, Origin,
    PathAttributes, Prefix, RouteMap, RouteSource, RouterId, Rule, SetAction,
};

#[derive(Debug, Clone)]
struct CandSpec {
    local_pref: Option<u32>,
    path_len: usize,
    origin: Origin,
    med: Option<u32>,
    router_id: u32,
}

fn arb_cand() -> impl Strategy<Value = CandSpec> {
    (
        prop::option::of(50u32..200),
        1usize..6,
        prop_oneof![
            Just(Origin::Igp),
            Just(Origin::Egp),
            Just(Origin::Incomplete)
        ],
        prop::option::of(0u32..1000),
        1u32..1000,
    )
        .prop_map(|(local_pref, path_len, origin, med, router_id)| CandSpec {
            local_pref,
            path_len,
            origin,
            med,
            router_id,
        })
}

fn attrs_of(spec: &CandSpec, first_asn: u32) -> PathAttributes {
    let mut a = PathAttributes::originate(Ipv4Addr::new(10, 0, 0, 1));
    a.local_pref = spec.local_pref;
    a.origin = spec.origin;
    a.med = spec.med;
    a.as_path = AsPath::from_seq((0..spec.path_len as u32).map(|i| first_asn + i));
    a
}

proptest! {
    /// The selected candidate never compares worse than any other candidate
    /// (i.e. select really returns a maximum of the preference order).
    #[test]
    fn selection_is_a_maximum(specs in prop::collection::vec(arb_cand(), 1..12)) {
        let cfg = DecisionConfig::default();
        let attrs: Vec<PathAttributes> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| attrs_of(s, 100 + i as u32))
            .collect();
        let cands: Vec<Candidate> = attrs
            .iter()
            .enumerate()
            .map(|(i, a)| Candidate {
                attrs: a,
                source: RouteSource::Peer(i),
                peer_router_id: RouterId(specs[i].router_id),
            })
            .collect();
        let best = decision::select(cands.clone(), &cfg).expect("non-empty");
        for c in &cands {
            let ord = decision::compare(&best, c, &cfg);
            prop_assert_ne!(ord, std::cmp::Ordering::Less,
                "selected candidate lost to {:?}", c.source);
        }
    }

    /// Selection is invariant under any permutation of the input.
    #[test]
    fn selection_is_order_independent(
        specs in prop::collection::vec(arb_cand(), 1..10),
        rotation in 0usize..10,
    ) {
        let cfg = DecisionConfig::default();
        let attrs: Vec<PathAttributes> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| attrs_of(s, 100 + i as u32))
            .collect();
        let make = |order: Vec<usize>| {
            let cands = order.into_iter().map(|i| Candidate {
                attrs: &attrs[i],
                source: RouteSource::Peer(i),
                peer_router_id: RouterId(specs[i].router_id),
            });
            decision::select(cands, &cfg).map(|c| c.source)
        };
        let n = specs.len();
        let forward: Vec<usize> = (0..n).collect();
        let mut rotated: Vec<usize> = (0..n).collect();
        rotated.rotate_left(rotation % n.max(1));
        let mut reversed: Vec<usize> = (0..n).collect();
        reversed.reverse();
        let a = make(forward);
        prop_assert_eq!(a, make(rotated));
        prop_assert_eq!(a, make(reversed));
    }

    /// Higher local-pref always wins, regardless of everything else.
    #[test]
    fn local_pref_dominates(a in arb_cand(), b in arb_cand()) {
        let cfg = DecisionConfig::default();
        let lp_a = a.local_pref.unwrap_or(cfg.default_local_pref);
        let lp_b = b.local_pref.unwrap_or(cfg.default_local_pref);
        prop_assume!(lp_a != lp_b);
        let attrs_a = attrs_of(&a, 100);
        let attrs_b = attrs_of(&b, 200);
        let ca = Candidate { attrs: &attrs_a, source: RouteSource::Peer(0), peer_router_id: RouterId(a.router_id) };
        let cb = Candidate { attrs: &attrs_b, source: RouteSource::Peer(1), peer_router_id: RouterId(b.router_id) };
        let best = decision::select([ca, cb], &cfg).unwrap();
        let expect = if lp_a > lp_b { RouteSource::Peer(0) } else { RouteSource::Peer(1) };
        prop_assert_eq!(best.source, expect);
    }

    /// permit_all is the identity, deny_all annihilates, and a prefix-scoped
    /// deny only affects matching prefixes.
    #[test]
    fn route_map_dispositions(third_octet in 0u8..255, len in 9u8..32) {
        let p = bgpsdn_bgp::Prefix::new_masked(
            Ipv4Addr::new(10, third_octet, 3, 4), len,
        ).unwrap();
        let attrs = attrs_of(&CandSpec {
            local_pref: None, path_len: 2, origin: Origin::Igp, med: None, router_id: 1,
        }, 7);
        prop_assert_eq!(RouteMap::permit_all().apply(p, &attrs, Asn(1)), Some(attrs.clone()));
        prop_assert_eq!(RouteMap::deny_all().apply(p, &attrs, Asn(1)), None);

        let scoped = RouteMap {
            rules: vec![Rule {
                conds: vec![MatchCond::PrefixWithin(pfx("10.0.0.0/9"))],
                actions: vec![],
                permit: false,
            }],
            default_permit: true,
        };
        let denied = scoped.apply(p, &attrs, Asn(1)).is_none();
        prop_assert_eq!(denied, pfx("10.0.0.0/9").covers(p));
    }

    /// Set actions are applied exactly once and only on permit.
    #[test]
    fn route_map_actions_apply_once(lp in 1u32..500, community in any::<u32>()) {
        let attrs = attrs_of(&CandSpec {
            local_pref: None, path_len: 1, origin: Origin::Igp, med: None, router_id: 1,
        }, 9);
        let map = RouteMap {
            rules: vec![Rule {
                conds: vec![],
                actions: vec![
                    SetAction::LocalPref(lp),
                    SetAction::AddCommunity(Community(community)),
                ],
                permit: true,
            }],
            default_permit: false,
        };
        let out = map.apply(pfx("10.0.0.0/8"), &attrs, Asn(1)).unwrap();
        prop_assert_eq!(out.local_pref, Some(lp));
        prop_assert_eq!(
            out.communities.iter().filter(|c| c.0 == community).count(),
            1
        );
        prop_assert_eq!(out.as_path, attrs.as_path, "path untouched");
    }

    /// Prefix cover relation is a partial order consistent with `contains`.
    #[test]
    fn prefix_cover_consistency(addr in any::<u32>(), l1 in 0u8..=32, l2 in 0u8..=32) {
        let p1 = Prefix::new_masked(Ipv4Addr::from(addr), l1).unwrap();
        let p2 = Prefix::new_masked(Ipv4Addr::from(addr), l2).unwrap();
        // Same base address: the shorter prefix covers the longer.
        if l1 <= l2 {
            prop_assert!(p1.covers(p2));
            prop_assert!(p1.contains(p2.network()));
        } else {
            prop_assert!(p2.covers(p1));
        }
        prop_assert!(p1.covers(p1));
    }
}
