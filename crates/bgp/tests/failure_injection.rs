//! Failure-injection tests: corrupted wire bytes, mid-storm session loss,
//! and churn under repeated flaps — the router must degrade loudly and
//! recover cleanly, never wedge.

use bgpsdn_bgp::{
    pfx, Asn, BgpEnvelope, BgpOnlyMsg, BgpRouter, NeighborConfig, Prefix, Relationship,
    RouterCommand, RouterConfig, SessionState, TimingConfig,
};
use bgpsdn_netsim::{LatencyModel, NodeId, SimDuration, SimTime, Simulator};

type Router = BgpRouter<BgpOnlyMsg>;
type Sim = Simulator<BgpOnlyMsg>;

const MS5: LatencyModel = LatencyModel::Fixed(SimDuration::from_millis(5));

fn asn_of(i: usize) -> Asn {
    Asn(65000 + i as u32)
}

fn prefix_of(i: usize) -> Prefix {
    pfx(&format!("10.{}.0.0/16", i + 1))
}

fn fast() -> TimingConfig {
    TimingConfig {
        mrai: SimDuration::ZERO,
        ..Default::default()
    }
}

fn pair(seed: u64) -> (Sim, NodeId, NodeId) {
    let mut sim = Sim::new(seed);
    let a_cfg = RouterConfig::new(asn_of(0))
        .with_origin(prefix_of(0))
        .with_timing(fast());
    let b_cfg = RouterConfig::new(asn_of(1))
        .with_origin(prefix_of(1))
        .with_timing(fast());
    let a = sim.add_node("a", |id| Router::new(id, a_cfg));
    let b = sim.add_node("b", |id| Router::new(id, b_cfg));
    let l = sim.add_link(a, b, MS5.clone());
    sim.with_node::<Router, _>(a, |r| {
        r.add_neighbor(NeighborConfig::new(b, l, asn_of(1), Relationship::Peer))
    });
    sim.with_node::<Router, _>(b, |r| {
        r.add_neighbor(NeighborConfig::new(a, l, asn_of(0), Relationship::Peer))
    });
    (sim, a, b)
}

/// A wire-tap middlebox: relays BGP envelopes between its two sides by
/// logical destination (like the cluster switches do) and corrupts the
/// payload of the `corrupt_nth` UPDATE it forwards.
struct Corruptor {
    relay: std::collections::HashMap<NodeId, bgpsdn_netsim::LinkId>,
    corrupt_nth: u64,
    updates_seen: u64,
}

impl bgpsdn_netsim::Node<BgpOnlyMsg> for Corruptor {
    fn on_message(
        &mut self,
        ctx: &mut bgpsdn_netsim::Ctx<'_, BgpOnlyMsg>,
        _from: NodeId,
        _link: bgpsdn_netsim::LinkId,
        msg: BgpOnlyMsg,
    ) {
        let BgpOnlyMsg::Bgp(mut env) = msg else {
            return;
        };
        let Some(&out) = self.relay.get(&env.dst) else {
            return;
        };
        // Count only UPDATEs (type byte 2 at offset 18).
        if env.bytes.len() > 18 && env.bytes[18] == 2 {
            self.updates_seen += 1;
            if self.updates_seen == self.corrupt_nth {
                // Flip bits deep in the body: still a BGP frame, bad content.
                let n = env.bytes.len();
                env.bytes[n - 1] ^= 0xFF;
                env.bytes[19] ^= 0x55;
            }
        }
        ctx.send(out, BgpOnlyMsg::Bgp(env));
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[test]
fn corrupt_wire_bytes_drop_and_recover_the_session() {
    // a — corruptor — b; the corruptor mangles the 3rd UPDATE in flight.
    let mut sim = Sim::new(1);
    let a_cfg = RouterConfig::new(asn_of(0))
        .with_origin(prefix_of(0))
        .with_timing(fast());
    let b_cfg = RouterConfig::new(asn_of(1))
        .with_origin(prefix_of(1))
        .with_timing(fast());
    let a = sim.add_node("a", |id| Router::new(id, a_cfg));
    let b = sim.add_node("b", |id| Router::new(id, b_cfg));
    let m = sim.add_node("corruptor", |_| Corruptor {
        relay: Default::default(),
        corrupt_nth: 3,
        updates_seen: 0,
    });
    let la = sim.add_link(a, m, MS5.clone());
    let lb = sim.add_link(m, b, MS5.clone());
    sim.with_node::<Corruptor, _>(m, |c| {
        c.relay.insert(a, la);
        c.relay.insert(b, lb);
    });
    sim.with_node::<Router, _>(a, |r| {
        r.add_neighbor(NeighborConfig::new(b, la, asn_of(1), Relationship::Peer))
    });
    sim.with_node::<Router, _>(b, |r| {
        r.add_neighbor(NeighborConfig::new(a, lb, asn_of(0), Relationship::Peer))
    });
    let q = sim.run_until_quiescent(SimTime::from_secs(300));
    assert!(q.quiescent);

    let (ra, rb) = (sim.node_ref::<Router>(a), sim.node_ref::<Router>(b));
    let total_decode_errors = ra.stats().decode_errors + rb.stats().decode_errors;
    assert_eq!(total_decode_errors, 1, "exactly one corrupt frame seen");
    assert!(ra.stats().notifications_sent + rb.stats().notifications_sent >= 1);
    // The session recovered via retry and the full table was re-learned.
    assert_eq!(ra.session_state(b), Some(SessionState::Established));
    assert_eq!(rb.session_state(a), Some(SessionState::Established));
    assert!(ra.best(prefix_of(1)).is_some(), "routes relearned at a");
    assert!(rb.best(prefix_of(0)).is_some(), "routes relearned at b");
}

#[test]
fn wrong_destination_envelopes_are_ignored() {
    let (mut sim, a, b) = pair(2);
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    let before = sim.node_ref::<Router>(a).stats().updates_received;

    // An envelope addressed to some other node: routers do not relay.
    let stray = BgpEnvelope::new(b, NodeId(999), &bgpsdn_bgp::BgpMessage::Keepalive);
    sim.inject(a, BgpOnlyMsg::Bgp(stray));
    // And one from an unknown speaker.
    let unknown = BgpEnvelope::new(NodeId(998), a, &bgpsdn_bgp::BgpMessage::Keepalive);
    sim.inject(a, BgpOnlyMsg::Bgp(unknown));
    assert!(sim.run_until_quiescent(SimTime::from_secs(30)).quiescent);

    let ra = sim.node_ref::<Router>(a);
    assert_eq!(ra.stats().updates_received, before);
    assert_eq!(ra.stats().decode_errors, 0);
    assert_eq!(ra.session_state(b), Some(SessionState::Established));
}

#[test]
fn rapid_flapping_never_wedges_the_router() {
    let (mut sim, a, b) = pair(3);
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    // 50 announce/withdraw cycles at sub-RTT spacing.
    for i in 0..50u64 {
        let cmd = if i % 2 == 0 {
            RouterCommand::Withdraw(prefix_of(0))
        } else {
            RouterCommand::Announce(prefix_of(0))
        };
        sim.inject_at(
            sim.now() + SimDuration::from_millis(i * 2),
            a,
            BgpOnlyMsg::Command(cmd),
        );
    }
    let q = sim.run_until_quiescent(SimTime::from_secs(300));
    assert!(q.quiescent, "storm must settle");
    // Final state: announced (50 commands end on Announce at i=49).
    let rb = sim.node_ref::<Router>(b);
    assert!(rb.best(prefix_of(0)).is_some());
    // RIBs consistent with Adj state.
    assert_eq!(rb.adj_in().count_for_peer(0), 1);
}

#[test]
fn repeated_link_flaps_reconverge_every_time() {
    let (mut sim, a, b) = pair(4);
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    let link = sim.links()[0].id;
    for round in 0..5 {
        sim.set_link_admin(link, false);
        sim.run_for(SimDuration::from_secs(2));
        assert!(
            sim.node_ref::<Router>(a).best(prefix_of(1)).is_none(),
            "round {round}: route must be flushed while down"
        );
        sim.set_link_admin(link, true);
        let q = sim.run_until_quiescent(sim.now() + SimDuration::from_secs(120));
        assert!(q.quiescent, "round {round}");
        let ra = sim.node_ref::<Router>(a);
        assert_eq!(
            ra.session_state(b),
            Some(SessionState::Established),
            "round {round}"
        );
        assert!(ra.best(prefix_of(1)).is_some(), "round {round}");
    }
    let ra = sim.node_ref::<Router>(a);
    assert!(ra.stats().sessions_established >= 6);
    assert!(ra.stats().sessions_dropped >= 5);
}

#[test]
fn lossy_link_converges_eventually_with_retries() {
    // 30% loss on the only link: session setup and updates retry via the
    // connect/backoff machinery until everything lands.
    let mut sim = Sim::new(5);
    let a_cfg = RouterConfig::new(asn_of(0))
        .with_origin(prefix_of(0))
        .with_timing(TimingConfig {
            mrai: SimDuration::ZERO,
            max_connect_retries: 30,
            ..Default::default()
        });
    let b_cfg = RouterConfig::new(asn_of(1)).with_timing(TimingConfig {
        mrai: SimDuration::ZERO,
        max_connect_retries: 30,
        ..Default::default()
    });
    let a = sim.add_node("a", |id| Router::new(id, a_cfg));
    let b = sim.add_node("b", |id| Router::new(id, b_cfg));
    let l = sim.add_link(a, b, MS5.clone());
    sim.set_link_loss(l, 0.3);
    sim.with_node::<Router, _>(a, |r| {
        r.add_neighbor(NeighborConfig::new(b, l, asn_of(1), Relationship::Peer))
    });
    sim.with_node::<Router, _>(b, |r| {
        r.add_neighbor(NeighborConfig::new(a, l, asn_of(0), Relationship::Peer))
    });
    // BGP-over-lossy-transport isn't a protocol feature (TCP hides loss);
    // here loss can eat OPEN/KEEPALIVE and the retry machinery must cope.
    // Not every seed fully converges — but the engine must stay sane and
    // never wedge. Drive enough traffic that drops certainly occur.
    for i in 0..50u64 {
        let cmd = if i % 2 == 0 {
            RouterCommand::Announce(pfx(&format!("192.0.{}.0/24", i % 200)))
        } else {
            RouterCommand::Withdraw(pfx(&format!("192.0.{}.0/24", (i - 1) % 200)))
        };
        sim.inject_at(
            SimTime::from_secs(1) + SimDuration::from_millis(i * 100),
            a,
            BgpOnlyMsg::Command(cmd),
        );
    }
    sim.run_until(SimTime::from_secs(120));
    assert!(sim.stats().msgs_dropped_loss > 0, "loss model engaged");
    let ra = sim.node_ref::<Router>(a);
    // No decode errors: loss drops whole messages, never corrupts them.
    assert_eq!(ra.stats().decode_errors, 0);
}
