//! Property-based tests for the BGP wire codec: arbitrary messages must
//! round-trip exactly, and arbitrary byte soup must never panic the decoder.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use bgpsdn_bgp::{
    AsPath, Asn, BgpMessage, Capability, Community, NotifCode, NotificationMsg, OpenMsg, Origin,
    PathAttributes, Prefix, RouterId, Segment, UpdateMsg,
};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32)
        .prop_map(|(addr, len)| Prefix::new_masked(Ipv4Addr::from(addr), len).expect("len <= 32"))
}

fn arb_asn() -> impl Strategy<Value = u32> {
    prop_oneof![1u32..65536, 65536u32..4_294_967_295]
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        prop::collection::vec(arb_asn().prop_map(Asn), 1..8).prop_map(Segment::Sequence),
        prop::collection::vec(arb_asn().prop_map(Asn), 1..5).prop_map(Segment::Set),
    ]
}

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(arb_segment(), 0..4).prop_map(|segments| AsPath { segments })
}

fn arb_origin() -> impl Strategy<Value = Origin> {
    prop_oneof![
        Just(Origin::Igp),
        Just(Origin::Egp),
        Just(Origin::Incomplete)
    ]
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        arb_origin(),
        arb_as_path(),
        any::<u32>(),
        prop::option::of(any::<u32>()),
        prop::option::of(any::<u32>()),
        any::<bool>(),
        prop::option::of((arb_asn(), any::<u32>())),
        prop::collection::vec(any::<u32>(), 0..6),
    )
        .prop_map(
            |(origin, as_path, nh, med, local_pref, atomic, aggregator, comms)| {
                let mut a = PathAttributes::originate(Ipv4Addr::from(nh));
                a.origin = origin;
                a.as_path = as_path;
                a.med = med;
                a.local_pref = local_pref;
                a.atomic_aggregate = atomic;
                a.aggregator = aggregator.map(|(asn, ip)| (Asn(asn), Ipv4Addr::from(ip)));
                a.communities = comms.into_iter().map(Community).collect();
                a
            },
        )
}

fn arb_update() -> impl Strategy<Value = UpdateMsg> {
    (
        prop::collection::vec(arb_prefix(), 0..12),
        prop::option::of(arb_attrs()),
        prop::collection::vec(arb_prefix(), 0..12),
    )
        .prop_map(|(withdrawn, attrs, mut nlri)| {
            // NLRI requires attributes; drop NLRI when none were generated.
            if attrs.is_none() {
                nlri.clear();
            }
            UpdateMsg {
                withdrawn,
                attrs,
                nlri,
            }
        })
}

fn arb_message() -> impl Strategy<Value = BgpMessage> {
    prop_oneof![
        (
            arb_asn(),
            any::<u32>(),
            any::<u16>(),
            // Graceful restart advertises a 12-bit restart time.
            prop::option::of(0u16..=0x0FFF)
        )
            .prop_map(|(asn, rid, hold, gr)| {
                let mut open = OpenMsg::standard(Asn(asn), RouterId(rid), hold);
                if let Some(restart_time_secs) = gr {
                    open.capabilities
                        .push(Capability::GracefulRestart { restart_time_secs });
                }
                BgpMessage::Open(open)
            }),
        arb_update().prop_map(BgpMessage::Update),
        (
            any::<u8>(),
            any::<u8>(),
            prop::collection::vec(any::<u8>(), 0..32)
        )
            .prop_map(|(code, subcode, data)| {
                BgpMessage::Notification(NotificationMsg {
                    code: NotifCode::Other(code).into_canonical(),
                    subcode,
                    data,
                })
            }),
        Just(BgpMessage::Keepalive),
        (any::<u16>(), any::<u8>()).prop_map(|(afi, safi)| BgpMessage::RouteRefresh { afi, safi }),
    ]
}

/// Helper so generated notification codes survive the roundtrip (code 1..6
/// decode to named variants, everything else to `Other`).
trait Canonical {
    fn into_canonical(self) -> NotifCode;
}
impl Canonical for NotifCode {
    fn into_canonical(self) -> NotifCode {
        match self {
            NotifCode::Other(1) => NotifCode::MessageHeader,
            NotifCode::Other(2) => NotifCode::OpenMessage,
            NotifCode::Other(3) => NotifCode::UpdateMessage,
            NotifCode::Other(4) => NotifCode::HoldTimerExpired,
            NotifCode::Other(5) => NotifCode::FsmError,
            NotifCode::Other(6) => NotifCode::Cease,
            other => other,
        }
    }
}

proptest! {
    #[test]
    fn message_roundtrips(msg in arb_message()) {
        let bytes = msg.encode();
        let back = BgpMessage::decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(back, msg);
    }

    /// Encoding into a reused (dirty) scratch writer must produce the exact
    /// bytes of a fresh-allocation encode, for every message type — the
    /// property the zero-alloc send path (`BgpEnvelope::with_cause_scratch`)
    /// relies on.
    #[test]
    fn scratch_reuse_encodes_identically(
        residue in arb_message(),
        msgs in prop::collection::vec(arb_message(), 1..6),
    ) {
        let mut scratch = bgpsdn_bgp::wire::Writer::with_capacity(8);
        // Dirty the scratch with an unrelated message first.
        residue.encode_into(&mut scratch);
        for msg in &msgs {
            msg.encode_into(&mut scratch);
            let fresh = msg.encode();
            prop_assert_eq!(
                scratch.as_bytes(),
                fresh.as_slice(),
                "reused-scratch encode diverged from fresh encode"
            );
        }
    }

    #[test]
    fn attrs_roundtrip(attrs in arb_attrs()) {
        let msg = BgpMessage::Update(UpdateMsg::announce(
            vec!["10.0.0.0/8".parse().unwrap()],
            attrs,
        ));
        let back = BgpMessage::decode(&msg.encode()).expect("decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = BgpMessage::decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_corrupted_valid(
        msg in arb_message(),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = msg.encode();
        for (idx, val) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= val;
        }
        let _ = BgpMessage::decode(&bytes);
    }

    /// Whatever the decoder accepts — even from corrupted byte soup — must
    /// re-encode to bytes that decode back to the identical message, and
    /// that second encoding must be byte-stable: decode∘encode is a fixed
    /// point on the decoder's image.
    #[test]
    fn decode_encode_decode_reaches_a_fixed_point(
        msg in arb_message(),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 0..8),
    ) {
        let mut bytes = msg.encode();
        for (idx, val) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= val;
        }
        if let Ok(decoded) = BgpMessage::decode(&bytes) {
            let reencoded = decoded.encode();
            let again = BgpMessage::decode(&reencoded).expect("re-encoded message must decode");
            prop_assert_eq!(&again, &decoded);
            prop_assert_eq!(again.encode(), reencoded, "second encode must be byte-stable");
        }
    }

    /// RFC 7606 salvage over a *well-formed* UPDATE recovers every prefix
    /// the message mentioned, as a pure withdrawal.
    #[test]
    fn salvage_withdraw_recovers_every_mentioned_prefix(u in arb_update()) {
        let bytes = BgpMessage::Update(u.clone()).encode();
        let salvaged = UpdateMsg::salvage_withdraw(&bytes)
            .expect("well-formed update must salvage");
        prop_assert!(salvaged.nlri.is_empty());
        prop_assert!(salvaged.attrs.is_none());
        for p in u.withdrawn.iter().chain(u.nlri.iter()) {
            prop_assert!(salvaged.withdrawn.contains(p), "lost {}", p);
        }
    }

    /// Salvage walks only the TLV framing, so corrupted attribute *content*
    /// must never panic it — it either recovers prefixes or returns None.
    #[test]
    fn salvage_withdraw_never_panics_on_corrupted_bytes(
        msg in arb_message(),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = msg.encode();
        for (idx, val) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= val;
        }
        let _ = UpdateMsg::salvage_withdraw(&bytes);
    }

    #[test]
    fn truncated_valid_messages_error_cleanly(msg in arb_message(), cut in any::<prop::sample::Index>()) {
        let bytes = msg.encode();
        let n = cut.index(bytes.len());
        if n < bytes.len() {
            prop_assert!(BgpMessage::decode(&bytes[..n]).is_err());
        }
    }

    #[test]
    fn prefix_parse_display_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().expect("display must parse");
        prop_assert_eq!(back, p);
    }

    #[test]
    fn as_path_prepend_preserves_suffix(path in arb_as_path(), asn in arb_asn()) {
        let mut p2 = path.clone();
        p2.prepend(Asn(asn));
        prop_assert_eq!(p2.first_asn(), Some(Asn(asn)));
        prop_assert_eq!(p2.path_len(), path.path_len() + 1);
        let flat_old = path.flatten();
        let flat_new = p2.flatten();
        prop_assert_eq!(&flat_new[1..], &flat_old[..]);
        prop_assert!(p2.contains(Asn(asn)));
    }
}
