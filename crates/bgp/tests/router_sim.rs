//! End-to-end BGP scenarios: full routers over the discrete-event simulator,
//! exchanging real wire messages.

use bgpsdn_bgp::{
    pfx, Asn, BgpOnlyMsg, BgpRouter, NeighborConfig, PolicyMode, Prefix, Relationship, RouteSource,
    RouterCommand, RouterConfig, SessionState, TimingConfig,
};
use bgpsdn_netsim::{Activity, LatencyModel, NodeId, SimDuration, SimTime, Simulator};

type Router = BgpRouter<BgpOnlyMsg>;
type Sim = Simulator<BgpOnlyMsg>;

const MS5: LatencyModel = LatencyModel::Fixed(SimDuration::from_millis(5));

fn asn_of(i: usize) -> Asn {
    Asn(65000 + i as u32)
}

fn prefix_of(i: usize) -> Prefix {
    pfx(&format!("10.{}.0.0/16", i + 1))
}

/// Build `n` routers and connect them according to `edges`, full-transit
/// policies, with the given timing. Router `i` originates `10.(i+1).0.0/16`
/// when `originate[i]`.
fn build(
    seed: u64,
    n: usize,
    edges: &[(usize, usize)],
    timing: TimingConfig,
    mode: PolicyMode,
    originate: &[usize],
    relationships: Option<&dyn Fn(usize, usize) -> Relationship>,
) -> (Sim, Vec<NodeId>) {
    let mut sim = Sim::new(seed);
    let mut nodes = Vec::new();
    for i in 0..n {
        let mut cfg = RouterConfig::new(asn_of(i))
            .with_mode(mode)
            .with_timing(timing.clone());
        if originate.contains(&i) {
            cfg = cfg.with_origin(prefix_of(i));
        }
        let id = sim.add_node(format!("r{i}"), |id| Router::new(id, cfg));
        nodes.push(id);
    }
    for &(a, b) in edges {
        let link = sim.add_link(nodes[a], nodes[b], MS5.clone());
        let rel_ab = relationships.map(|f| f(a, b)).unwrap_or(Relationship::Peer);
        let (na, nb) = (nodes[a], nodes[b]);
        sim.with_node::<Router, _>(na, |r| {
            r.add_neighbor(NeighborConfig::new(nb, link, asn_of(b), rel_ab));
        });
        sim.with_node::<Router, _>(nb, |r| {
            r.add_neighbor(NeighborConfig::new(na, link, asn_of(a), rel_ab.inverse()));
        });
    }
    (sim, nodes)
}

fn fast_timing() -> TimingConfig {
    TimingConfig {
        mrai: SimDuration::ZERO,
        ..Default::default()
    }
}

fn clique_edges(n: usize) -> Vec<(usize, usize)> {
    let mut e = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            e.push((i, j));
        }
    }
    e
}

#[test]
fn pair_exchanges_prefixes() {
    let (mut sim, nodes) = build(
        1,
        2,
        &[(0, 1)],
        fast_timing(),
        PolicyMode::AllPermit,
        &[0, 1],
        None,
    );
    let q = sim.run_until_quiescent(SimTime::from_secs(60));
    assert!(q.quiescent);
    // Each router has its own prefix (local) and the peer's.
    let r0 = sim.node_ref::<Router>(nodes[0]);
    assert_eq!(r0.session_state(nodes[1]), Some(SessionState::Established));
    assert_eq!(r0.loc_rib().len(), 2);
    assert_eq!(r0.best(prefix_of(0)).unwrap().source, RouteSource::Local);
    let via = r0.best(prefix_of(1)).unwrap();
    assert_eq!(via.source, RouteSource::Peer(0));
    assert_eq!(via.attrs.as_path.flatten(), vec![asn_of(1)]);
    assert_eq!(r0.next_hop_node(prefix_of(1)), Some(nodes[1]));
    assert_eq!(r0.next_hop_node(prefix_of(0)), None);
}

#[test]
fn line_of_three_propagates_with_as_path() {
    let (mut sim, nodes) = build(
        2,
        3,
        &[(0, 1), (1, 2)],
        fast_timing(),
        PolicyMode::AllPermit,
        &[0],
        None,
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    let r2 = sim.node_ref::<Router>(nodes[2]);
    let best = r2.best(prefix_of(0)).expect("propagated through r1");
    assert_eq!(best.attrs.as_path.flatten(), vec![asn_of(1), asn_of(0)]);
    assert_eq!(r2.next_hop_node(prefix_of(0)), Some(nodes[1]));
    // NEXT_HOP rewritten at each eBGP hop: r2 sees r1's next-hop IP.
    let r1 = sim.node_ref::<Router>(nodes[1]);
    assert_eq!(
        best.attrs.next_hop,
        r1.config().next_hop,
        "next-hop-self at each hop"
    );
}

#[test]
fn withdraw_command_removes_prefix_everywhere() {
    let (mut sim, nodes) = build(
        3,
        4,
        &clique_edges(4),
        fast_timing(),
        PolicyMode::AllPermit,
        &[0],
        None,
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    for &nd in &nodes {
        assert!(sim.node_ref::<Router>(nd).best(prefix_of(0)).is_some());
    }
    sim.inject(
        nodes[0],
        BgpOnlyMsg::Command(RouterCommand::Withdraw(prefix_of(0))),
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(120)).quiescent);
    for &nd in &nodes {
        assert!(
            sim.node_ref::<Router>(nd).best(prefix_of(0)).is_none(),
            "stale route survived at {nd}"
        );
    }
    assert!(sim.board().count(Activity::PrefixWithdrawn) == 1);
}

#[test]
fn announce_command_installs_everywhere() {
    let (mut sim, nodes) = build(
        4,
        3,
        &[(0, 1), (1, 2)],
        fast_timing(),
        PolicyMode::AllPermit,
        &[],
        None,
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    let p = pfx("192.0.2.0/24");
    sim.inject(nodes[2], BgpOnlyMsg::Command(RouterCommand::Announce(p)));
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    for &nd in &nodes {
        assert!(sim.node_ref::<Router>(nd).best(p).is_some());
    }
    let r0 = sim.node_ref::<Router>(nodes[0]);
    assert_eq!(
        r0.best(p).unwrap().attrs.as_path.flatten(),
        vec![asn_of(1), asn_of(2)]
    );
}

#[test]
fn gao_rexford_blocks_peer_to_peer_transit() {
    // Triangle of peers 0-1-2; 3 is a customer of 0 and originates.
    // 1 and 2 learn the route from 0 (customer route, exported to peers),
    // but 1 must NOT re-export to 2 and vice versa: each ends with exactly
    // one candidate.
    let rels = |a: usize, b: usize| -> Relationship {
        match (a, b) {
            (0, 3) => Relationship::Customer, // 3 is 0's customer
            _ => Relationship::Peer,
        }
    };
    let (mut sim, nodes) = build(
        5,
        4,
        &[(0, 1), (0, 2), (1, 2), (0, 3)],
        fast_timing(),
        PolicyMode::GaoRexford,
        &[3],
        Some(&rels),
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    let p = prefix_of(3);
    for i in [1, 2] {
        let r = sim.node_ref::<Router>(nodes[i]);
        assert!(r.best(p).is_some(), "peer {i} must reach the customer");
        assert_eq!(
            r.adj_in().candidates(p).count(),
            1,
            "peer {i} must have exactly one (valley-free) candidate"
        );
        assert_eq!(
            r.best(p).unwrap().attrs.as_path.flatten(),
            vec![asn_of(0), asn_of(3)]
        );
    }
}

#[test]
fn gao_rexford_customer_prefers_customer_route() {
    // 0 has customer 1 and peer 2; both can reach p (1 originates, 2 transits
    // a longer path from 1 via 3... simpler: both 1 and 2 originate p is not
    // possible). Construct: 1 originates p. 2 is also a provider path to p:
    // 2 is a provider of 1 too, so 2 hears p from its customer 1 and exports
    // to peer 0. 0 now has p via customer 1 (path len 1) and via peer 2
    // (path len 2). Make the customer path LONGER by prepending? Instead rely
    // on local-pref: give 0 only the peer link to 2 cheaper... The point:
    // customer local-pref 130 beats peer 110 regardless of path length.
    // Topology: 0-1 (1 customer of 0), 0-2 (peer), 2-1 (1 customer of 2).
    let rels = |a: usize, b: usize| -> Relationship {
        match (a, b) {
            (0, 1) => Relationship::Customer,
            (0, 2) => Relationship::Peer,
            (2, 1) => Relationship::Customer,
            _ => unreachable!(),
        }
    };
    let (mut sim, nodes) = build(
        6,
        3,
        &[(0, 1), (0, 2), (2, 1)],
        fast_timing(),
        PolicyMode::GaoRexford,
        &[1],
        Some(&rels),
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    let r0 = sim.node_ref::<Router>(nodes[0]);
    let best = r0.best(prefix_of(1)).unwrap();
    assert_eq!(best.source, RouteSource::Peer(0), "direct customer route");
    assert_eq!(best.attrs.local_pref, Some(130));
}

#[test]
fn link_failure_triggers_failover() {
    // Square: 0-1, 0-2, 1-3, 2-3. 3 originates. 0 has two 2-hop paths.
    let (mut sim, nodes) = build(
        7,
        4,
        &[(0, 1), (0, 2), (1, 3), (2, 3)],
        fast_timing(),
        PolicyMode::AllPermit,
        &[3],
        None,
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    let p = prefix_of(3);
    let first_hop = sim.node_ref::<Router>(nodes[0]).next_hop_node(p).unwrap();
    assert!(first_hop == nodes[1] || first_hop == nodes[2]);

    // Fail the link 0 uses.
    let fail_link = sim
        .links()
        .iter()
        .find(|l| l.touches(nodes[0]) && l.touches(first_hop))
        .unwrap()
        .id;
    sim.set_link_admin(fail_link, false);
    assert!(sim.run_until_quiescent(SimTime::from_secs(120)).quiescent);
    let r0 = sim.node_ref::<Router>(nodes[0]);
    let second_hop = r0.next_hop_node(p).expect("failover path found");
    assert_ne!(second_hop, first_hop);
    assert!(r0.best(p).unwrap().attrs.as_path.path_len() == 2);
}

#[test]
fn as_path_loop_rejected() {
    // 0(as A) - 1(as B) - 2(as A again): 2 must reject 0's routes because
    // its own ASN already appears in the path.
    let mut sim = Sim::new(8);
    let shared = Asn(64999);
    let mk = |asn: Asn, origin: Option<Prefix>| {
        let mut cfg = RouterConfig::new(asn).with_timing(fast_timing());
        if let Some(p) = origin {
            cfg = cfg.with_origin(p);
        }
        cfg
    };
    let c0 = mk(shared, Some(pfx("10.1.0.0/16")));
    let c1 = mk(Asn(65001), None);
    let c2 = mk(shared, None);
    let n0 = sim.add_node("r0", |id| Router::new(id, c0));
    let n1 = sim.add_node("r1", |id| Router::new(id, c1));
    let n2 = sim.add_node("r2", |id| Router::new(id, c2));
    let l01 = sim.add_link(n0, n1, MS5.clone());
    let l12 = sim.add_link(n1, n2, MS5.clone());
    sim.with_node::<Router, _>(n0, |r| {
        r.add_neighbor(NeighborConfig::new(n1, l01, Asn(65001), Relationship::Peer))
    });
    sim.with_node::<Router, _>(n1, |r| {
        r.add_neighbor(NeighborConfig::new(n0, l01, shared, Relationship::Peer));
        r.add_neighbor(NeighborConfig::new(n2, l12, shared, Relationship::Peer));
    });
    sim.with_node::<Router, _>(n2, |r| {
        r.add_neighbor(NeighborConfig::new(n1, l12, Asn(65001), Relationship::Peer))
    });
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    let r2 = sim.node_ref::<Router>(n2);
    assert!(
        r2.best(pfx("10.1.0.0/16")).is_none(),
        "looped route accepted"
    );
    assert!(r2.stats().loop_rejected >= 1);
}

#[test]
fn session_reset_recovers() {
    let (mut sim, nodes) = build(
        9,
        2,
        &[(0, 1)],
        fast_timing(),
        PolicyMode::AllPermit,
        &[1],
        None,
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    assert!(sim
        .node_ref::<Router>(nodes[0])
        .best(prefix_of(1))
        .is_some());

    sim.inject(
        nodes[0],
        BgpOnlyMsg::Command(RouterCommand::ResetSession(nodes[1])),
    );
    let q = sim.run_until_quiescent(SimTime::from_secs(120));
    assert!(q.quiescent);
    let r0 = sim.node_ref::<Router>(nodes[0]);
    assert_eq!(
        r0.session_state(nodes[1]),
        Some(SessionState::Established),
        "session re-established after admin reset"
    );
    assert!(r0.best(prefix_of(1)).is_some(), "routes relearned");
    assert!(r0.stats().sessions_dropped >= 1);
}

#[test]
fn mrai_slows_convergence() {
    // Same withdrawal scenario on a 6-clique with MRAI 0 vs 30s: path
    // exploration rounds must make the 30s case dramatically slower.
    let run = |mrai_secs: u64| -> SimDuration {
        let timing = TimingConfig {
            mrai: SimDuration::from_secs(mrai_secs),
            ..Default::default()
        };
        let (mut sim, nodes) = build(
            10,
            6,
            &clique_edges(6),
            timing,
            PolicyMode::AllPermit,
            &[0],
            None,
        );
        assert!(sim.run_until_quiescent(SimTime::from_secs(600)).quiescent);
        sim.reset_board();
        let start = sim.now();
        sim.inject(
            nodes[0],
            BgpOnlyMsg::Command(RouterCommand::Withdraw(prefix_of(0))),
        );
        let q = sim.run_until_quiescent(start + SimDuration::from_secs(3600));
        assert!(q.quiescent);
        sim.board()
            .last_routing_change()
            .map(|t| t.saturating_since(start))
            .unwrap_or(SimDuration::ZERO)
    };
    let fast = run(0);
    let slow = run(30);
    assert!(
        slow.as_millis() > fast.as_millis() * 5,
        "MRAI must dominate: fast={fast} slow={slow}"
    );
    assert!(slow >= SimDuration::from_secs(10), "slow={slow}");
}

#[test]
fn clique_withdrawal_shows_path_exploration() {
    // On withdrawal in a clique, routers explore ghost routes: the total
    // number of updates after the withdrawal far exceeds the clique degree.
    let (mut sim, nodes) = build(
        11,
        8,
        &clique_edges(8),
        TimingConfig {
            mrai: SimDuration::from_secs(5),
            ..Default::default()
        },
        PolicyMode::AllPermit,
        &[0],
        None,
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(600)).quiescent);
    sim.reset_board();
    sim.inject(
        nodes[0],
        BgpOnlyMsg::Command(RouterCommand::Withdraw(prefix_of(0))),
    );
    assert!(
        sim.run_until_quiescent(sim.now() + SimDuration::from_secs(3600))
            .quiescent
    );
    let updates = sim.board().count(Activity::UpdateSent);
    assert!(
        updates > 30,
        "expected ghost-route churn, saw only {updates} updates"
    );
    // And the prefix must be gone everywhere.
    for &nd in &nodes {
        assert!(sim.node_ref::<Router>(nd).best(prefix_of(0)).is_none());
    }
}

#[test]
fn hold_timer_tears_down_dead_session() {
    // Enable keepalives; then make the link lossy enough to eat everything:
    // the hold timer must fire and drop the session.
    let timing = TimingConfig {
        mrai: SimDuration::ZERO,
        hold_time_secs: 9,
        ..Default::default()
    };
    let (mut sim, nodes) = build(12, 2, &[(0, 1)], timing, PolicyMode::AllPermit, &[1], None);
    sim.run_until(SimTime::from_secs(5));
    assert_eq!(
        sim.node_ref::<Router>(nodes[0]).session_state(nodes[1]),
        Some(SessionState::Established)
    );
    // Kill all traffic silently (loss, not link-down, so no notification).
    let link = sim.links()[0].id;
    sim.set_link_loss(link, 1.0);
    sim.run_until(SimTime::from_secs(40));
    let r0 = sim.node_ref::<Router>(nodes[0]);
    assert_ne!(
        r0.session_state(nodes[1]),
        Some(SessionState::Established),
        "hold timer should have expired"
    );
    assert!(
        r0.best(prefix_of(1)).is_none(),
        "routes flushed on hold expiry"
    );
}

#[test]
fn deterministic_across_identical_runs() {
    let run = |seed: u64| {
        let (mut sim, nodes) = build(
            seed,
            5,
            &clique_edges(5),
            TimingConfig {
                mrai: SimDuration::from_secs(5),
                ..Default::default()
            },
            PolicyMode::AllPermit,
            &[0, 1],
            None,
        );
        assert!(sim.run_until_quiescent(SimTime::from_secs(600)).quiescent);
        sim.inject(
            nodes[0],
            BgpOnlyMsg::Command(RouterCommand::Withdraw(prefix_of(0))),
        );
        let q = sim.run_until_quiescent(sim.now() + SimDuration::from_secs(3600));
        (
            q.time,
            sim.stats().events_processed,
            sim.board().count(Activity::UpdateSent),
        )
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42).1, run(43).1, "different seeds take different paths");
}

#[test]
fn updates_carry_decodable_wire_bytes() {
    // Sanity-check the envelope layer: grab stats to ensure real traffic
    // flowed, and no decode errors were counted anywhere.
    let (mut sim, nodes) = build(
        13,
        4,
        &clique_edges(4),
        fast_timing(),
        PolicyMode::AllPermit,
        &[0, 1, 2, 3],
        None,
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    let mut total_updates = 0;
    for &nd in &nodes {
        let r = sim.node_ref::<Router>(nd);
        assert_eq!(r.stats().decode_errors, 0);
        total_updates += r.stats().updates_received;
        assert_eq!(r.loc_rib().len(), 4, "full reachability");
    }
    assert!(total_updates > 0);
    assert!(sim.stats().bytes_delivered > 0);
}

#[test]
fn data_plane_ping_end_to_end() {
    use bgpsdn_netsim::DataPacket;
    use std::net::Ipv4Addr;
    // Line 0-1-2; 0 and 2 originate; ping from 0's address to 2's.
    let (mut sim, nodes) = build(
        20,
        3,
        &[(0, 1), (1, 2)],
        fast_timing(),
        PolicyMode::AllPermit,
        &[0, 2],
        None,
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    // Destination host 10.3.0.77 lives inside r2's 10.3.0.0/16.
    let src = Ipv4Addr::new(10, 1, 0, 1);
    let dst = Ipv4Addr::new(10, 3, 0, 77);
    sim.inject(
        nodes[0],
        BgpOnlyMsg::Data(DataPacket::echo_request(src, dst, 7)),
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(10)).quiescent);
    let r2 = sim.node_ref::<Router>(nodes[2]);
    assert_eq!(r2.stats().data_delivered, 1);
    assert_eq!(r2.stats().echo_replies, 1);
    let r0 = sim.node_ref::<Router>(nodes[0]);
    // The reply came back to 0's prefix and was delivered locally.
    assert_eq!(r0.stats().data_delivered, 1);
    let r1 = sim.node_ref::<Router>(nodes[1]);
    assert_eq!(r1.stats().data_forwarded, 2, "transit in both directions");
}

#[test]
fn data_plane_unroutable_is_counted() {
    use bgpsdn_netsim::DataPacket;
    use std::net::Ipv4Addr;
    let (mut sim, nodes) = build(
        21,
        2,
        &[(0, 1)],
        fast_timing(),
        PolicyMode::AllPermit,
        &[0],
        None,
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    sim.inject(
        nodes[0],
        BgpOnlyMsg::Data(DataPacket::echo_request(
            Ipv4Addr::new(10, 1, 0, 1),
            Ipv4Addr::new(203, 0, 113, 1),
            1,
        )),
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(10)).quiescent);
    assert_eq!(sim.node_ref::<Router>(nodes[0]).stats().data_no_route, 1);
}

#[test]
fn route_flap_damping_suppresses_and_reuses() {
    use bgpsdn_bgp::DampingConfig;
    // A (origin, flapping) --- B (damping enabled).
    let mut sim = Sim::new(55);
    let a_cfg = RouterConfig::new(asn_of(0))
        .with_origin(prefix_of(0))
        .with_timing(fast_timing());
    let mut b_cfg = RouterConfig::new(asn_of(1)).with_timing(fast_timing());
    b_cfg.damping = Some(DampingConfig {
        half_life: SimDuration::from_secs(20),
        ..Default::default()
    });
    let a = sim.add_node("a", |id| Router::new(id, a_cfg));
    let b = sim.add_node("b", |id| Router::new(id, b_cfg));
    let l = sim.add_link(a, b, MS5.clone());
    sim.with_node::<Router, _>(a, |r| {
        r.add_neighbor(NeighborConfig::new(b, l, asn_of(1), Relationship::Peer))
    });
    sim.with_node::<Router, _>(b, |r| {
        r.add_neighbor(NeighborConfig::new(a, l, asn_of(0), Relationship::Peer))
    });
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    assert!(sim.node_ref::<Router>(b).best(prefix_of(0)).is_some());

    // Flap three times: each withdrawal adds 1000 penalty at B.
    for _ in 0..3 {
        sim.inject(
            a,
            BgpOnlyMsg::Command(RouterCommand::Withdraw(prefix_of(0))),
        );
        sim.run_for(SimDuration::from_secs(1));
        sim.inject(
            a,
            BgpOnlyMsg::Command(RouterCommand::Announce(prefix_of(0))),
        );
        sim.run_for(SimDuration::from_secs(1));
    }
    sim.run_for(SimDuration::from_secs(1));
    let rb = sim.node_ref::<Router>(b);
    assert!(
        rb.best(prefix_of(0)).is_none(),
        "flapped route must be suppressed despite being announced"
    );
    assert!(rb.stats().damped_suppressed > 0);
    assert!(
        rb.adj_in().get(prefix_of(0), 0).is_some(),
        "the route stays in Adj-RIB-In while suppressed"
    );

    // Penalty ~3000 decays to the reuse threshold (750) in two half-lives
    // (40 s); the reuse timer must bring the route back without any new
    // update from A.
    let q = sim.run_until_quiescent(SimTime::from_secs(600));
    assert!(q.quiescent);
    assert!(
        sim.node_ref::<Router>(b).best(prefix_of(0)).is_some(),
        "suppression must lift after decay"
    );
}

#[test]
fn route_refresh_resends_full_table() {
    // Pair with several prefixes; ask the peer for a refresh and verify the
    // full table is re-sent (update counters move, RIB state unchanged).
    let (mut sim, nodes) = build(
        60,
        2,
        &[(0, 1)],
        fast_timing(),
        PolicyMode::AllPermit,
        &[0, 1],
        None,
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    for p in ["192.0.2.0/24", "198.51.100.0/24"] {
        sim.inject(
            nodes[1],
            BgpOnlyMsg::Command(RouterCommand::Announce(pfx(p))),
        );
    }
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    let before_rib = sim.node_ref::<Router>(nodes[0]).loc_rib().len();
    let before_updates = sim.node_ref::<Router>(nodes[1]).stats().updates_sent;

    sim.inject(
        nodes[0],
        BgpOnlyMsg::Command(RouterCommand::RequestRefresh(nodes[1])),
    );
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);

    let r0 = sim.node_ref::<Router>(nodes[0]);
    assert_eq!(r0.loc_rib().len(), before_rib, "RIB content unchanged");
    let r1 = sim.node_ref::<Router>(nodes[1]);
    assert!(
        r1.stats().updates_sent > before_updates,
        "peer must re-advertise on refresh"
    );
    // 3 prefixes re-announced toward node 0 (its own prefix is never
    // exported back to it as the source is local to node 0).
    assert!(r1.stats().updates_sent - before_updates >= 1);
}

#[test]
fn max_prefix_limit_tears_down_noisy_peer() {
    let mut sim = Sim::new(61);
    let noisy_cfg = RouterConfig::new(asn_of(0)).with_timing(fast_timing());
    let guarded_cfg = RouterConfig::new(asn_of(1)).with_timing(fast_timing());
    let noisy = sim.add_node("noisy", |id| Router::new(id, noisy_cfg));
    let guarded = sim.add_node("guarded", |id| Router::new(id, guarded_cfg));
    let l = sim.add_link(noisy, guarded, MS5.clone());
    sim.with_node::<Router, _>(noisy, |r| {
        r.add_neighbor(NeighborConfig::new(
            guarded,
            l,
            asn_of(1),
            Relationship::Peer,
        ));
    });
    sim.with_node::<Router, _>(guarded, |r| {
        let mut n = NeighborConfig::new(noisy, l, asn_of(0), Relationship::Peer);
        n.max_prefixes = Some(3);
        r.add_neighbor(n);
    });
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);

    // Announce 5 prefixes: over the limit of 3.
    for i in 0..5u32 {
        sim.inject(
            noisy,
            BgpOnlyMsg::Command(RouterCommand::Announce(pfx(&format!("203.0.{i}.0/24")))),
        );
    }
    sim.run_for(SimDuration::from_secs(5));
    let g = sim.node_ref::<Router>(guarded);
    assert!(g.stats().max_prefix_teardowns >= 1, "guardrail must fire");
    // All routes from the noisy peer were flushed on teardown.
    // (The session may retry and trip again; routes never accumulate past
    // the teardown.)
    assert!(g.adj_in().count_for_peer(0) <= 3);
}

#[test]
fn as_path_prepending_steers_traffic_away() {
    use bgpsdn_bgp::{RouteMap, Rule, SetAction};
    // Square: 0-1, 0-2, 1-3, 2-3; 3 originates. Without policy the tie
    // breaks to the lower router id (via 1). Prepending on 3's export
    // toward 1 makes the path via 2 strictly shorter.
    let (mut sim, nodes) = build(
        70,
        4,
        &[(0, 1), (0, 2), (1, 3), (2, 3)],
        fast_timing(),
        PolicyMode::AllPermit,
        &[3],
        None,
    );
    // Install the export map on router 3 toward neighbor 1 before start.
    sim.with_node::<Router, _>(nodes[3], |r| {
        let map = RouteMap {
            rules: vec![Rule {
                conds: vec![],
                actions: vec![SetAction::Prepend(asn_of(3), 2)],
                permit: true,
            }],
            default_permit: true,
        };
        // Neighbor index 0 on router 3 is node 1 (edge order above).
        r.config_mut().neighbors[0].export_map = Some(map);
    });
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    let r0 = sim.node_ref::<Router>(nodes[0]);
    assert_eq!(
        r0.next_hop_node(prefix_of(3)),
        Some(nodes[2]),
        "traffic must avoid the prepended path"
    );
    let best = r0.best(prefix_of(3)).unwrap();
    assert_eq!(best.attrs.as_path.path_len(), 2);
}

#[test]
fn communities_cross_the_wire_and_drive_import_policy() {
    use bgpsdn_bgp::{Community, MatchCond, RouteMap, Rule, SetAction};
    // 0 originates; exports toward 1 tagged 65000:80. Router 1's import map
    // matches the community and *lowers* local-pref below the default, so 1
    // prefers the untagged two-hop path via 2.
    let (mut sim, nodes) = build(
        71,
        3,
        &[(0, 1), (0, 2), (1, 2)],
        fast_timing(),
        PolicyMode::AllPermit,
        &[0],
        None,
    );
    let tag = Community::new(65000, 80);
    sim.with_node::<Router, _>(nodes[0], |r| {
        // Neighbor 0 of router 0 is node 1.
        r.config_mut().neighbors[0].export_map = Some(RouteMap {
            rules: vec![Rule {
                conds: vec![],
                actions: vec![SetAction::AddCommunity(tag)],
                permit: true,
            }],
            default_permit: true,
        });
    });
    sim.with_node::<Router, _>(nodes[1], |r| {
        r.config_mut().neighbors[0].import_map = Some(RouteMap {
            rules: vec![Rule {
                conds: vec![MatchCond::CommunityHas(tag)],
                actions: vec![SetAction::LocalPref(50)],
                permit: true,
            }],
            default_permit: true,
        });
    });
    assert!(sim.run_until_quiescent(SimTime::from_secs(60)).quiescent);
    let r1 = sim.node_ref::<Router>(nodes[1]);
    let best = r1.best(prefix_of(0)).expect("reachable");
    assert_eq!(
        best.attrs.as_path.flatten(),
        vec![asn_of(2), asn_of(0)],
        "depreferenced direct path loses to the clean detour"
    );
    // The community genuinely crossed the wire: the direct candidate holds it.
    let direct = r1.adj_in().get(prefix_of(0), 0).expect("direct candidate");
    assert!(direct.attrs.communities.contains(&tag));
}
