//! Convergence detection and measurement.
//!
//! The framework offers the paper's "wait until BGP has converged" command
//! in two flavors:
//!
//! * **Quiescence-based** (exact): run the simulator until only maintenance
//!   events remain, then read the last routing-plane change off the
//!   [`ActivityBoard`]. Deterministic and precise — the default.
//! * **Stability-window** (emulation-faithful): poll in fixed steps and
//!   declare convergence after a window with no routing activity, the way a
//!   real testbed (or the paper's Mininet framework) must. Useful when
//!   background noise (keepalives with real BGP churn) never quiesces.

use bgpsdn_netsim::{ActivityBoard, SimDuration, SimTime, TraceRecord};

/// Outcome of a convergence measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// True when the network settled before the deadline.
    pub converged: bool,
    /// Time of the last routing-plane change at or after the event
    /// (`None`: the event caused no visible change at all).
    pub last_change: Option<SimTime>,
    /// `last_change - event`, or zero when nothing changed.
    pub duration: SimDuration,
}

/// Measure convergence of an event that happened at `event`, given the
/// activity board after the simulator went quiescent (or hit its deadline).
pub fn measure(board: &ActivityBoard, event: SimTime, quiescent: bool) -> ConvergenceReport {
    let last = board.last_routing_change().filter(|&t| t >= event);
    ConvergenceReport {
        converged: quiescent,
        last_change: last,
        duration: last
            .map(|t| t.saturating_since(event))
            .unwrap_or(SimDuration::ZERO),
    }
}

/// Measure convergence from typed trace records instead of the activity
/// board: the last record at or after `event` whose payload
/// [`is_routing_change`](bgpsdn_netsim::TraceEvent::is_routing_change) —
/// RIB changes and flow-table mutations, never free-text notes — marks the
/// end of the transient. This is what `bgpsdn report` computes offline from
/// a JSONL artifact; the board-based [`measure`] is its online equivalent.
pub fn measure_trace<'a>(
    records: impl IntoIterator<Item = &'a TraceRecord>,
    event: SimTime,
    quiescent: bool,
) -> ConvergenceReport {
    let last = records
        .into_iter()
        .filter(|r| r.time >= event && r.event.is_routing_change())
        .map(|r| r.time)
        .max();
    ConvergenceReport {
        converged: quiescent,
        last_change: last,
        duration: last
            .map(|t| t.saturating_since(event))
            .unwrap_or(SimDuration::ZERO),
    }
}

/// Incremental stability-window detector for step-wise runs.
#[derive(Debug, Clone)]
pub struct StabilityProbe {
    window: SimDuration,
    /// Last routing change the probe has seen.
    last_change: Option<SimTime>,
}

impl StabilityProbe {
    /// A probe declaring convergence after `window` without routing changes.
    pub fn new(window: SimDuration) -> Self {
        StabilityProbe {
            window,
            last_change: None,
        }
    }

    /// Feed the current board state at time `now`; returns `Some(report)`
    /// once the stability window has elapsed since the last change.
    pub fn poll(&mut self, board: &ActivityBoard, now: SimTime) -> Option<ConvergenceReport> {
        self.last_change = board.last_routing_change().or(self.last_change);
        let reference = self.last_change.unwrap_or(SimTime::ZERO);
        if now.saturating_since(reference) >= self.window {
            Some(ConvergenceReport {
                converged: true,
                last_change: self.last_change,
                duration: SimDuration::ZERO, // caller computes vs. its event
            })
        } else {
            None
        }
    }

    /// The last routing change the probe observed.
    pub fn last_change(&self) -> Option<SimTime> {
        self.last_change
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsdn_netsim::Activity;

    #[test]
    fn measure_computes_duration_from_event() {
        let mut board = ActivityBoard::default();
        board.report(SimTime::from_secs(1), Activity::RibChange);
        board.report(SimTime::from_secs(9), Activity::UpdateSent);
        let r = measure(&board, SimTime::from_secs(2), true);
        assert!(r.converged);
        assert_eq!(r.last_change, Some(SimTime::from_secs(9)));
        assert_eq!(r.duration, SimDuration::from_secs(7));
    }

    #[test]
    fn measure_ignores_changes_before_event() {
        let mut board = ActivityBoard::default();
        board.report(SimTime::from_secs(1), Activity::RibChange);
        let r = measure(&board, SimTime::from_secs(2), true);
        assert_eq!(r.last_change, None);
        assert_eq!(r.duration, SimDuration::ZERO);
    }

    #[test]
    fn measure_not_converged_on_deadline() {
        let board = ActivityBoard::default();
        let r = measure(&board, SimTime::ZERO, false);
        assert!(!r.converged);
    }

    #[test]
    fn measure_trace_uses_typed_routing_changes_only() {
        use bgpsdn_netsim::{NodeId, ObsPrefix, Trace, TraceCategory, TraceEvent};
        let mut t = Trace::new(16);
        t.enable_all();
        t.record(
            SimTime::from_secs(1),
            Some(NodeId(1)),
            TraceCategory::Route,
            || TraceEvent::RibChange {
                prefix: ObsPrefix::new(0x0a000000, 8),
                old_path: None,
                new_path: Some(vec![65001]),
            },
        );
        t.record(
            SimTime::from_secs(5),
            Some(NodeId(2)),
            TraceCategory::Route,
            || TraceEvent::RibChange {
                prefix: ObsPrefix::new(0x0a000000, 8),
                old_path: Some(vec![65001]),
                new_path: None,
            },
        );
        // A later session event is not a routing change and must not extend
        // the measured transient.
        t.record(
            SimTime::from_secs(9),
            Some(NodeId(2)),
            TraceCategory::Session,
            || TraceEvent::SessionUp { peer: 3 },
        );
        let r = measure_trace(t.records(), SimTime::from_secs(2), true);
        assert!(r.converged);
        assert_eq!(r.last_change, Some(SimTime::from_secs(5)));
        assert_eq!(r.duration, SimDuration::from_secs(3));
        // Changes before the event are excluded.
        let r = measure_trace(t.records(), SimTime::from_secs(6), true);
        assert_eq!(r.last_change, None);
    }

    #[test]
    fn stability_probe_waits_out_the_window() {
        let mut board = ActivityBoard::default();
        let mut probe = StabilityProbe::new(SimDuration::from_secs(5));
        board.report(SimTime::from_secs(1), Activity::FibChange);
        assert!(probe.poll(&board, SimTime::from_secs(3)).is_none());
        assert!(probe.poll(&board, SimTime::from_secs(5)).is_none());
        let r = probe.poll(&board, SimTime::from_secs(6)).unwrap();
        assert!(r.converged);
        assert_eq!(probe.last_change(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn stability_probe_resets_on_new_activity() {
        let mut board = ActivityBoard::default();
        let mut probe = StabilityProbe::new(SimDuration::from_secs(5));
        board.report(SimTime::from_secs(1), Activity::FibChange);
        assert!(probe.poll(&board, SimTime::from_secs(4)).is_none());
        board.report(SimTime::from_secs(4), Activity::FibChange);
        assert!(probe.poll(&board, SimTime::from_secs(8)).is_none());
        assert!(probe.poll(&board, SimTime::from_secs(9)).is_some());
    }
}
