//! The route collector node.
//!
//! "All BGP routers peer with a BGP route collector, which collects routing
//! updates for monitoring purposes." The collector is a passive BGP speaker:
//! it accepts sessions from any router (monitored routers configure it as a
//! [`Relationship::Monitor`](bgpsdn_bgp::Relationship) neighbor, export-only
//! and unthrottled), decodes every UPDATE and appends prefix events to an
//! [`UpdateLog`].

use std::collections::HashMap;

use bgpsdn_bgp::{Asn, BgpApp, BgpEnvelope, BgpMessage, RouterId, SessionEvent, SessionHandshake};
use bgpsdn_netsim::{Ctx, LinkId, Node, NodeId, TraceCategory, TraceEvent};

use crate::logview::{LogAction, LogEntry, UpdateLog};

/// Collector counters.
#[derive(Debug, Clone, Default)]
pub struct CollectorStats {
    /// Sessions currently established.
    pub sessions_up: usize,
    /// UPDATE messages received.
    pub updates: u64,
    /// Decode failures.
    pub decode_errors: u64,
}

struct MonitoredPeer {
    handshake: SessionHandshake,
    link: LinkId,
    asn: Asn,
}

/// The passive monitoring speaker.
pub struct RouteCollector<M> {
    id: NodeId,
    my_asn: Asn,
    my_id: RouterId,
    peers: HashMap<NodeId, MonitoredPeer>,
    log: UpdateLog,
    stats: CollectorStats,
    _m: std::marker::PhantomData<fn() -> M>,
}

impl<M: BgpApp> RouteCollector<M> {
    /// Build a collector. It conventionally uses a private ASN.
    pub fn new(id: NodeId, my_asn: Asn, my_id: RouterId) -> Self {
        RouteCollector {
            id,
            my_asn,
            my_id,
            peers: HashMap::new(),
            log: UpdateLog::default(),
            stats: CollectorStats::default(),
            _m: std::marker::PhantomData,
        }
    }

    /// Pre-size the peer table — the network builder knows the monitored
    /// router count up front, so registration never rehashes.
    pub fn reserve_peers(&mut self, additional: usize) {
        self.peers.reserve(additional);
    }

    /// Register a router to monitor (it must configure a monitor session
    /// toward the collector over `link`). The collector stays passive: the
    /// router initiates.
    pub fn add_monitored(&mut self, router: NodeId, router_asn: Asn, link: LinkId) {
        self.peers.insert(
            router,
            MonitoredPeer {
                // Accept any ASN: collectors don't validate peers.
                handshake: SessionHandshake::new(self.my_asn, self.my_id, 0, None),
                link,
                asn: router_asn,
            },
        );
    }

    /// The recorded update log.
    pub fn log(&self) -> &UpdateLog {
        &self.log
    }

    /// Reset the log between experiment phases.
    pub fn clear_log(&mut self) {
        self.log.clear();
    }

    /// Counters.
    pub fn stats(&self) -> &CollectorStats {
        &self.stats
    }

    /// How many monitored sessions are currently established.
    pub fn established_count(&self) -> usize {
        self.peers
            .values()
            .filter(|p| p.handshake.is_established())
            .count()
    }
}

impl<M: BgpApp> Node<M> for RouteCollector<M> {
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, _from: NodeId, _link: LinkId, msg: M) {
        let env = match msg.into_bgp() {
            Ok(env) if env.dst == self.id => env,
            _ => return,
        };
        let peer_node = env.src;
        let Some(peer) = self.peers.get_mut(&peer_node) else {
            return;
        };
        let bgp = match env.decode() {
            Ok(m) => m,
            Err(e) => {
                self.stats.decode_errors += 1;
                ctx.trace(TraceCategory::Session, || TraceEvent::Note {
                    category: TraceCategory::Session,
                    text: format!("decode error: {e}"),
                });
                return;
            }
        };
        if let BgpMessage::Update(upd) = &bgp {
            if peer.handshake.is_established() {
                self.stats.updates += 1;
                let now = ctx.now();
                for p in &upd.withdrawn {
                    self.log.push(LogEntry {
                        time: now,
                        peer: peer_node,
                        peer_asn: peer.asn,
                        prefix: *p,
                        action: LogAction::Withdraw,
                    });
                }
                if let Some(attrs) = &upd.attrs {
                    for p in &upd.nlri {
                        self.log.push(LogEntry {
                            time: now,
                            peer: peer_node,
                            peer_asn: peer.asn,
                            prefix: *p,
                            action: LogAction::Announce(attrs.as_path.clone()),
                        });
                    }
                }
                return;
            }
        }
        let was_up = peer.handshake.is_established();
        let (to_send, event) = peer.handshake.on_message(&bgp);
        let link = peer.link;
        for m in to_send {
            let reply = BgpEnvelope::new(self.id, peer_node, &m);
            ctx.send(link, M::from_bgp(reply));
        }
        match event {
            Some(SessionEvent::Established(_)) => {
                self.stats.sessions_up += 1;
                ctx.trace(TraceCategory::Session, || TraceEvent::SessionUp {
                    peer: peer_node.0,
                });
            }
            Some(SessionEvent::Closed(_)) if was_up => {
                self.stats.sessions_up = self.stats.sessions_up.saturating_sub(1);
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
