//! Route-change and topology visualization: Graphviz DOT export of the
//! network graph with current best-path highlighting — the paper's "network
//! graph creation … and route change visualization" tooling.

use std::collections::HashSet;

use bgpsdn_netsim::NodeId;

/// A node to draw.
#[derive(Debug, Clone)]
pub struct VizNode {
    /// Simulator node.
    pub id: NodeId,
    /// Display label (e.g. "AS65001").
    pub label: String,
    /// Role controls the shape/color.
    pub role: VizRole,
}

/// Drawing role of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VizRole {
    /// Legacy BGP router.
    LegacyRouter,
    /// SDN cluster member (switch).
    SdnSwitch,
    /// Cluster BGP speaker.
    Speaker,
    /// IDR controller.
    Controller,
    /// Route collector.
    Collector,
}

impl VizRole {
    fn style(self) -> (&'static str, &'static str) {
        match self {
            VizRole::LegacyRouter => ("ellipse", "#d0e0ff"),
            VizRole::SdnSwitch => ("box", "#d0ffd0"),
            VizRole::Speaker => ("hexagon", "#ffe0b0"),
            VizRole::Controller => ("diamond", "#ffc0c0"),
            VizRole::Collector => ("note", "#e0e0e0"),
        }
    }
}

/// Render a DOT graph. `edges` are undirected node pairs; `highlight`
/// contains directed `(from, to)` pairs to draw bold (current best paths).
pub fn render_dot(
    title: &str,
    nodes: &[VizNode],
    edges: &[(NodeId, NodeId)],
    highlight: &[(NodeId, NodeId)],
) -> String {
    let hl: HashSet<(NodeId, NodeId)> = highlight.iter().copied().collect();
    let mut out = String::new();
    out.push_str(&format!("graph \"{title}\" {{\n"));
    out.push_str("  layout=neato;\n  overlap=false;\n");
    for n in nodes {
        let (shape, fill) = n.role.style();
        out.push_str(&format!(
            "  n{} [label=\"{}\", shape={}, style=filled, fillcolor=\"{}\"];\n",
            n.id.0, n.label, shape, fill
        ));
    }
    for &(a, b) in edges {
        let bold = hl.contains(&(a, b)) || hl.contains(&(b, a));
        if bold {
            out.push_str(&format!(
                "  n{} -- n{} [penwidth=3, color=\"#c03030\"];\n",
                a.0, b.0
            ));
        } else {
            out.push_str(&format!("  n{} -- n{};\n", a.0, b.0));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_nodes_edges_and_highlights() {
        let nodes = vec![
            VizNode {
                id: NodeId(0),
                label: "AS1".into(),
                role: VizRole::LegacyRouter,
            },
            VizNode {
                id: NodeId(1),
                label: "AS2".into(),
                role: VizRole::SdnSwitch,
            },
            VizNode {
                id: NodeId(2),
                label: "ctrl".into(),
                role: VizRole::Controller,
            },
        ];
        let edges = vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))];
        let dot = render_dot("t", &nodes, &edges, &[(NodeId(1), NodeId(0))]);
        assert!(dot.starts_with("graph \"t\""));
        assert!(dot.contains("label=\"AS1\", shape=ellipse"));
        assert!(dot.contains("label=\"AS2\", shape=box"));
        assert!(dot.contains("shape=diamond"));
        // The 0-1 edge is highlighted regardless of direction.
        assert!(dot.contains("n0 -- n1 [penwidth=3"));
        assert!(dot.contains("n1 -- n2;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn all_roles_have_distinct_styles() {
        let roles = [
            VizRole::LegacyRouter,
            VizRole::SdnSwitch,
            VizRole::Speaker,
            VizRole::Controller,
            VizRole::Collector,
        ];
        let styles: HashSet<_> = roles.iter().map(|r| r.style()).collect();
        assert_eq!(styles.len(), roles.len());
    }
}
