//! # bgpsdn-collector — monitoring, measurement and analysis
//!
//! The framework's measurement plane, mirroring the paper's tooling:
//!
//! * [`collector`]: the passive BGP route collector every router peers with;
//! * [`logview`]: the update log and its analysis (convergence instants,
//!   path-exploration counts, per-router update counts, timelines);
//! * [`convergence`]: "wait until BGP has converged" — exact
//!   quiescence-based measurement and an emulation-style stability window;
//! * [`reach`]: offline data-plane reachability audit (loop and blackhole
//!   detection over installed FIBs/flow tables);
//! * [`viz`]: Graphviz export with best-path highlighting.

#![warn(missing_docs)]

pub mod collector;
pub mod convergence;
pub mod logview;
pub mod reach;
pub mod viz;

pub use collector::{CollectorStats, RouteCollector};
pub use convergence::{measure, measure_trace, ConvergenceReport, StabilityProbe};
pub use logview::{LogAction, LogEntry, UpdateLog};
pub use reach::{audit, walk, ConnectivityReport, Hop, PathResult};
pub use viz::{render_dot, VizNode, VizRole};
