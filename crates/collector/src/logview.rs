//! The update log: what the route collector records and what the analysis
//! tools consume — the framework's replacement for Quagga log files plus the
//! paper's "automatic log file analysis".

use std::collections::BTreeMap;

use bgpsdn_bgp::{AsPath, Asn, Prefix};
use bgpsdn_netsim::{NodeId, SimDuration, SimTime};

/// What an update said about one prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogAction {
    /// Announced with this AS path.
    Announce(AsPath),
    /// Withdrawn.
    Withdraw,
}

/// One prefix-level event recorded by the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// When it was received at the collector.
    pub time: SimTime,
    /// The monitored router (logical session endpoint).
    pub peer: NodeId,
    /// The monitored router's ASN.
    pub peer_asn: Asn,
    /// Affected prefix.
    pub prefix: Prefix,
    /// Announce or withdraw.
    pub action: LogAction,
}

/// An append-only log of prefix events with analysis helpers.
#[derive(Debug, Clone, Default)]
pub struct UpdateLog {
    entries: Vec<LogEntry>,
}

impl UpdateLog {
    /// Append one entry (times must be non-decreasing; the collector
    /// receives them in order).
    pub fn push(&mut self, entry: LogEntry) {
        debug_assert!(
            self.entries
                .last()
                .map(|e| e.time <= entry.time)
                .unwrap_or(true),
            "log must be time-ordered"
        );
        self.entries.push(entry);
    }

    /// All entries in arrival order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries within `[from, to)`.
    pub fn between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &LogEntry> {
        self.entries
            .iter()
            .filter(move |e| e.time >= from && e.time < to)
    }

    /// Entries touching one prefix.
    pub fn for_prefix(&self, prefix: Prefix) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(move |e| e.prefix == prefix)
    }

    /// Timestamp of the last entry at or after `from` (the classic
    /// "convergence instant" in collector-based measurement).
    pub fn last_activity_since(&self, from: SimTime) -> Option<SimTime> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.time >= from)
            .map(|e| e.time)
    }

    /// Convergence duration measured from `event` to the last observed
    /// update (or zero when nothing was seen).
    pub fn convergence_duration(&self, event: SimTime) -> SimDuration {
        self.last_activity_since(event)
            .map(|t| t.saturating_since(event))
            .unwrap_or(SimDuration::ZERO)
    }

    /// Distinct AS paths each monitored router announced for `prefix`
    /// within `[from, to)` — the path-exploration count of Oliveira et al.
    /// (the paper's convergence reference \[13\]).
    pub fn paths_explored(
        &self,
        prefix: Prefix,
        from: SimTime,
        to: SimTime,
    ) -> BTreeMap<Asn, usize> {
        let mut seen: BTreeMap<Asn, Vec<AsPath>> = BTreeMap::new();
        for e in self.between(from, to) {
            if e.prefix != prefix {
                continue;
            }
            if let LogAction::Announce(path) = &e.action {
                let paths = seen.entry(e.peer_asn).or_default();
                if !paths.contains(path) {
                    paths.push(path.clone());
                }
            }
        }
        seen.into_iter().map(|(a, v)| (a, v.len())).collect()
    }

    /// Total updates per monitored router within `[from, to)`.
    pub fn update_counts(&self, from: SimTime, to: SimTime) -> BTreeMap<Asn, usize> {
        let mut out: BTreeMap<Asn, usize> = BTreeMap::new();
        for e in self.between(from, to) {
            *out.entry(e.peer_asn).or_default() += 1;
        }
        out
    }

    /// The final state each router reported for `prefix`: `Some(path)` when
    /// the last event was an announce, `None` after a withdraw (routers that
    /// never mentioned the prefix are absent).
    pub fn final_state(&self, prefix: Prefix) -> BTreeMap<Asn, Option<AsPath>> {
        let mut out: BTreeMap<Asn, Option<AsPath>> = BTreeMap::new();
        for e in self.for_prefix(prefix) {
            let v = match &e.action {
                LogAction::Announce(p) => Some(p.clone()),
                LogAction::Withdraw => None,
            };
            out.insert(e.peer_asn, v);
        }
        out
    }

    /// Updates per time bin — the update-rate series the paper's log
    /// analysis plots. Returns `(bin_start, count)` for every non-empty bin
    /// within `[from, to)`.
    pub fn rate_series(
        &self,
        from: SimTime,
        to: SimTime,
        bin: SimDuration,
    ) -> Vec<(SimTime, usize)> {
        assert!(!bin.is_zero(), "bin must be positive");
        let mut out: Vec<(SimTime, usize)> = Vec::new();
        for e in self.between(from, to) {
            let offset = e.time.saturating_since(from).as_nanos() / bin.as_nanos();
            let start = from + bin.saturating_mul(offset);
            match out.last_mut() {
                Some((s, c)) if *s == start => *c += 1,
                _ => out.push((start, 1)),
            }
        }
        out
    }

    /// Instability metric per prefix: total prefix events (announce or
    /// withdraw) within the window, sorted by descending event count —
    /// which prefixes churned most.
    pub fn instability(&self, from: SimTime, to: SimTime) -> Vec<(Prefix, usize)> {
        let mut counts: BTreeMap<Prefix, usize> = BTreeMap::new();
        for e in self.between(from, to) {
            *counts.entry(e.prefix).or_default() += 1;
        }
        let mut out: Vec<(Prefix, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Render a human-readable timeline for one prefix (the route-change
    /// view of the paper's visualization tooling).
    pub fn render_timeline(&self, prefix: Prefix) -> String {
        let mut out = format!("timeline for {prefix}\n");
        for e in self.for_prefix(prefix) {
            match &e.action {
                LogAction::Announce(p) => out.push_str(&format!(
                    "{:>12}  {}  + [{}]\n",
                    e.time.to_string(),
                    e.peer_asn,
                    p
                )),
                LogAction::Withdraw => out.push_str(&format!(
                    "{:>12}  {}  - withdrawn\n",
                    e.time.to_string(),
                    e.peer_asn
                )),
            }
        }
        out
    }

    /// Forget everything (between experiment phases).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsdn_bgp::pfx;

    fn entry(ms: u64, asn: u32, prefix: &str, path: Option<&[u32]>) -> LogEntry {
        LogEntry {
            time: SimTime::from_millis(ms),
            peer: NodeId(asn),
            peer_asn: Asn(asn),
            prefix: pfx(prefix),
            action: match path {
                Some(p) => LogAction::Announce(AsPath::from_seq(p.iter().copied())),
                None => LogAction::Withdraw,
            },
        }
    }

    fn sample() -> UpdateLog {
        let mut log = UpdateLog::default();
        log.push(entry(10, 1, "10.0.0.0/16", Some(&[9])));
        log.push(entry(20, 2, "10.0.0.0/16", Some(&[1, 9])));
        log.push(entry(500, 1, "10.0.0.0/16", Some(&[2, 9])));
        log.push(entry(900, 1, "10.0.0.0/16", None));
        log.push(entry(950, 2, "10.0.0.0/16", None));
        log.push(entry(960, 2, "10.1.0.0/16", Some(&[7])));
        log
    }

    #[test]
    fn counts_and_windows() {
        let log = sample();
        assert_eq!(log.len(), 6);
        assert_eq!(
            log.between(SimTime::from_millis(20), SimTime::from_millis(900))
                .count(),
            2
        );
        let counts = log.update_counts(SimTime::ZERO, SimTime::MAX);
        assert_eq!(counts[&Asn(1)], 3);
        assert_eq!(counts[&Asn(2)], 3);
    }

    #[test]
    fn convergence_duration_from_event() {
        let log = sample();
        // Event at 400ms; last observed activity at 960ms.
        assert_eq!(
            log.convergence_duration(SimTime::from_millis(400)),
            SimDuration::from_millis(560)
        );
        // Event after the last entry: zero.
        assert_eq!(
            log.convergence_duration(SimTime::from_secs(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn paths_explored_counts_distinct() {
        let log = sample();
        let explored = log.paths_explored(pfx("10.0.0.0/16"), SimTime::ZERO, SimTime::MAX);
        assert_eq!(explored[&Asn(1)], 2, "AS1 tried [9] then [2 9]");
        assert_eq!(explored[&Asn(2)], 1);
    }

    #[test]
    fn final_state_reflects_withdrawals() {
        let log = sample();
        let state = log.final_state(pfx("10.0.0.0/16"));
        assert_eq!(state[&Asn(1)], None);
        assert_eq!(state[&Asn(2)], None);
        let state2 = log.final_state(pfx("10.1.0.0/16"));
        assert!(state2[&Asn(2)].is_some());
    }

    #[test]
    fn timeline_renders() {
        let log = sample();
        let t = log.render_timeline(pfx("10.0.0.0/16"));
        assert!(t.contains("+ [9]"));
        assert!(t.contains("- withdrawn"));
        assert!(!t.contains("10.1.0.0/16 entry"), "other prefixes excluded");
    }

    #[test]
    fn rate_series_bins_counts() {
        let log = sample();
        let series = log.rate_series(SimTime::ZERO, SimTime::MAX, SimDuration::from_millis(500));
        // Entries at 10,20 / 500,900 (bins 0 and 1) and 950,960 (bin 1).
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], (SimTime::ZERO, 2));
        assert_eq!(series[1], (SimTime::from_millis(500), 4));
        // Windowed query only sees what's inside.
        let w = log.rate_series(
            SimTime::from_millis(900),
            SimTime::from_millis(960),
            SimDuration::from_millis(1000),
        );
        assert_eq!(w, vec![(SimTime::from_millis(900), 2)]);
    }

    #[test]
    fn instability_ranks_churny_prefixes() {
        let log = sample();
        let inst = log.instability(SimTime::ZERO, SimTime::MAX);
        assert_eq!(inst[0].0, pfx("10.0.0.0/16"));
        assert_eq!(inst[0].1, 5);
        assert_eq!(inst[1], (pfx("10.1.0.0/16"), 1));
    }

    #[test]
    fn clear_resets() {
        let mut log = sample();
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.convergence_duration(SimTime::ZERO), SimDuration::ZERO);
    }
}
