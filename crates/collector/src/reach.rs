//! Offline reachability analysis: the framework's "is there stable
//! connectivity between all hosts" check, computed by walking the installed
//! forwarding state (FIBs and flow tables) rather than by sending packets —
//! exact, instantaneous and loop-aware.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use bgpsdn_netsim::NodeId;

/// One node's forwarding decision for a destination address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// Forward to this adjacent node.
    Forward(NodeId),
    /// The destination is local: delivered.
    Deliver,
    /// No forwarding state for this destination.
    Blackhole,
}

/// Outcome of a forwarding walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathResult {
    /// Delivered; the node sequence walked (source first, destination last).
    Delivered(Vec<NodeId>),
    /// A forwarding loop; the sequence ends at the first repeated node.
    Loop(Vec<NodeId>),
    /// Dropped at the last node in the sequence.
    Blackhole(Vec<NodeId>),
    /// Walk exceeded the hop budget without looping (should not happen with
    /// a sane budget; indicates pathological state).
    HopBudgetExceeded(Vec<NodeId>),
}

impl PathResult {
    /// True when the packet would arrive.
    pub fn delivered(&self) -> bool {
        matches!(self, PathResult::Delivered(_))
    }

    /// The nodes traversed.
    pub fn path(&self) -> &[NodeId] {
        match self {
            PathResult::Delivered(p)
            | PathResult::Loop(p)
            | PathResult::Blackhole(p)
            | PathResult::HopBudgetExceeded(p) => p,
        }
    }
}

/// Walk the forwarding state from `start` toward `dst`.
///
/// `decide` returns the forwarding decision of a given node for `dst`
/// (closing over whatever node types the caller knows about).
pub fn walk(
    start: NodeId,
    dst: Ipv4Addr,
    max_hops: usize,
    mut decide: impl FnMut(NodeId, Ipv4Addr) -> Hop,
) -> PathResult {
    let mut path = vec![start];
    let mut seen: HashSet<NodeId> = HashSet::from([start]);
    let mut cur = start;
    for _ in 0..max_hops {
        match decide(cur, dst) {
            Hop::Deliver => return PathResult::Delivered(path),
            Hop::Blackhole => return PathResult::Blackhole(path),
            Hop::Forward(next) => {
                path.push(next);
                if !seen.insert(next) {
                    return PathResult::Loop(path);
                }
                cur = next;
            }
        }
    }
    PathResult::HopBudgetExceeded(path)
}

/// Result of an all-pairs connectivity audit.
#[derive(Debug, Clone, Default)]
pub struct ConnectivityReport {
    /// Pairs that reached their destination.
    pub delivered: usize,
    /// Pairs that hit a blackhole.
    pub blackholed: usize,
    /// Pairs that looped.
    pub looped: usize,
    /// The failing pairs `(src, dst_addr, result)` for diagnosis.
    pub failures: Vec<(NodeId, Ipv4Addr, PathResult)>,
}

impl ConnectivityReport {
    /// Total pairs checked.
    pub fn total(&self) -> usize {
        self.delivered + self.blackholed + self.looped
    }

    /// True when every pair was delivered.
    pub fn fully_connected(&self) -> bool {
        self.blackholed == 0 && self.looped == 0 && self.delivered > 0
    }

    /// Fraction of pairs delivered (1.0 when nothing was checked).
    pub fn delivery_ratio(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.delivered as f64 / self.total() as f64
        }
    }
}

/// Audit connectivity from every source in `sources` to every `(dst_node,
/// dst_addr)` in `destinations` (skipping source == destination node).
pub fn audit(
    sources: &[NodeId],
    destinations: &[(NodeId, Ipv4Addr)],
    max_hops: usize,
    mut decide: impl FnMut(NodeId, Ipv4Addr) -> Hop,
) -> ConnectivityReport {
    let mut report = ConnectivityReport::default();
    for &src in sources {
        for &(dst_node, dst_addr) in destinations {
            if src == dst_node {
                continue;
            }
            let result = walk(src, dst_addr, max_hops, &mut decide);
            match &result {
                PathResult::Delivered(_) => report.delivered += 1,
                PathResult::Blackhole(_) => {
                    report.blackholed += 1;
                    report.failures.push((src, dst_addr, result));
                }
                PathResult::Loop(_) | PathResult::HopBudgetExceeded(_) => {
                    report.looped += 1;
                    report.failures.push((src, dst_addr, result));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

    #[test]
    fn walk_delivers_on_a_chain() {
        // 0 -> 1 -> 2 (deliver)
        let r = walk(NodeId(0), DST, 16, |n, _| match n.0 {
            0 => Hop::Forward(NodeId(1)),
            1 => Hop::Forward(NodeId(2)),
            _ => Hop::Deliver,
        });
        assert_eq!(
            r,
            PathResult::Delivered(vec![NodeId(0), NodeId(1), NodeId(2)])
        );
        assert!(r.delivered());
    }

    #[test]
    fn walk_detects_loop() {
        let r = walk(NodeId(0), DST, 16, |n, _| match n.0 {
            0 => Hop::Forward(NodeId(1)),
            1 => Hop::Forward(NodeId(2)),
            _ => Hop::Forward(NodeId(0)),
        });
        assert!(matches!(r, PathResult::Loop(_)));
        assert_eq!(r.path().last(), Some(&NodeId(0)));
    }

    #[test]
    fn walk_detects_blackhole_and_budget() {
        let r = walk(NodeId(0), DST, 16, |_, _| Hop::Blackhole);
        assert!(matches!(r, PathResult::Blackhole(_)));

        // Infinite non-repeating forward is impossible with NodeId reuse, so
        // force budget exhaustion with a tiny budget.
        let r = walk(NodeId(0), DST, 1, |n, _| Hop::Forward(NodeId(n.0 + 1)));
        assert!(matches!(r, PathResult::HopBudgetExceeded(_)));
    }

    #[test]
    fn audit_summarizes() {
        // Nodes 0,1,2: everything forwards to 2 which delivers; node 1
        // blackholes one specific destination.
        let bad_dst = Ipv4Addr::new(10, 9, 0, 1);
        let sources = [NodeId(0), NodeId(1)];
        let dests = [(NodeId(2), DST), (NodeId(2), bad_dst)];
        let report = audit(&sources, &dests, 16, |n, d| match n.0 {
            2 => Hop::Deliver,
            1 if d == bad_dst => Hop::Blackhole,
            _ => Hop::Forward(NodeId(2)),
        });
        assert_eq!(report.delivered, 3);
        assert_eq!(report.blackholed, 1);
        assert!(!report.fully_connected());
        assert!((report.delivery_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(report.failures.len(), 1);
    }

    #[test]
    fn audit_empty_is_vacuously_ok() {
        let report = audit(&[], &[], 16, |_, _| Hop::Deliver);
        assert_eq!(report.total(), 0);
        assert!(!report.fully_connected(), "no pairs means no evidence");
        assert_eq!(report.delivery_ratio(), 1.0);
    }
}
