//! # bgpsdn-core — the paper's contribution
//!
//! This crate implements the two things the paper builds:
//!
//! 1. **The hybrid BGP-SDN emulation framework** ([`framework`]): assemble a
//!    multi-AS network from a topology plan — legacy Quagga-style BGP
//!    routers, an SDN cluster (switches + cluster BGP speaker), a route
//!    collector — and drive experiments through a high-level lifecycle API
//!    (announce, withdraw, fail links, wait until converged, audit RIBs and
//!    connectivity).
//! 2. **The proof-of-concept IDR SDN controller** ([`controller`]): switch
//!    graph + per-prefix AS topology graph with legacy-crossing loop
//!    avoidance, Dijkstra best paths compiled to flow rules, delayed
//!    recomputation for flap rate-limiting, AS-identity-preserving
//!    announcements, and sub-cluster operation under partitions.
//!
//! See DESIGN.md for the system inventory and EXPERIMENTS.md for the
//! reproduction of the paper's evaluation.

#![warn(missing_docs)]

pub mod controller;
pub mod framework;

pub use controller::as_graph::{
    accept_route, announced_path, compute, compute_into, ComputeScratch, ExternalRoute,
    MemberDecision, PrefixComputation,
};
pub use controller::switch_graph::{IntraLink, SwitchGraph};
pub use controller::{
    ControllerConfig, ControllerStats, IdrController, MemberConfig, SessionConfig,
};
pub use framework::campaign::fold_deployment_seed;
pub use framework::{
    capture_snapshot, check_plan, check_plan_clusters, clique_sweep_point, event_phase_name,
    job_seed, loss_ppm, render_job_artifact, render_job_artifact_into, run_campaign,
    run_campaign_scratch, run_campaign_with, run_clique, run_clique_full, run_clique_instrumented,
    run_clique_traced, run_clique_with, run_job, run_job_scratch, run_scale,
    run_scale_instrumented, validate_clusters, AsHandle, AsKind, CampaignGrid, CampaignJob,
    CampaignRunReport, CliqueRunOptions, CliqueScenario, ClusterHandle, Collector, Controller,
    DeploymentStrategy, EventKind, Experiment, FaultAction, FaultClasses, FaultPlan, FaultSpec,
    HybridNetwork, JobOutcome, JobResult, JobScratch, NetworkBuilder, PreflightContext,
    ProbeReport, Router, ScaleOutcome, ScaleScenario, ScenarioOutcome, Script, ScriptAction,
    ScriptReport, Sim, Speaker, Switch, COLLECTOR_ASN, SCALE_UPDATE_PHASE,
};
