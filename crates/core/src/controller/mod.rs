//! The IDR SDN controller — the paper's proof-of-concept controller that
//! "exploits centralization to improve IDR convergence time".
//!
//! Responsibilities (paper §3):
//! * maintain the **switch graph** ([`switch_graph`]) from PortStatus input;
//! * maintain external routes learned through the cluster BGP speaker and
//!   transform them, per destination prefix, into the **AS topology graph**
//!   ([`as_graph`]) with legacy-crossing **loop avoidance**;
//! * run **Dijkstra** per prefix and compile the results into **flow rules**
//!   on the member switches;
//! * **delay recomputation** to rate-limit route flaps under bursty
//!   external input;
//! * announce the cluster's routes to external peers through the speaker,
//!   preserving each member's **AS identity**;
//! * keep working across **sub-clusters** when intra-cluster links fail.

pub mod as_graph;
pub mod switch_graph;

use std::collections::{BTreeMap, BTreeSet};

use bgpsdn_bgp::{Asn, BgpApp, Prefix, RouterCommand, SharedPath, UpdateMsg};
use bgpsdn_netsim::{
    Activity, CausalPhase, Cause, Ctx, LinkId, Node, NodeId, ObsPrefix, RecomputeTrigger,
    SimDuration, TimerClass, TimerToken, TraceCategory, TraceEvent,
};
use bgpsdn_sdn::{
    Accept, CtrlMsg, FlowAction, FlowModOp, FlowRule, OfEnvelope, OfMessage, ReliableReceiver,
    ReliableSender, SdnApp, SpeakerCmd, SpeakerEvent, SpeakerSyncState, HEARTBEAT_EVERY, HOLD_TIME,
};

use as_graph::{
    accept_route, announced_path, compute, compute_into, egress_session_of, ComputeScratch,
    ExternalRoute, MemberDecision, PrefixComputation,
};
use switch_graph::SwitchGraph;

const RECOMPUTE: TimerToken = TimerToken(1);
const RETX: TimerToken = TimerToken(2);
const HEARTBEAT: TimerToken = TimerToken(3);
const HOLD: TimerToken = TimerToken(4);

/// One cluster member as the controller sees it.
#[derive(Debug, Clone)]
pub struct MemberConfig {
    /// The member's switch node.
    pub switch: NodeId,
    /// The member's ASN (kept toward the legacy world).
    pub asn: Asn,
    /// The prefix this member AS originates.
    pub prefix: Prefix,
    /// The controller↔switch control link.
    pub ctl_link: LinkId,
}

/// One external peering as the controller sees it.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Which member's border the session sits at.
    pub member: usize,
    /// The external router.
    pub ext_peer: NodeId,
    /// Its ASN.
    pub ext_asn: Asn,
    /// The physical member↔external link (egress port; PortStatus source).
    pub ext_link: LinkId,
}

/// Full controller configuration. Speaker session indices must equal the
/// positions in `sessions` (the framework builder guarantees this).
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Cluster members.
    pub members: Vec<MemberConfig>,
    /// Intra-cluster links as member-index pairs.
    pub intra_links: Vec<(usize, usize, LinkId)>,
    /// External sessions, aligned with the speaker's session indices.
    pub sessions: Vec<SessionConfig>,
    /// The controller↔speaker channel.
    pub speaker_link: LinkId,
    /// The paper's delayed recomputation: external updates are buffered for
    /// this long before one batched recomputation runs. Zero recomputes on
    /// the next event tick.
    pub recompute_delay: SimDuration,
    /// Priority used for all compiled flow rules.
    pub flow_priority: u16,
    /// Incremental recomputation: track dirty prefixes and re-run the
    /// per-prefix Dijkstra only for those, diffing against the cached
    /// compiled state. `false` re-derives every prefix on every trigger
    /// (the pre-optimization behavior; kept as a correctness oracle and
    /// scaling baseline). Both modes compile identical state.
    pub incremental: bool,
}

impl ControllerConfig {
    /// Config with the default 100 ms recompute delay and priority 100.
    pub fn new(
        members: Vec<MemberConfig>,
        intra_links: Vec<(usize, usize, LinkId)>,
        sessions: Vec<SessionConfig>,
        speaker_link: LinkId,
    ) -> Self {
        ControllerConfig {
            members,
            intra_links,
            sessions,
            speaker_link,
            recompute_delay: SimDuration::from_millis(100),
            flow_priority: 100,
            incremental: true,
        }
    }
}

/// Controller counters.
#[derive(Debug, Clone, Default)]
pub struct ControllerStats {
    /// Batched recomputations executed.
    pub recomputes: u64,
    /// External updates buffered (pre-batch).
    pub updates_buffered: u64,
    /// FlowMods emitted.
    pub flow_mods: u64,
    /// Announcements instructed to the speaker.
    pub announcements: u64,
    /// Withdrawals instructed to the speaker.
    pub withdrawals: u64,
    /// External routes accepted into the RIB.
    pub routes_learned: u64,
    /// External routes rejected by cluster loop avoidance.
    pub routes_rejected_loop: u64,
    /// PacketIn messages received (reactive path; unused by IDR policy).
    pub packet_ins: u64,
    /// Prefixes in the dirty set across all recomputes.
    pub prefixes_dirty: u64,
    /// Per-prefix Dijkstra runs actually executed.
    pub prefixes_recomputed: u64,
    /// Tracked prefixes whose cached compiled state was reused untouched.
    pub prefixes_cached: u64,
    /// Full-state resyncs adopted from the speaker.
    pub resyncs: u64,
    /// Control-channel retransmission rounds toward the speaker.
    pub retransmits: u64,
}

/// The IDR controller node.
pub struct IdrController<M> {
    id: NodeId,
    cfg: ControllerConfig,
    sg: SwitchGraph,
    member_asns: Vec<Asn>,
    member_asn_set: BTreeSet<Asn>,
    /// Active cluster-originated prefixes → owning member.
    owned: BTreeMap<Prefix, usize>,
    /// prefix → session → accepted external route.
    ext_routes: BTreeMap<Prefix, BTreeMap<usize, ExternalRoute>>,
    session_up: Vec<bool>,
    /// Model of what is installed on each switch: prefix → action. This is
    /// the compiled per-prefix flow cache the incremental recompute diffs
    /// against.
    installed: Vec<BTreeMap<Prefix, FlowAction>>,
    /// What was announced per session: prefix → AS path (the compiled
    /// announcement cache).
    adj_out: Vec<BTreeMap<Prefix, SharedPath>>,
    pending: Vec<(usize, UpdateMsg, Cause)>,
    /// Cause lineage of everything feeding the next recompute batch: one
    /// entry per buffered update or local trigger, deduplicated by parent
    /// event id at merge time. Dirty-prefix batching merges *sets* of
    /// causes — the ctrl_queue node records every parent so forensics can
    /// attribute the batch wait honestly.
    batch_causes: Vec<Cause>,
    /// Prefixes whose inputs changed since the last recompute.
    dirty: BTreeSet<Prefix>,
    /// Events that invalidate every prefix (switch-graph or session-set
    /// changes alter the shared inputs of all per-prefix computations).
    all_dirty: bool,
    recompute_armed: bool,
    stats: ControllerStats,
    /// Reusable Dijkstra/BFS scratch across prefixes and recomputes.
    scratch: ComputeScratch,
    /// Reusable per-prefix computation output buffer.
    comp_buf: PrefixComputation,
    /// Reusable live-external-route buffer.
    ext_buf: Vec<ExternalRoute>,
    /// Reliable sender toward the speaker (commands). Its epoch doubles as
    /// the controller's channel epoch; 0 means unsynced (speaker lost), in
    /// which state no commands are issued until a Sync is adopted.
    tx: ReliableSender,
    /// Reliable receiver for speaker events.
    rx: ReliableReceiver,
    /// Scratch for retransmission bursts, reused across RTO firings.
    retx_scratch: Vec<CtrlMsg>,
    /// Switches whose [`OfMessage::TableReply`] is still outstanding during
    /// a resync. Recomputation is deferred until this reaches zero.
    table_syncs_pending: usize,
    /// Every prefix the controller has ever been told about, for the
    /// debug-build invariant that the dirty set never invents prefixes.
    #[cfg(debug_assertions)]
    ever_known: BTreeSet<Prefix>,
    _m: std::marker::PhantomData<fn() -> M>,
}

impl<M: SdnApp + BgpApp> IdrController<M> {
    /// Build the controller. Member prefixes start out announced.
    pub fn new(id: NodeId, cfg: ControllerConfig) -> Self {
        let n = cfg.members.len();
        let member_asns: Vec<Asn> = cfg.members.iter().map(|m| m.asn).collect();
        let owned = cfg
            .members
            .iter()
            .enumerate()
            .map(|(i, m)| (m.prefix, i))
            .collect();
        IdrController {
            sg: SwitchGraph::new(n, cfg.intra_links.clone()),
            member_asn_set: member_asns.iter().copied().collect(),
            member_asns,
            owned,
            ext_routes: BTreeMap::new(),
            session_up: vec![false; cfg.sessions.len()],
            installed: vec![BTreeMap::new(); n],
            adj_out: vec![BTreeMap::new(); cfg.sessions.len()],
            pending: Vec::new(),
            batch_causes: Vec::new(),
            dirty: BTreeSet::new(),
            all_dirty: true, // nothing is compiled yet
            recompute_armed: false,
            stats: ControllerStats::default(),
            scratch: ComputeScratch::default(),
            comp_buf: PrefixComputation::default(),
            ext_buf: Vec::new(),
            // Both channel ends start in epoch 1 with empty state, matching
            // the speaker's bring-up assumption (no resync needed).
            tx: ReliableSender::new(1),
            rx: ReliableReceiver::new(1),
            retx_scratch: Vec::new(),
            table_syncs_pending: 0,
            #[cfg(debug_assertions)]
            ever_known: cfg.members.iter().map(|m| m.prefix).collect(),
            id,
            cfg,
            _m: std::marker::PhantomData,
        }
    }

    /// Replace the configuration before the simulation starts. The network
    /// builder constructs the controller node first (its node id is needed
    /// for control links) and injects the final wiring afterwards.
    pub fn set_config(&mut self, cfg: ControllerConfig) {
        assert_eq!(self.stats.recomputes, 0, "reconfigure only before start");
        *self = IdrController::new(self.id, cfg);
    }

    // ------------------------------------------------------------------
    // Inspection API
    // ------------------------------------------------------------------

    /// Counters.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// The live switch graph.
    pub fn switch_graph(&self) -> &SwitchGraph {
        &self.sg
    }

    /// Active cluster-originated prefixes.
    pub fn owned_prefixes(&self) -> impl Iterator<Item = (Prefix, usize)> + '_ {
        self.owned.iter().map(|(p, m)| (*p, *m))
    }

    /// Number of accepted external routes for a prefix.
    pub fn ext_route_count(&self, prefix: Prefix) -> usize {
        self.ext_routes.get(&prefix).map(|m| m.len()).unwrap_or(0)
    }

    /// The controller's current decision for a prefix (computed on demand
    /// from live state; what the last recompute compiled).
    pub fn computation_for(&self, prefix: Prefix) -> PrefixComputation {
        let owner = self.owned.get(&prefix).copied();
        let ext = self.live_ext_routes(prefix);
        compute(&self.sg, owner, &ext)
    }

    /// The flow action the controller believes is installed at a member.
    pub fn installed_action(&self, member: usize, prefix: Prefix) -> Option<FlowAction> {
        self.installed[member].get(&prefix).copied()
    }

    /// The full compiled flow table the controller believes is installed at
    /// a member (the incremental recompute's per-prefix cache).
    pub fn installed_table(&self, member: usize) -> &BTreeMap<Prefix, FlowAction> {
        &self.installed[member]
    }

    /// The full announcement state for a speaker session (prefix → AS path
    /// last instructed to the speaker).
    pub fn adj_out_table(&self, session: usize) -> &BTreeMap<Prefix, SharedPath> {
        &self.adj_out[session]
    }

    /// Whether a speaker session is currently up from the controller's view.
    pub fn session_is_up(&self, session: usize) -> bool {
        self.session_up[session]
    }

    /// Number of cluster members (bound for [`Self::installed_table`]).
    pub fn member_count(&self) -> usize {
        self.cfg.members.len()
    }

    /// Number of speaker sessions (bound for [`Self::adj_out_table`]).
    pub fn session_count(&self) -> usize {
        self.cfg.sessions.len()
    }

    /// Current control-channel epoch. 0 means unsynced: the speaker is
    /// considered lost and no commands are issued until it resyncs.
    pub fn epoch(&self) -> u64 {
        self.tx.epoch()
    }

    /// Whether a resync is still waiting on switch table replies.
    pub fn resync_pending(&self) -> bool {
        self.table_syncs_pending > 0
    }

    /// The priority all controller-compiled flow rules are installed at.
    pub fn flow_priority(&self) -> u16 {
        self.cfg.flow_priority
    }

    /// Record that a prefix is now known (debug-build bookkeeping for the
    /// dirty-set invariant checked at recompute time).
    #[inline]
    fn note_known(&mut self, _p: Prefix) {
        #[cfg(debug_assertions)]
        self.ever_known.insert(_p);
    }

    /// Usable external routes for a prefix under the current sub-cluster
    /// structure. Every stored route is kept; usability is decided here,
    /// at computation time, because it depends on the *live* components:
    /// a route whose AS_PATH contains a member of the session's own
    /// sub-cluster would loop and is filtered (the paper's transformation
    /// "taking carefully into account paths that cross the legacy world and
    /// the SDN cluster so as to avoid loops"), while a path through a member
    /// of a *different* sub-cluster is exactly how partitioned sub-clusters
    /// reconnect over the legacy Internet (§2).
    fn live_ext_routes(&self, prefix: Prefix) -> Vec<ExternalRoute> {
        let (comp, comp_asns) = self.component_asns();
        let mut out = Vec::new();
        self.live_ext_routes_into(prefix, &comp, &comp_asns, &mut out);
        out
    }

    /// The current sub-cluster structure: component id per member plus the
    /// member-ASN set of each component. Shared by every per-prefix
    /// computation in a batch, so it is derived once per recompute.
    fn component_asns(&self) -> (Vec<usize>, Vec<BTreeSet<Asn>>) {
        let (comp, _) = self.sg.components();
        let mut comp_asns: Vec<BTreeSet<Asn>> = Vec::new();
        for (m, &c) in comp.iter().enumerate() {
            if comp_asns.len() <= c {
                comp_asns.resize_with(c + 1, BTreeSet::new);
            }
            comp_asns[c].insert(self.member_asns[m]);
        }
        (comp, comp_asns)
    }

    fn live_ext_routes_into(
        &self,
        prefix: Prefix,
        comp: &[usize],
        comp_asns: &[BTreeSet<Asn>],
        out: &mut Vec<ExternalRoute>,
    ) {
        out.clear();
        if let Some(m) = self.ext_routes.get(&prefix) {
            out.extend(
                m.values()
                    .filter(|r| self.session_up[r.session])
                    .filter(|r| accept_route(&r.as_path, &comp_asns[comp[r.member]]))
                    .cloned(),
            );
        }
    }

    // ------------------------------------------------------------------
    // Event intake
    // ------------------------------------------------------------------

    fn buffer_update(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        session: usize,
        update: UpdateMsg,
        cause: Cause,
    ) {
        self.stats.updates_buffered += 1;
        self.pending.push((session, update, cause));
        if !self.recompute_armed {
            self.recompute_armed = true;
            ctx.set_timer(self.cfg.recompute_delay, RECOMPUTE, TimerClass::Progress);
        }
    }

    fn apply_pending(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        for (session, upd, cause) in pending {
            if !self.session_up[session] {
                continue; // session died while the update was buffered
            }
            if !cause.is_none() {
                self.batch_causes.push(cause);
            }
            for p in &upd.withdrawn {
                if let Some(slot) = self.ext_routes.get_mut(p) {
                    slot.remove(&session);
                    if slot.is_empty() {
                        self.ext_routes.remove(p);
                    }
                }
                self.note_known(*p);
                self.dirty.insert(*p);
            }
            if let Some(attrs) = &upd.attrs {
                // Intern the path once per UPDATE: every NLRI prefix (and
                // the downstream speaker command) shares the allocation.
                let path: SharedPath = attrs.as_path.flatten().into();
                // Count cluster-crossing paths for observability, but store
                // them regardless: whether such a path is usable depends on
                // the sub-cluster structure at computation time.
                if !accept_route(&path, &self.member_asn_set) {
                    self.stats.routes_rejected_loop += upd.nlri.len() as u64;
                }
                for p in &upd.nlri {
                    self.stats.routes_learned += 1;
                    self.note_known(*p);
                    self.ext_routes.entry(*p).or_default().insert(
                        session,
                        ExternalRoute {
                            session,
                            member: self.cfg.sessions[session].member,
                            as_path: path.clone(),
                            med: attrs.med,
                        },
                    );
                    self.dirty.insert(*p);
                }
            }
        }
    }

    fn session_down(&mut self, ctx: &mut Ctx<'_, M>, session: usize) {
        if !self.session_up[session] {
            return;
        }
        self.session_up[session] = false;
        // No withdrawals toward a dead peer: just forget what it was told.
        self.adj_out[session].clear();
        // Only the prefixes that actually lost a route need recomputing —
        // the sub-cluster structure is untouched by a session loss.
        let dirty = &mut self.dirty;
        self.ext_routes.retain(|p, slot| {
            if slot.remove(&session).is_some() {
                dirty.insert(*p);
            }
            !slot.is_empty()
        });
        self.recompute_now(ctx, RecomputeTrigger::SessionDown);
    }

    fn recompute_now(&mut self, ctx: &mut Ctx<'_, M>, trigger: RecomputeTrigger) {
        self.apply_pending();
        self.recompute_all(ctx, trigger);
    }

    /// Mint a causal root for a convergence trigger that originates *at*
    /// the controller (operator command, link-status change) and enroll it
    /// in the next batch's cause set. No-op when causal tracing is off.
    fn mint_trigger(&mut self, ctx: &mut Ctx<'_, M>, prefix: Option<Prefix>) {
        let id = ctx.causal_id();
        if id == 0 {
            return;
        }
        let obs = prefix.map(|p| ObsPrefix::new(p.network_u32(), p.len()));
        ctx.trace(TraceCategory::Causal, || TraceEvent::Causal {
            id,
            parents: vec![],
            trigger: id,
            hop: 0,
            phase: CausalPhase::Trigger,
            prefix: obs,
        });
        self.batch_causes.push(Cause {
            trigger: id,
            parent: id,
            hop: 0,
        });
    }

    // ------------------------------------------------------------------
    // The reliable speaker channel
    // ------------------------------------------------------------------

    fn send_ctrl(&mut self, ctx: &mut Ctx<'_, M>, msg: CtrlMsg) {
        ctx.send(self.cfg.speaker_link, M::from_ctrl(msg));
    }

    fn arm_retx(&mut self, ctx: &mut Ctx<'_, M>) {
        ctx.set_timer(self.tx.rto(), RETX, TimerClass::Progress);
    }

    fn arm_hold(&mut self, ctx: &mut Ctx<'_, M>) {
        ctx.set_timer(HOLD_TIME, HOLD, TimerClass::Maintenance);
    }

    /// Sequence and transmit a batch of speaker commands, arming the
    /// retransmit timer when the channel transitions to having payloads in
    /// flight.
    fn send_speaker_cmds(&mut self, ctx: &mut Ctx<'_, M>, cmds: Vec<SpeakerCmd>) {
        if cmds.is_empty() {
            return;
        }
        debug_assert_ne!(self.tx.epoch(), 0, "no commands while unsynced");
        let was_pending = self.tx.pending();
        for cmd in cmds {
            let msg = self.tx.push(|epoch, seq| CtrlMsg::Cmd { epoch, seq, cmd });
            self.send_ctrl(ctx, msg);
        }
        if !was_pending {
            self.arm_retx(ctx);
        }
    }

    fn handle_speaker_event(&mut self, ctx: &mut Ctx<'_, M>, ev: SpeakerEvent) {
        match ev {
            SpeakerEvent::Update {
                session,
                update,
                cause,
            } => {
                ctx.report(Activity::UpdateReceived);
                self.buffer_update(ctx, session, update, cause);
            }
            SpeakerEvent::SessionUp { session, .. } => {
                ctx.report(Activity::SessionUp);
                self.session_up[session] = true;
                // A new egress changes the announcement surface of every
                // prefix (it must receive the full table).
                self.all_dirty = true;
                self.recompute_now(ctx, RecomputeTrigger::SessionUp);
            }
            SpeakerEvent::SessionDown { session } => {
                ctx.report(Activity::SessionDown);
                self.session_down(ctx, session);
            }
        }
    }

    fn handle_ctrl(&mut self, ctx: &mut Ctx<'_, M>, msg: CtrlMsg) {
        // Anything from the speaker proves liveness.
        self.arm_hold(ctx);
        match msg {
            CtrlMsg::Event { epoch, seq, event } => match self.rx.accept(epoch, seq) {
                Accept::Deliver => {
                    let ack = self.rx.ack_seq();
                    self.send_ctrl(ctx, CtrlMsg::EventAck { epoch, seq: ack });
                    self.handle_speaker_event(ctx, event);
                }
                Accept::Duplicate | Accept::Gap => {
                    let (epoch, seq) = (self.rx.epoch(), self.rx.ack_seq());
                    self.send_ctrl(ctx, CtrlMsg::EventAck { epoch, seq });
                }
                Accept::WrongEpoch => {}
            },
            CtrlMsg::Sync { epoch, state, .. } => {
                if epoch == self.rx.epoch() {
                    // Retransmit of a snapshot already adopted: re-ack only.
                    let (epoch, seq) = (self.rx.epoch(), self.rx.ack_seq());
                    self.send_ctrl(ctx, CtrlMsg::EventAck { epoch, seq });
                } else {
                    self.apply_sync(ctx, epoch, &state);
                }
            }
            CtrlMsg::CmdAck { epoch, seq } => {
                // Invariant: epochs originate at the speaker and only move
                // forward; an ack can lag the current epoch (stale channel
                // incarnation) but never lead it.
                debug_assert!(
                    epoch <= self.tx.epoch(),
                    "CmdAck from future epoch {epoch} (current {})",
                    self.tx.epoch()
                );
                if self.tx.on_ack(epoch, seq) {
                    if self.tx.pending() {
                        self.arm_retx(ctx);
                    } else {
                        ctx.cancel_timer(RETX);
                    }
                }
            }
            // Liveness only (handled by the arm_hold above). The speaker
            // resyncs on epoch mismatch from *our* heartbeats; the reverse
            // direction needs no action here.
            CtrlMsg::Heartbeat { .. } => {}
            // Controller-bound messages echoed back are ignored.
            CtrlMsg::Cmd { .. } | CtrlMsg::EventAck { .. } => {}
        }
    }

    /// Adopt a full-state snapshot from the speaker: wipe everything learned
    /// through the old channel incarnation, rebuild sessions and external
    /// routes from the snapshot, and re-learn the switches' installed tables
    /// before recompiling (so the post-outage recompute diffs against what
    /// is *actually* installed, not against a stale model).
    fn apply_sync(&mut self, ctx: &mut Ctx<'_, M>, epoch: u64, state: &SpeakerSyncState) {
        self.rx.reset(epoch);
        let accepted = self.rx.accept(epoch, 1); // the Sync itself is seq 1
        debug_assert_eq!(accepted, Accept::Deliver);
        self.tx.reset(epoch);
        ctx.cancel_timer(RETX);
        self.pending.clear();
        self.batch_causes.clear();
        self.dirty.clear();
        self.ext_routes.clear();
        self.session_up = vec![false; self.cfg.sessions.len()];
        self.adj_out = vec![BTreeMap::new(); self.cfg.sessions.len()];
        let mut sessions = 0u32;
        let mut routes = 0u32;
        for (s, ss) in state.sessions.iter().enumerate() {
            if s >= self.cfg.sessions.len() {
                break;
            }
            self.session_up[s] = ss.established;
            if ss.established {
                sessions += 1;
            }
            let member = self.cfg.sessions[s].member;
            for (prefix, path, med) in &ss.adj_in {
                routes += 1;
                self.note_known(*prefix);
                self.ext_routes.entry(*prefix).or_default().insert(
                    s,
                    ExternalRoute {
                        session: s,
                        member,
                        as_path: path.clone(),
                        med: *med,
                    },
                );
            }
            // The speaker's adj-out is what external peers actually heard:
            // seed the announcement cache from it so the recompute only
            // sends real differences.
            for (prefix, path, _med) in &ss.adj_out {
                self.adj_out[s].insert(*prefix, path.clone());
            }
        }
        self.stats.resyncs += 1;
        ctx.count("core.ctrl.resyncs", 1);
        ctx.trace(TraceCategory::Ctrl, || TraceEvent::ControlResync {
            epoch,
            sessions,
            routes,
        });
        self.send_ctrl(ctx, CtrlMsg::EventAck { epoch, seq: 1 });
        // Ask every switch for its live table; recomputation waits for the
        // replies (see the guard in `recompute_all`).
        self.installed = vec![BTreeMap::new(); self.cfg.members.len()];
        self.table_syncs_pending = self.cfg.members.len();
        for (m, mc) in self.cfg.members.iter().enumerate() {
            let msg = OfMessage::TableRequest { xid: m as u32 };
            ctx.send(mc.ctl_link, M::from_of(OfEnvelope::new(&msg)));
        }
        self.all_dirty = true;
        if self.table_syncs_pending == 0 {
            // Degenerate memberless config: nothing to wait for.
            self.recompute_now(ctx, RecomputeTrigger::Resync);
        }
    }

    // ------------------------------------------------------------------
    // The centralized route computation
    // ------------------------------------------------------------------

    /// One batched recomputation. In incremental mode only the prefixes in
    /// the dirty set are re-derived; everything else keeps its cached
    /// compiled state (`installed` / `adj_out`). This is sound because one
    /// prefix's computation depends only on the switch graph, the session-up
    /// vector, its owner, and its own external routes — any event touching
    /// the shared inputs sets `all_dirty`, and per-prefix input changes mark
    /// that prefix. A clean prefix would therefore diff to zero messages;
    /// skipping it is observationally identical to the full sweep.
    fn recompute_all(&mut self, ctx: &mut Ctx<'_, M>, trigger: RecomputeTrigger) {
        if self.table_syncs_pending > 0 {
            // Mid-resync: the installed-state model is being re-learned from
            // the switches; recompiling against it now would emit bogus
            // diffs. Everything recompiles once the last TableReply lands.
            self.all_dirty = true;
            return;
        }
        self.stats.recomputes += 1;
        ctx.report(Activity::ControllerRecompute);
        ctx.count("core.controller.recomputes", 1);

        // Causal: merge the batch's cause *set* into one ctrl_queue node —
        // each parent edge spans that input's time parked in the delayed
        // batch — then a same-timestamp recompute node that every compiled
        // output (FlowMod, speaker command) descends from. The earliest
        // minted parent carries the trigger attribution.
        let mut batch = std::mem::take(&mut self.batch_causes);
        let mut out_cause = Cause::NONE;
        if !batch.is_empty() {
            batch.sort_by_key(|c| c.parent);
            batch.dedup_by_key(|c| c.parent);
            let first = batch[0];
            let qid = ctx.causal_id();
            if qid != 0 {
                let parents: Vec<u64> = batch.iter().map(|c| c.parent).collect();
                ctx.trace(TraceCategory::Causal, || TraceEvent::Causal {
                    id: qid,
                    parents,
                    trigger: first.trigger,
                    hop: first.hop + 1,
                    phase: CausalPhase::CtrlQueue,
                    prefix: None,
                });
                let rid = ctx.causal_id();
                let rphase = if matches!(trigger, RecomputeTrigger::Resync) {
                    CausalPhase::Resync
                } else {
                    CausalPhase::CtrlRecompute
                };
                ctx.trace(TraceCategory::Causal, || TraceEvent::Causal {
                    id: rid,
                    parents: vec![qid],
                    trigger: first.trigger,
                    hop: first.hop + 2,
                    phase: rphase,
                    prefix: None,
                });
                out_cause = Cause {
                    trigger: first.trigger,
                    parent: rid,
                    hop: first.hop + 2,
                };
            }
        }
        let span = ctx.span();
        let (flow_mods_before, ann_before, wd_before) = (
            self.stats.flow_mods,
            self.stats.announcements,
            self.stats.withdrawals,
        );

        // Prefixes with live inputs (owned or externally routed).
        let tracked = self.owned.len()
            + self
                .ext_routes
                .keys()
                .filter(|p| !self.owned.contains_key(p))
                .count();

        let full = self.all_dirty || !self.cfg.incremental;
        self.all_dirty = false;
        let mut dirty = std::mem::take(&mut self.dirty);
        // Invariant: the dirty set never invents prefixes — everything in
        // it was learned through an update, a sync, or an origination.
        #[cfg(debug_assertions)]
        debug_assert!(
            dirty.iter().all(|p| self.ever_known.contains(p)),
            "dirty set contains a never-known prefix"
        );
        if full {
            // Everything with live inputs, plus anything still compiled
            // from earlier state (so stale entries get torn down).
            dirty.extend(self.owned.keys().copied());
            dirty.extend(self.ext_routes.keys().copied());
            for table in &self.installed {
                dirty.extend(table.keys().copied());
            }
            for table in &self.adj_out {
                dirty.extend(table.keys().copied());
            }
        }

        let n = self.cfg.members.len();
        // Sub-cluster structure is shared by every prefix: derive it once
        // per batch, not once per prefix.
        let (comp_of, comp_asns) = self.component_asns();
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut comp = std::mem::take(&mut self.comp_buf);
        let mut ext = std::mem::take(&mut self.ext_buf);

        // While unsynced (epoch 0) the speaker is unreachable: keep driving
        // the switches (fail-static repair still works through the OF
        // channel) but leave the announcement cache untouched — the next
        // Sync reseeds it from the speaker's real adj-out and the resync
        // recompute emits the catch-up diffs.
        let speaker_reachable = self.tx.epoch() != 0;
        let mut out_cmds: Vec<SpeakerCmd> = Vec::new();
        let mut changed_any = false;
        for &prefix in &dirty {
            let owner = self.owned.get(&prefix).copied();
            self.live_ext_routes_into(prefix, &comp_of, &comp_asns, &mut ext);
            compute_into(&self.sg, owner, &ext, &mut scratch, &mut comp);

            // Diff desired flow state against the compiled cache, member by
            // member. At most one FlowMod per (member, prefix): control
            // links are FIFO, so per-prefix emission order is immaterial.
            for (m, decision) in comp.decisions.iter().enumerate() {
                let desired = match *decision {
                    MemberDecision::Unreachable => None,
                    MemberDecision::Local => Some(FlowAction::Local),
                    MemberDecision::ViaMember(next) => self
                        .sg
                        .link_between(m, next)
                        .map(|link| FlowAction::Output(link.0)),
                    MemberDecision::Egress(s) => {
                        debug_assert_eq!(self.cfg.sessions[s].member, m);
                        Some(FlowAction::Output(self.cfg.sessions[s].ext_link.0))
                    }
                };
                let (op, rule_action) = match desired {
                    Some(action) => {
                        if self.installed[m].insert(prefix, action) == Some(action) {
                            continue; // cache hit: already compiled
                        }
                        (FlowModOp::Add, action)
                    }
                    None => {
                        if self.installed[m].remove(&prefix).is_none() {
                            continue; // nothing installed to tear down
                        }
                        (FlowModOp::Delete, FlowAction::Drop)
                    }
                };
                self.stats.flow_mods += 1;
                changed_any = true;
                let msg = OfMessage::FlowMod {
                    op,
                    rule: FlowRule {
                        priority: self.cfg.flow_priority,
                        prefix,
                        action: rule_action,
                        cookie: 0,
                    },
                };
                ctx.send(
                    self.cfg.members[m].ctl_link,
                    M::from_of(OfEnvelope::with_cause(&msg, out_cause)),
                );
            }

            // Diff desired announcements against the per-session cache.
            if !speaker_reachable {
                continue;
            }
            for (s, scfg) in self.cfg.sessions.iter().enumerate() {
                let desired: Option<SharedPath> = if !self.session_up[s] {
                    None
                } else {
                    let x = scfg.member;
                    // Split horizon: never announce back onto the session
                    // the best route egresses through.
                    if egress_session_of(x, &comp) == Some(s) {
                        None
                    } else {
                        announced_path(x, &comp, &ext, &self.member_asns)
                            // Don't announce a path the peer itself is on —
                            // it would be loop-rejected anyway; skipping
                            // saves churn.
                            .filter(|path| !path.contains(&scfg.ext_asn))
                            .map(SharedPath::from)
                    }
                };
                match desired {
                    Some(path) => {
                        if self.adj_out[s].get(&prefix) == Some(&path) {
                            continue;
                        }
                        self.adj_out[s].insert(prefix, path.clone());
                        self.stats.announcements += 1;
                        changed_any = true;
                        out_cmds.push(SpeakerCmd::Announce {
                            session: s,
                            prefix,
                            as_path: path,
                            med: None,
                            cause: out_cause,
                        });
                    }
                    None => {
                        if self.adj_out[s].remove(&prefix).is_none() {
                            continue;
                        }
                        self.stats.withdrawals += 1;
                        changed_any = true;
                        out_cmds.push(SpeakerCmd::Withdraw {
                            session: s,
                            prefix,
                            cause: out_cause,
                        });
                    }
                }
            }
        }
        self.send_speaker_cmds(ctx, out_cmds);
        self.scratch = scratch;
        self.comp_buf = comp;
        self.ext_buf = ext;

        let recomputed = dirty.len() as u32;
        let cached = (tracked as u32).saturating_sub(recomputed);
        self.stats.prefixes_dirty += u64::from(recomputed);
        self.stats.prefixes_recomputed += u64::from(recomputed);
        self.stats.prefixes_cached += u64::from(cached);
        ctx.count("core.controller.prefixes_dirty", u64::from(recomputed));
        ctx.count("core.controller.prefixes_recomputed", u64::from(recomputed));
        ctx.count("core.controller.prefixes_cached", u64::from(cached));

        if changed_any {
            ctx.report(Activity::RibChange);
        }
        let wall_ns = ctx
            .end_span("core.controller.recompute_wall_ns", span)
            .unwrap_or(0);
        ctx.gauge("core.controller.ext_routes", self.ext_routes.len() as i64);
        let links_up = self.sg.links().iter().filter(|l| l.up).count() as u32;
        let (flow_mods, announcements, withdrawals) = (
            (self.stats.flow_mods - flow_mods_before) as u32,
            (self.stats.announcements - ann_before) as u32,
            (self.stats.withdrawals - wd_before) as u32,
        );
        ctx.trace(TraceCategory::Route, || TraceEvent::ControllerRecompute {
            trigger,
            prefixes: tracked as u32,
            prefixes_dirty: recomputed,
            prefixes_recomputed: recomputed,
            prefixes_cached: cached,
            members: n as u32,
            links_up,
            flow_mods,
            announcements,
            withdrawals,
            wall_ns,
        });
    }

    fn handle_of(&mut self, ctx: &mut Ctx<'_, M>, env: &OfEnvelope) {
        let msg = match env.decode() {
            Ok(m) => m,
            Err(_) => return,
        };
        match msg {
            OfMessage::PortStatus { port, up } => {
                let link = LinkId(port);
                if self.sg.set_link_state(link, up) {
                    ctx.trace(TraceCategory::Link, || TraceEvent::LinkAdmin {
                        link: link.0,
                        up,
                    });
                    // The switch graph feeds every per-prefix computation:
                    // invalidate the lot.
                    self.all_dirty = true;
                    // An intra-cluster link change is its own convergence
                    // trigger: root a lineage before repairing.
                    self.mint_trigger(ctx, None);
                    // Failures must be repaired immediately; no delay.
                    self.recompute_now(ctx, RecomputeTrigger::LinkChange);
                    return;
                }
                // An external egress link: losing it kills that session's
                // routes right away (the BGP teardown would come much later).
                if !up {
                    let victims: Vec<usize> = self
                        .cfg
                        .sessions
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.ext_link == link)
                        .map(|(i, _)| i)
                        .collect();
                    if !victims.is_empty() {
                        self.mint_trigger(ctx, None);
                    }
                    for s in victims {
                        self.session_down(ctx, s);
                    }
                }
            }
            OfMessage::PacketIn { .. } => {
                self.stats.packet_ins += 1;
            }
            OfMessage::TableReply { xid, rules, ports } => {
                let m = xid as usize;
                if m >= self.cfg.members.len() {
                    return;
                }
                // Adopt the switch's live table as the compiled model for
                // this member (only our own rules; the priority filter
                // guards against foreign state).
                self.installed[m] = rules
                    .iter()
                    .filter(|r| r.priority == self.cfg.flow_priority)
                    .map(|r| (r.prefix, r.action))
                    .collect();
                // Reconcile link state that changed while we were away.
                for (port, up) in ports {
                    let link = LinkId(port);
                    if self.sg.set_link_state(link, up) {
                        self.all_dirty = true;
                    } else if !up {
                        let victims: Vec<usize> = self
                            .cfg
                            .sessions
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.ext_link == link)
                            .map(|(i, _)| i)
                            .collect();
                        for s in victims {
                            self.session_down(ctx, s);
                        }
                    }
                }
                if self.table_syncs_pending > 0 {
                    self.table_syncs_pending -= 1;
                    if self.table_syncs_pending == 0 {
                        self.all_dirty = true;
                        self.recompute_now(ctx, RecomputeTrigger::Resync);
                    }
                }
            }
            // Hello / FeaturesReply / EchoReply / BarrierReply are accepted
            // silently: the IDR controller programs proactively.
            _ => {}
        }
    }

    fn handle_command(&mut self, ctx: &mut Ctx<'_, M>, cmd: &RouterCommand) {
        match cmd {
            RouterCommand::Announce(p) => {
                // The owner is the member whose configured prefix covers it.
                let owner = self
                    .cfg
                    .members
                    .iter()
                    .position(|m| m.prefix.covers(*p) || m.prefix == *p);
                if let Some(m) = owner {
                    self.note_known(*p);
                    self.owned.insert(*p, m);
                    self.dirty.insert(*p);
                    ctx.report(Activity::PrefixOriginated);
                    self.mint_trigger(ctx, Some(*p));
                    self.recompute_now(ctx, RecomputeTrigger::Command);
                }
            }
            RouterCommand::Withdraw(p) => {
                if self.owned.remove(p).is_some() {
                    self.dirty.insert(*p);
                    ctx.report(Activity::PrefixWithdrawn);
                    self.mint_trigger(ctx, Some(*p));
                    self.recompute_now(ctx, RecomputeTrigger::Command);
                }
            }
            RouterCommand::ResetSession(_) | RouterCommand::RequestRefresh(_) => {}
        }
    }
}

impl<M: SdnApp + BgpApp> Node<M> for IdrController<M> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        // Compile the initial state (member prefixes) onto the switches.
        self.recompute_all(ctx, RecomputeTrigger::Startup);
        // Liveness toward the speaker: beat forever, expect beats back.
        let epoch = self.tx.epoch();
        self.send_ctrl(
            ctx,
            CtrlMsg::Heartbeat {
                from_controller: true,
                epoch,
            },
        );
        ctx.set_timer(HEARTBEAT_EVERY, HEARTBEAT, TimerClass::Maintenance);
        self.arm_hold(ctx);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, M>) {
        // Crash-restart: the operator's intent (configured plus
        // runtime-announced prefixes) is the controller's only stable
        // storage. Everything learned — external routes, session states,
        // the installed-table model — is wiped and re-acquired from the
        // speaker's resync and the switches' table replies.
        let owned = std::mem::take(&mut self.owned);
        let cfg = self.cfg.clone();
        *self = IdrController::new(self.id, cfg);
        self.owned = owned;
        // Unsynced until the speaker pushes a fresh snapshot (it will: our
        // heartbeats carry epoch 0, which mismatches whatever it has).
        self.tx.reset(0);
        self.rx.reset(0);
        self.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, _from: NodeId, link: LinkId, msg: M) {
        let msg = match msg.into_ctrl() {
            Ok(m) => {
                self.handle_ctrl(ctx, m);
                return;
            }
            Err(msg) => msg,
        };
        // Bare speaker events remain accepted for direct injection in tests
        // and single-process deployments with a lossless channel.
        let msg = match msg.into_speaker_event() {
            Ok(ev) => {
                self.handle_speaker_event(ctx, ev);
                return;
            }
            Err(msg) => msg,
        };
        let msg = match msg.into_of() {
            Ok(env) => {
                self.handle_of(ctx, &env);
                return;
            }
            Err(msg) => msg,
        };
        if link.is_control() {
            if let Ok(cmd) = msg.into_command() {
                self.handle_command(ctx, &cmd);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: TimerToken) {
        if token == RECOMPUTE {
            self.recompute_armed = false;
            self.recompute_now(ctx, RecomputeTrigger::UpdateBatch);
        } else if token == RETX {
            if !self.tx.pending() {
                return;
            }
            self.stats.retransmits += 1;
            ctx.count("core.ctrl.retransmits", 1);
            let oldest_seq = self.tx.oldest_seq().unwrap_or(0);
            let outstanding = self.tx.outstanding() as u32;
            ctx.trace(TraceCategory::Ctrl, || TraceEvent::ControlRetransmit {
                from_controller: true,
                oldest_seq,
                outstanding,
            });
            let mut burst = std::mem::take(&mut self.retx_scratch);
            self.tx.retransmit_into(&mut burst);
            for msg in burst.drain(..) {
                self.send_ctrl(ctx, msg);
            }
            self.retx_scratch = burst;
            self.arm_retx(ctx);
        } else if token == HEARTBEAT {
            let epoch = self.tx.epoch();
            self.send_ctrl(
                ctx,
                CtrlMsg::Heartbeat {
                    from_controller: true,
                    epoch,
                },
            );
            ctx.set_timer(HEARTBEAT_EVERY, HEARTBEAT, TimerClass::Maintenance);
        } else if token == HOLD && self.tx.epoch() != 0 {
            // Speaker lost: go unsynced. Outstanding commands are dropped
            // (the next Sync supersedes them); switch programming continues
            // headless through the OF channel. The speaker resyncs as soon
            // as it hears our epoch-0 heartbeats again.
            self.tx.reset(0);
            self.rx.reset(0);
            ctx.cancel_timer(RETX);
        }
    }

    fn on_link_change(&mut self, ctx: &mut Ctx<'_, M>, link: LinkId, up: bool) {
        // Probe the instant the control channel heals rather than waiting
        // out the periodic (Maintenance-class) heartbeat: the speaker hears
        // us, leaves headless mode, and resyncs in the same event cascade.
        if up && link == self.cfg.speaker_link {
            let hb = CtrlMsg::Heartbeat {
                from_controller: true,
                epoch: self.tx.epoch(),
            };
            self.send_ctrl(ctx, hb);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
