//! The per-prefix AS topology graph and route computation.
//!
//! The paper's second controller graph: "the *AS topology graph*, which is a
//! transformation of the switch graph per destination prefix. The
//! transformation is restructuring the graph taking carefully into account
//! paths that cross the legacy world and the SDN cluster so as to avoid
//! loops. Best path calculations are based on the Dijkstra algorithm,
//! running on the AS topology graph."
//!
//! Concretely, for one destination prefix the graph consists of the cluster
//! members (weight-1 intra-cluster edges from the switch graph, up links
//! only) plus a virtual destination vertex attached
//!
//! * to the owning member with weight 0, when the prefix is
//!   cluster-originated, and
//! * to each member holding an accepted external route, with weight equal
//!   to that route's AS-path length.
//!
//! Dijkstra from the virtual destination yields, for every member, its
//! distance and next hop — either another member (transit inside the
//! cluster) or an egress session into the legacy world.
//!
//! **Loop avoidance** (the paper's "important insight"): an external route
//! whose AS_PATH already contains any cluster member's ASN is rejected
//! before it enters the graph — it describes a path that would re-enter the
//! cluster through the legacy world, and using it could form a forwarding
//! loop that distributed BGP's per-hop AS_PATH check would have caught.

use std::collections::{BTreeSet, VecDeque};

use bgpsdn_bgp::{Asn, SharedPath};

use super::switch_graph::SwitchGraph;

/// An external route held by the controller for some prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternalRoute {
    /// Speaker session it was learned on.
    pub session: usize,
    /// Member whose border that session sits at.
    pub member: usize,
    /// The advertised AS path (first element = the external neighbor).
    /// Interned: one UPDATE announcing many prefixes shares one allocation.
    pub as_path: SharedPath,
    /// MED, if sent.
    pub med: Option<u32>,
}

/// Accept or reject an external route per the cluster loop-avoidance rule.
pub fn accept_route(as_path: &[Asn], member_asns: &BTreeSet<Asn>) -> bool {
    !as_path.iter().any(|a| member_asns.contains(a))
}

/// What one member should do with traffic for the prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberDecision {
    /// No path at all.
    Unreachable,
    /// The prefix is this member's own.
    Local,
    /// Forward to an adjacent member (intra-cluster transit).
    ViaMember(usize),
    /// Leave the cluster through this session.
    Egress(usize),
}

/// The full routing decision for one prefix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrefixComputation {
    /// Per-member decision, indexed by member.
    pub decisions: Vec<MemberDecision>,
    /// Per-member total cost (internal hops + external AS hops);
    /// `None` = unreachable.
    pub dist: Vec<Option<u32>>,
}

impl PrefixComputation {
    /// True when no member can reach the prefix.
    pub fn all_unreachable(&self) -> bool {
        self.decisions
            .iter()
            .all(|d| *d == MemberDecision::Unreachable)
    }
}

/// Reusable Dijkstra/BFS scratch buffers for [`compute_into`].
///
/// One prefix computation needs five working vectors plus a BFS queue; a
/// controller recomputing hundreds of prefixes per batch reuses one scratch
/// across all of them instead of allocating per prefix.
#[derive(Debug, Default)]
pub struct ComputeScratch {
    seeds: Vec<(u32, usize, MemberDecision)>,
    decided: Vec<bool>,
    done: Vec<bool>,
    bfs_dist: Vec<Option<usize>>,
    bfs_prev: Vec<Option<usize>>,
    bfs_queue: VecDeque<usize>,
}

/// Run the per-prefix computation.
///
/// `owner` is the member originating the prefix (if cluster-owned); `ext`
/// are the accepted external routes. Deterministic: ties break toward the
/// lower session index, then the lower member index.
pub fn compute(sg: &SwitchGraph, owner: Option<usize>, ext: &[ExternalRoute]) -> PrefixComputation {
    let mut out = PrefixComputation::default();
    compute_into(sg, owner, ext, &mut ComputeScratch::default(), &mut out);
    out
}

/// [`compute`] into caller-provided scratch and output buffers. Identical
/// results; no per-call allocation once the buffers have warmed up.
pub fn compute_into(
    sg: &SwitchGraph,
    owner: Option<usize>,
    ext: &[ExternalRoute],
    scratch: &mut ComputeScratch,
    out: &mut PrefixComputation,
) {
    let n = sg.len();
    let dist = &mut out.dist;
    dist.clear();
    dist.resize(n, None);
    // How the best path leaves each member.
    let via = &mut out.decisions;
    via.clear();
    via.resize(n, MemberDecision::Unreachable);

    // Cluster-owned prefixes route internally wherever the owner is
    // reachable (a local route beats any external candidate, like the
    // Loc-RIB preference of a single AS). Members cut off from the owner by
    // a partition fall through to the egress computation below — reaching
    // the other sub-cluster over the legacy world (§2's sub-cluster goal).
    if let Some(o) = owner {
        sg.bfs_into(
            o,
            &mut scratch.bfs_dist,
            &mut scratch.bfs_prev,
            &mut scratch.bfs_queue,
        );
        for m in 0..n {
            if let Some(d) = scratch.bfs_dist[m] {
                dist[m] = Some(d as u32);
                via[m] = if m == o {
                    MemberDecision::Local
                } else {
                    MemberDecision::ViaMember(scratch.bfs_prev[m].expect("non-root has parent"))
                };
            }
        }
    }

    // Seed egress distances for the undecided members. A member may hold
    // several candidate seeds; the best (lowest cost, then lowest session)
    // wins.
    let seeds = &mut scratch.seeds;
    seeds.clear();
    for r in ext {
        // An egress costs the external AS-path length (at least 1).
        let cost = (r.as_path.len() as u32).max(1);
        seeds.push((cost, r.member, MemberDecision::Egress(r.session)));
    }
    // Members already decided by the owner pass are fixed; the egress
    // Dijkstra runs only over the rest (they live in other sub-clusters).
    let decided = &mut scratch.decided;
    decided.clear();
    decided.extend(
        via.iter()
            .map(|d| !matches!(d, MemberDecision::Unreachable)),
    );

    // Deterministic seed application: sort by (cost, member, session).
    seeds.sort_by_key(|(c, m, d)| {
        let rank = match d {
            MemberDecision::Egress(s) => *s,
            _ => usize::MAX,
        };
        (*c, *m, rank)
    });
    for &(cost, m, d) in seeds.iter() {
        if decided[m] {
            continue;
        }
        if dist[m].map(|cur| cost < cur).unwrap_or(true) {
            dist[m] = Some(cost);
            via[m] = d;
        }
    }

    // Dijkstra relaxation over up intra-cluster edges (weight 1).
    // n is small (cluster size); a simple O(n²) scan keeps this obvious.
    let done = &mut scratch.done;
    done.clear();
    done.extend_from_slice(decided);
    loop {
        let mut best: Option<(u32, usize)> = None;
        for m in 0..n {
            if done[m] {
                continue;
            }
            if let Some(d) = dist[m] {
                if best.map(|(bd, bm)| (d, m) < (bd, bm)).unwrap_or(true) {
                    best = Some((d, m));
                }
            }
        }
        let Some((d, m)) = best else { break };
        done[m] = true;
        for (nbr, _) in sg.neighbors_up_iter(m) {
            if decided[nbr] {
                continue;
            }
            let nd = d + 1;
            let better = match dist[nbr] {
                None => true,
                Some(cur) => {
                    nd < cur
                        || (nd == cur && matches!(via[nbr], MemberDecision::ViaMember(p) if m < p))
                }
            };
            if better && !done[nbr] {
                dist[nbr] = Some(nd);
                via[nbr] = MemberDecision::ViaMember(m);
            }
        }
    }
}

/// The AS sequence member `x` would advertise for this prefix: its own ASN,
/// the member ASNs along the internal path, then (for an egress) the
/// external AS path. `None` when `x` cannot reach the prefix or the path
/// would traverse `exclude_session` (split horizon toward the session the
/// best route came from).
pub fn announced_path(
    x: usize,
    comp: &PrefixComputation,
    ext: &[ExternalRoute],
    member_asns: &[Asn],
) -> Option<Vec<Asn>> {
    let mut path = Vec::new();
    let mut cur = x;
    for _ in 0..=comp.decisions.len() {
        path.push(member_asns[cur]);
        match comp.decisions[cur] {
            MemberDecision::Unreachable => return None,
            MemberDecision::Local => return Some(path),
            MemberDecision::ViaMember(next) => cur = next,
            MemberDecision::Egress(s) => {
                let r = ext.iter().find(|r| r.session == s)?;
                path.extend(r.as_path.iter().copied());
                return Some(path);
            }
        }
    }
    None // defensive: decision cycle (cannot happen with Dijkstra output)
}

/// The session the best route of member `x` ultimately egresses through,
/// if its path leaves the cluster.
pub fn egress_session_of(x: usize, comp: &PrefixComputation) -> Option<usize> {
    let mut cur = x;
    for _ in 0..=comp.decisions.len() {
        match comp.decisions[cur] {
            MemberDecision::Egress(s) => return Some(s),
            MemberDecision::ViaMember(next) => cur = next,
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsdn_netsim::LinkId;

    fn sg_line(n: usize) -> SwitchGraph {
        SwitchGraph::new(
            n,
            (0..n - 1).map(|i| (i, i + 1, LinkId(i as u32))).collect(),
        )
    }

    fn asns(n: usize) -> Vec<Asn> {
        (0..n).map(|i| Asn(100 + i as u32)).collect()
    }

    #[test]
    fn loop_avoidance_rejects_member_asns() {
        let members: BTreeSet<Asn> = [Asn(100), Asn(101)].into();
        assert!(accept_route(&[Asn(7), Asn(8)], &members));
        assert!(!accept_route(&[Asn(7), Asn(100)], &members));
        assert!(accept_route(&[], &members));
    }

    #[test]
    fn owner_prefix_routes_internally() {
        let sg = sg_line(4);
        let comp = compute(&sg, Some(3), &[]);
        assert_eq!(comp.decisions[3], MemberDecision::Local);
        assert_eq!(comp.decisions[2], MemberDecision::ViaMember(3));
        assert_eq!(comp.decisions[0], MemberDecision::ViaMember(1));
        assert_eq!(comp.dist, vec![Some(3), Some(2), Some(1), Some(0)]);
        let p = announced_path(0, &comp, &[], &asns(4)).unwrap();
        assert_eq!(p, vec![Asn(100), Asn(101), Asn(102), Asn(103)]);
    }

    #[test]
    fn external_route_attracts_traffic() {
        let sg = sg_line(3);
        let ext = vec![ExternalRoute {
            session: 5,
            member: 0,
            as_path: vec![Asn(7), Asn(8)].into(),
            med: None,
        }];
        let comp = compute(&sg, None, &ext);
        assert_eq!(comp.decisions[0], MemberDecision::Egress(5));
        assert_eq!(comp.decisions[1], MemberDecision::ViaMember(0));
        assert_eq!(comp.decisions[2], MemberDecision::ViaMember(1));
        assert_eq!(comp.dist, vec![Some(2), Some(3), Some(4)]);
        assert_eq!(egress_session_of(2, &comp), Some(5));
        let p = announced_path(2, &comp, &ext, &asns(3)).unwrap();
        assert_eq!(
            p,
            vec![Asn(102), Asn(101), Asn(100), Asn(7), Asn(8)],
            "member chain then external path"
        );
    }

    #[test]
    fn shorter_external_path_wins() {
        let sg = sg_line(3);
        let ext = vec![
            ExternalRoute {
                session: 0,
                member: 0,
                as_path: vec![Asn(7), Asn(8), Asn(9)].into(),
                med: None,
            },
            ExternalRoute {
                session: 1,
                member: 2,
                as_path: vec![Asn(5)].into(),
                med: None,
            },
        ];
        let comp = compute(&sg, None, &ext);
        assert_eq!(comp.decisions[2], MemberDecision::Egress(1));
        assert_eq!(comp.decisions[1], MemberDecision::ViaMember(2));
        // Member 0: egress via own session costs 3; via cluster to session 1
        // costs 2 + 1 = 3 — tie; the seed (own egress) was applied first and
        // relaxation only overrides on strict improvement.
        assert_eq!(comp.decisions[0], MemberDecision::Egress(0));
    }

    #[test]
    fn owner_beats_external() {
        let sg = sg_line(2);
        let ext = vec![ExternalRoute {
            session: 0,
            member: 1,
            as_path: vec![Asn(7)].into(),
            med: None,
        }];
        let comp = compute(&sg, Some(0), &ext);
        assert_eq!(comp.decisions[0], MemberDecision::Local);
        assert_eq!(comp.decisions[1], MemberDecision::ViaMember(0));
    }

    #[test]
    fn partition_respects_subclusters() {
        let mut sg = sg_line(4);
        sg.set_link_state(LinkId(1), false); // split {0,1} | {2,3}
        let ext = vec![ExternalRoute {
            session: 9,
            member: 0,
            as_path: vec![Asn(7)].into(),
            med: None,
        }];
        let comp = compute(&sg, None, &ext);
        assert_eq!(comp.decisions[0], MemberDecision::Egress(9));
        assert_eq!(comp.decisions[1], MemberDecision::ViaMember(0));
        assert_eq!(comp.decisions[2], MemberDecision::Unreachable);
        assert_eq!(comp.decisions[3], MemberDecision::Unreachable);
        assert!(announced_path(2, &comp, &ext, &asns(4)).is_none());
        assert!(!comp.all_unreachable());
    }

    #[test]
    fn no_routes_means_all_unreachable() {
        let sg = sg_line(3);
        let comp = compute(&sg, None, &[]);
        assert!(comp.all_unreachable());
        assert_eq!(comp.dist, vec![None, None, None]);
    }

    #[test]
    fn deterministic_tie_breaking_by_session() {
        // Two sessions at the same member with equal-length paths: lower
        // session index wins.
        let sg = sg_line(1);
        let ext = vec![
            ExternalRoute {
                session: 3,
                member: 0,
                as_path: vec![Asn(7)].into(),
                med: None,
            },
            ExternalRoute {
                session: 1,
                member: 0,
                as_path: vec![Asn(8)].into(),
                med: None,
            },
        ];
        let comp = compute(&sg, None, &ext);
        assert_eq!(comp.decisions[0], MemberDecision::Egress(1));
    }

    #[test]
    fn empty_external_path_costs_at_least_one() {
        let sg = sg_line(2);
        let ext = vec![ExternalRoute {
            session: 0,
            member: 1,
            as_path: vec![].into(),
            med: None,
        }];
        let comp = compute(&sg, None, &ext);
        assert_eq!(comp.dist[1], Some(1));
    }
}
