//! The switch graph: the physical topology of the cluster's switches.
//!
//! One of the two graphs the paper's controller maintains ("the *Switch
//! graph*, representing the physical topology of the switches in the
//! cluster"). Vertices are cluster members (dense local indices), edges are
//! intra-cluster links with live up/down state fed by PortStatus messages.
//! Connected components define the sub-clusters: the paper's §2 goal is that
//! "an intra-cluster link failure does not isolate the controlled ASes".

use std::collections::VecDeque;

use bgpsdn_netsim::LinkId;

/// One intra-cluster link.
#[derive(Debug, Clone)]
pub struct IntraLink {
    /// Member index of one endpoint.
    pub a: usize,
    /// Member index of the other endpoint.
    pub b: usize,
    /// The simulator link.
    pub link: LinkId,
    /// Operational state.
    pub up: bool,
}

/// The physical cluster topology.
#[derive(Debug, Clone)]
pub struct SwitchGraph {
    n: usize,
    links: Vec<IntraLink>,
}

impl SwitchGraph {
    /// A graph over `n` members with the given links (all initially up).
    pub fn new(n: usize, links: Vec<(usize, usize, LinkId)>) -> SwitchGraph {
        for &(a, b, _) in &links {
            assert!(a < n && b < n && a != b, "bad intra link {a}-{b}");
        }
        SwitchGraph {
            n,
            links: links
                .into_iter()
                .map(|(a, b, link)| IntraLink {
                    a,
                    b,
                    link,
                    up: true,
                })
                .collect(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All intra-cluster links.
    pub fn links(&self) -> &[IntraLink] {
        &self.links
    }

    /// Update a link's state from a PortStatus. Returns true when this
    /// link is an intra-cluster link and its state actually changed.
    pub fn set_link_state(&mut self, link: LinkId, up: bool) -> bool {
        for l in &mut self.links {
            if l.link == link {
                if l.up != up {
                    l.up = up;
                    return true;
                }
                return false;
            }
        }
        false
    }

    /// Up neighbors of a member: `(other member, link)`.
    pub fn neighbors_up(&self, m: usize) -> Vec<(usize, LinkId)> {
        self.neighbors_up_iter(m).collect()
    }

    /// Non-allocating variant of [`neighbors_up`](Self::neighbors_up) —
    /// iterates in link insertion order, so traversals stay deterministic.
    pub fn neighbors_up_iter(&self, m: usize) -> impl Iterator<Item = (usize, LinkId)> + '_ {
        self.links.iter().filter(|l| l.up).filter_map(move |l| {
            if l.a == m {
                Some((l.b, l.link))
            } else if l.b == m {
                Some((l.a, l.link))
            } else {
                None
            }
        })
    }

    /// The link between two members, if up.
    pub fn link_between(&self, a: usize, b: usize) -> Option<LinkId> {
        self.links
            .iter()
            .find(|l| l.up && ((l.a == a && l.b == b) || (l.a == b && l.b == a)))
            .map(|l| l.link)
    }

    /// Component id per member (dense from 0) and the component count —
    /// the current sub-cluster structure.
    pub fn components(&self) -> (Vec<usize>, usize) {
        let mut comp = vec![usize::MAX; self.n];
        let mut count = 0;
        for start in 0..self.n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = count;
            let mut q = VecDeque::from([start]);
            while let Some(v) = q.pop_front() {
                for (nbr, _) in self.neighbors_up_iter(v) {
                    if comp[nbr] == usize::MAX {
                        comp[nbr] = count;
                        q.push_back(nbr);
                    }
                }
            }
            count += 1;
        }
        (comp, count)
    }

    /// BFS hop distances from `src` over up links, with the predecessor
    /// member toward `src`.
    pub fn bfs(&self, src: usize) -> (Vec<Option<usize>>, Vec<Option<usize>>) {
        let mut dist = Vec::new();
        let mut prev = Vec::new();
        let mut q = VecDeque::new();
        self.bfs_into(src, &mut dist, &mut prev, &mut q);
        (dist, prev)
    }

    /// BFS into caller-provided buffers, so a hot loop running one search
    /// per prefix reuses its allocations instead of growing fresh vectors.
    pub fn bfs_into(
        &self,
        src: usize,
        dist: &mut Vec<Option<usize>>,
        prev: &mut Vec<Option<usize>>,
        q: &mut VecDeque<usize>,
    ) {
        dist.clear();
        dist.resize(self.n, None);
        prev.clear();
        prev.resize(self.n, None);
        q.clear();
        dist[src] = Some(0);
        q.push_back(src);
        while let Some(v) = q.pop_front() {
            let d = dist[v].expect("queued implies visited");
            // Deterministic order: neighbors preserve link insertion order.
            for (nbr, _) in self.neighbors_up_iter(v) {
                if dist[nbr].is_none() {
                    dist[nbr] = Some(d + 1);
                    prev[nbr] = Some(v);
                    q.push_back(nbr);
                }
            }
        }
    }

    /// Shortest member path `from → to` over up links, inclusive, or `None`
    /// when they are in different sub-clusters.
    pub fn path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(vec![from]);
        }
        let (dist, prev) = self.bfs(from);
        dist[to]?;
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[cur].expect("dist set implies prev chain");
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lid(i: u32) -> LinkId {
        LinkId(i)
    }

    fn triangle() -> SwitchGraph {
        SwitchGraph::new(3, vec![(0, 1, lid(0)), (1, 2, lid(1)), (0, 2, lid(2))])
    }

    #[test]
    fn components_track_failures() {
        let mut g = triangle();
        assert_eq!(g.components().1, 1);
        assert!(g.set_link_state(lid(0), false));
        assert!(!g.set_link_state(lid(0), false), "no change");
        assert_eq!(g.components().1, 1, "triangle survives one failure");
        assert!(g.set_link_state(lid(2), false));
        let (comp, n) = g.components();
        assert_eq!(n, 2);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[1]);
        // Unknown link ids are ignored.
        assert!(!g.set_link_state(lid(99), false));
    }

    #[test]
    fn paths_and_neighbors() {
        let mut g = triangle();
        assert_eq!(g.path(0, 2), Some(vec![0, 2]));
        g.set_link_state(lid(2), false);
        assert_eq!(g.path(0, 2), Some(vec![0, 1, 2]));
        assert_eq!(g.path(0, 0), Some(vec![0]));
        g.set_link_state(lid(0), false);
        assert_eq!(g.path(0, 2), None, "0 is isolated");
        assert!(g.neighbors_up(0).is_empty());
        assert_eq!(g.link_between(1, 2), Some(lid(1)));
        assert_eq!(g.link_between(0, 1), None);
    }

    #[test]
    fn bfs_distances() {
        let g = SwitchGraph::new(4, vec![(0, 1, lid(0)), (1, 2, lid(1)), (2, 3, lid(2))]);
        let (dist, _) = g.bfs(0);
        assert_eq!(dist, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_links() {
        SwitchGraph::new(2, vec![(0, 5, lid(0))]);
    }
}
