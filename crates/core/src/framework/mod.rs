//! The hybrid BGP-SDN experiment framework: network assembly
//! ([`network`]), experiment lifecycle ([`experiment`]), chaos fault
//! injection ([`faults`]) and canned evaluation scenarios ([`scenarios`]).

pub mod experiment;
pub mod faults;
pub mod network;
pub mod scenarios;
pub mod script;
pub mod traffic;
pub mod verify;

pub use experiment::Experiment;
pub use faults::{FaultAction, FaultPlan};
pub use network::{
    AsHandle, AsKind, Collector, Controller, HybridNetwork, NetworkBuilder, Router, Sim, Speaker,
    Switch, COLLECTOR_ASN,
};
pub use scenarios::{
    clique_sweep_point, event_phase_name, run_clique, run_clique_full, run_clique_instrumented,
    run_clique_traced, run_scale, run_scale_instrumented, CliqueScenario, EventKind,
    ScaleOutcome, ScaleScenario, ScenarioOutcome, SCALE_UPDATE_PHASE,
};
pub use script::{Script, ScriptAction, ScriptReport, StepOutcome};
pub use traffic::ProbeReport;
pub use verify::capture_snapshot;
