//! The hybrid BGP-SDN experiment framework: network assembly
//! ([`network`]), cluster deployment strategies ([`deploy`]), experiment
//! lifecycle ([`experiment`]), chaos fault injection ([`faults`]), canned
//! evaluation scenarios ([`scenarios`]), multi-threaded parameter-sweep
//! campaigns ([`campaign`]), and static pre-flight analysis gates
//! ([`preflight`]).

pub mod campaign;
pub mod deploy;
pub mod experiment;
pub mod faults;
pub mod network;
pub mod preflight;
pub mod scenarios;
pub mod script;
pub mod traffic;
pub mod verify;

pub use campaign::{
    job_seed, loss_ppm, render_job_artifact, render_job_artifact_into, run_campaign,
    run_campaign_scratch, run_campaign_with, run_job, run_job_scratch, CampaignGrid, CampaignJob,
    CampaignRunReport, FaultSpec, JobOutcome, JobResult, JobScratch,
};
pub use deploy::{validate_clusters, DeploymentStrategy};
pub use experiment::Experiment;
pub use faults::{FaultAction, FaultClasses, FaultPlan};
pub use network::{
    AsHandle, AsKind, ClusterHandle, Collector, Controller, HybridNetwork, NetworkBuilder, Router,
    Sim, Speaker, Switch, COLLECTOR_ASN,
};
pub use preflight::{check_plan, check_plan_clusters, PreflightContext};
pub use scenarios::{
    clique_sweep_point, event_phase_name, run_clique, run_clique_full, run_clique_instrumented,
    run_clique_traced, run_clique_with, run_scale, run_scale_instrumented, CliqueRunOptions,
    CliqueScenario, EventKind, ScaleOutcome, ScaleScenario, ScenarioOutcome, SCALE_UPDATE_PHASE,
};
pub use script::{Script, ScriptAction, ScriptReport, StepOutcome};
pub use traffic::ProbeReport;
pub use verify::capture_snapshot;
