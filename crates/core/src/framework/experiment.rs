//! The experiment lifecycle API — the framework's "Mininet-BGP commands".
//!
//! "We implemented several additional Mininet-BGP commands to announce
//! prefixes, wait until BGP has converged, etc." plus "the user should be
//! able to actively control the experiments, e.g., dynamically changing the
//! topology and verifying the effects of changes". [`Experiment`] is that
//! surface: announce/withdraw, link failure/restoration, convergence
//! waiting/measurement, RIB and connectivity audits.

use std::net::Ipv4Addr;

use bgpsdn_bgp::{Prefix, RouterCommand};
use bgpsdn_collector::{audit, measure, ConnectivityReport, ConvergenceReport, Hop};
use bgpsdn_netsim::ObsPrefix;
use bgpsdn_netsim::{
    Activity, MetricsSnapshot, NodeId, SimDuration, SimTime, TraceCategory, TraceEvent,
};
use bgpsdn_sdn::{ClusterMsg, FlowAction};
use bgpsdn_verify::{Report, Snapshot, Verifier};

use super::network::{AsKind, Collector, Controller, HybridNetwork, Router, Switch};
use super::verify::capture_snapshot;

/// A running hybrid experiment.
pub struct Experiment {
    /// The underlying network (public: tests and tools reach in freely).
    pub net: HybridNetwork,
    /// Start of the current measurement phase.
    phase_start: SimTime,
    /// Name of the current measurement phase (appears in `Phase` trace
    /// markers and as the key of the matching metrics snapshot).
    phase_name: String,
    /// Auto-numbering for anonymous [`Experiment::mark`] phases.
    phase_seq: u32,
    /// Completed phases: `(name, metrics accumulated during that phase)`.
    snapshots: Vec<(String, MetricsSnapshot)>,
    /// Whether the current phase's start marker has been emitted.
    phase_open: bool,
    /// The static verifier, kept across checks so its scratch is reused.
    verifier: Verifier,
}

impl Experiment {
    /// Wrap a built network.
    pub fn new(net: HybridNetwork) -> Experiment {
        Experiment {
            net,
            phase_start: SimTime::ZERO,
            phase_name: "bring-up".to_string(),
            phase_seq: 0,
            snapshots: Vec::new(),
            phase_open: false,
            verifier: Verifier::new(),
        }
    }

    /// Emit a `Phase` trace marker (global: no node attribution).
    fn emit_phase_marker(&mut self, name: &str, started: bool) {
        let now = self.net.sim.now();
        let name = name.to_string();
        self.net
            .sim
            .trace_mut()
            .record(now, None, TraceCategory::Experiment, || TraceEvent::Phase {
                name,
                started,
            });
    }

    /// Record a free-form experiment-level note in the trace (global: no
    /// node attribution). Campaigns use this to document per-cell decisions
    /// such as fault classes dropped as inapplicable.
    pub fn note(&mut self, text: impl Into<String>) {
        let now = self.net.sim.now();
        let text = text.into();
        self.net
            .sim
            .trace_mut()
            .record(now, None, TraceCategory::Experiment, || TraceEvent::Note {
                category: TraceCategory::Experiment,
                text,
            });
    }

    /// Close the current phase: emit its end marker and capture the metrics
    /// accumulated since its start as a phase-scoped snapshot, then reset
    /// the registry so the next phase starts from zero.
    fn close_phase(&mut self) {
        if self.phase_open {
            let name = self.phase_name.clone();
            self.emit_phase_marker(&name, false);
            self.phase_open = false;
        }
        // Fold the event-slab recycling counters accumulated during the
        // phase into the registry, so the `core.sim.*` allocation accounting
        // lands in every phase snapshot (and in `bgpsdn report`).
        self.net.sim.flush_pool_metrics();
        let metrics = self.net.sim.metrics_mut();
        if !metrics.is_empty() {
            let snap = metrics.snapshot();
            metrics.reset();
            self.snapshots.push((self.phase_name.clone(), snap));
        }
    }

    /// Bring the network up: run until sessions establish and initial
    /// routing converges. Returns the convergence report of the bring-up
    /// phase.
    pub fn start(&mut self, max: SimDuration) -> ConvergenceReport {
        self.emit_phase_marker("bring-up", true);
        self.phase_open = true;
        let deadline = self.net.sim.now() + max;
        let q = self.net.sim.run_until_quiescent(deadline);
        measure(self.net.sim.board(), SimTime::ZERO, q.quiescent)
    }

    /// Begin a measurement phase: reset activity accounting and the
    /// collector log, and remember the phase start. Anonymous phases are
    /// auto-numbered `phase-1`, `phase-2`, …; use
    /// [`Experiment::mark_named`] for self-describing trace artifacts.
    pub fn mark(&mut self) -> SimTime {
        self.phase_seq += 1;
        let name = format!("phase-{}", self.phase_seq);
        self.mark_named(&name)
    }

    /// Begin a named measurement phase. Closes the previous phase (emitting
    /// its `Phase` end marker and snapshotting its metrics), emits the new
    /// phase's start marker, resets activity accounting and the collector
    /// log, and remembers the phase start.
    pub fn mark_named(&mut self, name: &str) -> SimTime {
        self.close_phase();
        self.phase_name = name.to_string();
        self.emit_phase_marker(name, true);
        self.phase_open = true;
        self.net.sim.reset_board();
        if let Some(c) = self.net.collector {
            self.net.sim.with_node::<Collector, _>(c, |c| c.clear_log());
        }
        self.phase_start = self.net.sim.now();
        self.phase_start
    }

    /// Finish the experiment's telemetry: close the still-open phase and
    /// return all phase-scoped metric snapshots in phase order. Idempotent —
    /// calling it twice adds nothing new.
    pub fn finish(&mut self) -> &[(String, MetricsSnapshot)] {
        self.close_phase();
        &self.snapshots
    }

    /// Phase-scoped metric snapshots captured so far (the current phase is
    /// included only after [`Experiment::finish`] or the next mark).
    pub fn phase_snapshots(&self) -> &[(String, MetricsSnapshot)] {
        &self.snapshots
    }

    /// Name of the current measurement phase.
    pub fn phase_name(&self) -> &str {
        &self.phase_name
    }

    /// Run until the network re-converges (or `max` elapses) and measure
    /// the convergence time of everything since [`Experiment::mark`].
    pub fn wait_converged(&mut self, max: SimDuration) -> ConvergenceReport {
        let deadline = self.net.sim.now() + max;
        let q = self.net.sim.run_until_quiescent(deadline);
        let report = measure(self.net.sim.board(), self.phase_start, q.quiescent);
        self.auto_verify_checkpoint();
        report
    }

    /// Testbed-style convergence waiting: step the clock and declare
    /// convergence after `window` of routing-plane silence — what the
    /// paper's Mininet framework has to do, since a real network never goes
    /// event-quiescent. Pick `window` larger than the longest protocol
    /// timer (MRAI) or the wait will end inside an exploration round.
    pub fn wait_converged_windowed(
        &mut self,
        window: SimDuration,
        max: SimDuration,
    ) -> ConvergenceReport {
        let deadline = self.net.sim.now() + max;
        let step = (window / 4).max(SimDuration::from_millis(1));
        loop {
            let now = self.net.sim.now();
            let last = self
                .net
                .sim
                .board()
                .last_routing_change()
                .unwrap_or(self.phase_start)
                .max(self.phase_start);
            if now.saturating_since(last) >= window {
                let report = measure(self.net.sim.board(), self.phase_start, true);
                self.auto_verify_checkpoint();
                return report;
            }
            if now >= deadline {
                let report = measure(self.net.sim.board(), self.phase_start, false);
                self.auto_verify_checkpoint();
                return report;
            }
            self.net.sim.run_for(step);
        }
    }

    // ------------------------------------------------------------------
    // Scenario commands
    // ------------------------------------------------------------------

    /// The driver target for routing commands concerning AS `i`: the router
    /// itself, or the controller when the AS is a cluster member.
    fn command_target(&self, i: usize) -> NodeId {
        match self.net.ases[i].kind {
            AsKind::Legacy => self.net.ases[i].node,
            AsKind::SdnMember => {
                self.net
                    .cluster_for(i)
                    .expect("members imply an owning cluster")
                    .controller
            }
        }
    }

    /// AS `i` announces a prefix (its own /16 when `prefix` is `None`).
    pub fn announce(&mut self, i: usize, prefix: Option<Prefix>) {
        let p = prefix.unwrap_or(self.net.ases[i].prefix);
        let target = self.command_target(i);
        self.net
            .sim
            .inject(target, ClusterMsg::Command(RouterCommand::Announce(p)));
    }

    /// AS `i` withdraws a prefix (its own /16 when `prefix` is `None`).
    pub fn withdraw(&mut self, i: usize, prefix: Option<Prefix>) {
        let p = prefix.unwrap_or(self.net.ases[i].prefix);
        let target = self.command_target(i);
        self.net
            .sim
            .inject(target, ClusterMsg::Command(RouterCommand::Withdraw(p)));
    }

    /// Fail the link between adjacent ASes `a` and `b`.
    pub fn fail_edge(&mut self, a: usize, b: usize) {
        let link = self
            .net
            .link_between(a, b)
            .unwrap_or_else(|| panic!("no link between AS {a} and {b}"));
        self.net.sim.set_link_admin(link, false);
    }

    /// Restore the link between adjacent ASes `a` and `b`.
    pub fn restore_edge(&mut self, a: usize, b: usize) {
        let link = self
            .net
            .link_between(a, b)
            .unwrap_or_else(|| panic!("no link between AS {a} and {b}"));
        self.net.sim.set_link_admin(link, true);
    }

    /// Set the random per-message loss probability of the link between
    /// adjacent ASes `a` and `b`.
    pub fn set_edge_loss(&mut self, a: usize, b: usize, loss: f64) {
        let link = self
            .net
            .link_between(a, b)
            .unwrap_or_else(|| panic!("no link between AS {a} and {b}"));
        self.net.sim.set_link_loss(link, loss);
    }

    /// Silently drop all traffic on the edge between ASes `a` and `b`:
    /// 100% loss with the link administratively up, so neither end sees a
    /// link event and only hold-timer expiry can detect the outage. Goes
    /// through the event queue so the change is traced.
    pub fn drop_edge_traffic(&mut self, a: usize, b: usize) {
        let link = self
            .net
            .link_between(a, b)
            .unwrap_or_else(|| panic!("no link between AS {a} and {b}"));
        let now = self.net.sim.now();
        self.net.sim.schedule_link_loss(now, link, 1_000_000);
        self.net.sim.run_until(now);
    }

    /// End a traffic-drop window on the edge between ASes `a` and `b`.
    pub fn restore_edge_traffic(&mut self, a: usize, b: usize) {
        let link = self
            .net
            .link_between(a, b)
            .unwrap_or_else(|| panic!("no link between AS {a} and {b}"));
        let now = self.net.sim.now();
        self.net.sim.schedule_link_loss(now, link, 0);
        self.net.sim.run_until(now);
    }

    /// Crash the router device of AS `i`: in-flight deliveries to it drop,
    /// its timers die, and peers only find out when their hold timers
    /// expire (or, with hold timers off, when the restarted router's OPEN
    /// collides with the stale session).
    pub fn crash_router(&mut self, i: usize) {
        let node = self.net.ases[i].node;
        self.net.sim.set_node_admin(node, false);
    }

    /// Restore a crashed router. It cold-starts: volatile state (RIBs,
    /// sessions, damping history) is gone, operator intent (configuration
    /// and originated prefixes) survives, and it re-advertises everything
    /// once sessions come back.
    pub fn restore_router(&mut self, i: usize) {
        let node = self.net.ases[i].node;
        self.net.sim.set_node_admin(node, true);
    }

    /// Whether the router device of AS `i` is currently up.
    pub fn router_is_up(&self, i: usize) -> bool {
        self.net.sim.node_is_up(self.net.ases[i].node)
    }

    // ------------------------------------------------------------------
    // Fault injection (the chaos layer)
    // ------------------------------------------------------------------

    fn controller_node_of(&self, cluster: usize) -> NodeId {
        self.net
            .clusters
            .get(cluster)
            .unwrap_or_else(|| panic!("fault injection targets missing cluster {cluster}"))
            .controller
    }

    fn control_channel_of(&self, cluster: usize) -> bgpsdn_netsim::LinkId {
        self.net
            .clusters
            .get(cluster)
            .unwrap_or_else(|| panic!("fault injection targets missing cluster {cluster}"))
            .speaker_link
    }

    /// Crash the IDR controller: it stops processing entirely, its timers
    /// die, and in-flight messages toward it are lost. Speakers fall back
    /// to headless fail-static forwarding. Targets the first cluster; see
    /// [`Experiment::crash_controller_of`] for multi-cluster deployments.
    pub fn crash_controller(&mut self) {
        self.crash_controller_of(0);
    }

    /// Crash cluster `cluster`'s IDR controller.
    pub fn crash_controller_of(&mut self, cluster: usize) {
        let c = self.controller_node_of(cluster);
        self.net.sim.set_node_admin(c, false);
    }

    /// Restart a crashed controller (first cluster). It comes back with
    /// operator intent only (configuration + announced prefixes) and
    /// re-learns everything else through the speaker resync and switch
    /// table replies.
    pub fn restore_controller(&mut self) {
        self.restore_controller_of(0);
    }

    /// Restart cluster `cluster`'s crashed controller.
    pub fn restore_controller_of(&mut self, cluster: usize) {
        let c = self.controller_node_of(cluster);
        self.net.sim.set_node_admin(c, true);
    }

    /// Whether the first cluster's controller node is currently up.
    pub fn controller_is_up(&self) -> bool {
        self.controller_is_up_of(0)
    }

    /// Whether cluster `cluster`'s controller node is currently up.
    pub fn controller_is_up_of(&self, cluster: usize) -> bool {
        self.net
            .clusters
            .get(cluster)
            .map(|h| self.net.sim.node_is_up(h.controller))
            .unwrap_or(false)
    }

    /// Partition the first cluster's speaker↔controller channel (both stay
    /// alive but cannot talk; each side's hold timer eventually fires).
    pub fn partition_control_channel(&mut self) {
        self.partition_control_channel_of(0);
    }

    /// Partition cluster `cluster`'s speaker↔controller channel.
    pub fn partition_control_channel_of(&mut self, cluster: usize) {
        let l = self.control_channel_of(cluster);
        self.net.sim.set_link_admin(l, false);
    }

    /// Heal a control-channel partition (first cluster).
    pub fn heal_control_channel(&mut self) {
        self.heal_control_channel_of(0);
    }

    /// Heal cluster `cluster`'s control-channel partition.
    pub fn heal_control_channel_of(&mut self, cluster: usize) {
        let l = self.control_channel_of(cluster);
        self.net.sim.set_link_admin(l, true);
    }

    /// Set the random per-message loss probability of the first cluster's
    /// speaker↔controller channel.
    pub fn set_control_loss(&mut self, loss: f64) {
        let l = self.control_channel_of(0);
        self.net.sim.set_link_loss(l, loss);
    }

    // ------------------------------------------------------------------
    // Static verification
    // ------------------------------------------------------------------

    /// Freeze the current network state into a verifier snapshot.
    pub fn capture_snapshot(&self) -> Snapshot {
        capture_snapshot(&self.net)
    }

    /// Run the static data-plane verifier against the live network:
    /// loop-freedom, blackhole detection, intent consistency and
    /// valley-free conformance over a frozen snapshot.
    ///
    /// Violations are recorded as `VerifyViolation` trace events and
    /// `verify.*` counters; the returned [`Report`] carries the witnesses.
    pub fn verify_now(&mut self) -> Report {
        let snap = capture_snapshot(&self.net);
        let report = self.verifier.verify(&snap);
        let now = self.net.sim.now();
        for v in &report.violations {
            let (check, prefix, offender, witness) = (
                v.kind.name().to_string(),
                v.prefix.map(|p| ObsPrefix::new(p.network_u32(), p.len())),
                v.node.clone(),
                v.witness.clone(),
            );
            self.net
                .sim
                .trace_mut()
                .record(now, None, TraceCategory::Experiment, || {
                    TraceEvent::VerifyViolation {
                        check,
                        prefix,
                        offender,
                        witness,
                    }
                });
        }
        let m = self.net.sim.metrics_mut();
        m.count(None, "verify.checks", report.checks as u64);
        m.count(None, "verify.violations", report.violations.len() as u64);
        m.count(
            None,
            "verify.prefixes_checked",
            report.prefixes_checked as u64,
        );
        report
    }

    /// Run the verifier if the network was built `with_verification()`.
    /// Called automatically after convergence waits and fault actions.
    pub(crate) fn auto_verify_checkpoint(&mut self) {
        if self.net.auto_verify {
            let _ = self.verify_now();
        }
    }

    // ------------------------------------------------------------------
    // Audits
    // ------------------------------------------------------------------

    /// True when no AS (legacy Loc-RIB, controller RIB or switch flow
    /// table) still carries a route for `prefix` — the paper's "verify the
    /// effects of changes" for a withdrawal.
    pub fn prefix_fully_gone(&self, prefix: Prefix) -> bool {
        for a in &self.net.ases {
            match a.kind {
                AsKind::Legacy => {
                    let r = self.net.sim.node_ref::<Router>(a.node);
                    if r.best(prefix).is_some() {
                        return false;
                    }
                }
                AsKind::SdnMember => {
                    let sw = self.net.sim.node_ref::<Switch>(a.node);
                    if sw.table().iter().any(|rule| rule.prefix == prefix) {
                        return false;
                    }
                }
            }
        }
        for handle in &self.net.clusters {
            let ctl = self.net.sim.node_ref::<Controller>(handle.controller);
            if ctl.ext_route_count(prefix) > 0 {
                return false;
            }
            if ctl.owned_prefixes().any(|(p, _)| p == prefix) {
                return false;
            }
        }
        true
    }

    /// True when every *other* AS holds a route for `prefix`.
    pub fn prefix_reachable_from_all(&self, prefix: Prefix, origin: usize) -> bool {
        self.net.ases.iter().all(|a| {
            if a.index == origin {
                return true;
            }
            match a.kind {
                AsKind::Legacy => self
                    .net
                    .sim
                    .node_ref::<Router>(a.node)
                    .best(prefix)
                    .is_some(),
                AsKind::SdnMember => self
                    .net
                    .sim
                    .node_ref::<Switch>(a.node)
                    .table()
                    .iter()
                    .any(|rule| rule.prefix == prefix),
            }
        })
    }

    /// Forwarding decision of any AS device for an address (the glue
    /// between node types and the offline reachability walker).
    fn decide(&self, node: NodeId, dst: Ipv4Addr) -> Hop {
        let handle = self.net.ases.iter().find(|a| a.node == node);
        match handle.map(|a| a.kind) {
            Some(AsKind::Legacy) => {
                let r = self.net.sim.node_ref::<Router>(node);
                match r.forward_lookup(dst) {
                    Some(None) => Hop::Deliver,
                    Some(Some(next)) => Hop::Forward(next),
                    None => Hop::Blackhole,
                }
            }
            Some(AsKind::SdnMember) => {
                let sw = self.net.sim.node_ref::<Switch>(node);
                match sw.next_hop_port(dst) {
                    Some(FlowAction::Local) => Hop::Deliver,
                    Some(FlowAction::Output(port)) => {
                        let link = self.net.sim.link(bgpsdn_netsim::LinkId(port));
                        if link.up {
                            Hop::Forward(link.other(node))
                        } else {
                            Hop::Blackhole
                        }
                    }
                    _ => Hop::Blackhole,
                }
            }
            None => Hop::Blackhole,
        }
    }

    /// Audit data-plane connectivity from every AS to every AS's identity
    /// address — the paper's "stable connectivity between all hosts" check.
    pub fn connectivity_audit(&self) -> ConnectivityReport {
        let sources: Vec<NodeId> = self.net.ases.iter().map(|a| a.node).collect();
        let destinations: Vec<(NodeId, Ipv4Addr)> = self
            .net
            .ases
            .iter()
            .map(|a| (a.node, a.router_ip))
            .collect();
        let max_hops = self.net.ases.len() * 2 + 4;
        audit(&sources, &destinations, max_hops, |n, d| self.decide(n, d))
    }

    // ------------------------------------------------------------------
    // Measurement helpers
    // ------------------------------------------------------------------

    /// Convergence measured from the collector's update log instead of the
    /// global activity board (what a real testbed can observe).
    pub fn collector_convergence(&self) -> Option<SimDuration> {
        let c = self.net.collector?;
        let log = self.net.sim.node_ref::<Collector>(c);
        Some(log.log().convergence_duration(self.phase_start))
    }

    /// Total BGP updates sent since the last [`Experiment::mark`].
    pub fn updates_sent(&self) -> u64 {
        self.net.sim.board().count(Activity::UpdateSent)
    }

    /// Total flow-table changes since the last [`Experiment::mark`].
    pub fn flows_installed(&self) -> u64 {
        self.net.sim.board().count(Activity::FlowInstalled)
    }

    /// The start of the current measurement phase.
    pub fn phase_start(&self) -> SimTime {
        self.phase_start
    }
}
