//! Canned experiment scenarios — the runs behind the paper's evaluation.
//!
//! [`run_clique`] reproduces the §4 experiments: an `n`-AS clique with a
//! configurable number of ASes under centralized control, subjected to a
//! route withdrawal (Figure 2), a route announcement, or a link fail-over,
//! measuring IDR convergence time. Used by the benches, the examples and
//! the integration tests.

use std::net::Ipv4Addr;

use bgpsdn_bgp::{PolicyMode, Prefix, TimingConfig};
use bgpsdn_netsim::{LatencyModel, SimDuration, SimRng, SimTime};
use bgpsdn_topology::{caida, gen, plan, AsGraph};

use super::experiment::Experiment;
use super::faults::FaultPlan;
use super::network::NetworkBuilder;

/// Parameters of a clique experiment.
#[derive(Debug, Clone)]
pub struct CliqueScenario {
    /// Clique size (the paper uses 16).
    pub n: usize,
    /// How many ASes are cluster members (taken from the high indices, so
    /// the event origin AS 0 stays legacy until `sdn_count == n`).
    pub sdn_count: usize,
    /// eBGP MRAI (the paper's Quagga default: 30 s).
    pub mrai: SimDuration,
    /// Controller delayed-recomputation window.
    pub recompute_delay: SimDuration,
    /// Experiment seed (vary for boxplot runs).
    pub seed: u64,
    /// Random per-message loss probability on the speaker↔controller
    /// channel (0.0 = lossless). The reliable control protocol must mask
    /// any non-zero setting.
    pub control_loss: f64,
}

impl CliqueScenario {
    /// The paper's Figure 2 configuration at a given SDN fraction and seed.
    pub fn fig2(sdn_count: usize, seed: u64) -> CliqueScenario {
        CliqueScenario {
            n: 16,
            sdn_count,
            mrai: SimDuration::from_secs(30),
            recompute_delay: SimDuration::from_millis(100),
            seed,
            control_loss: 0.0,
        }
    }

    /// The member AS indices implied by `sdn_count`.
    pub fn members(&self) -> Vec<usize> {
        (self.n - self.sdn_count..self.n).collect()
    }
}

/// Which routing event the scenario applies after initial convergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The origin AS withdraws its prefix (Figure 2).
    Withdrawal,
    /// The origin AS announces a fresh, previously unknown prefix.
    Announcement,
    /// The link between the origin and one neighbor fails; traffic must
    /// fail over to two-hop paths.
    Failover,
}

/// What a scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Whether the network converged within the deadline.
    pub converged: bool,
    /// Convergence time of the event (activity-board based).
    pub convergence: SimDuration,
    /// Convergence time as seen by the route collector.
    pub collector_convergence: Option<SimDuration>,
    /// BGP updates sent during re-convergence.
    pub updates: u64,
    /// Flow-table changes during re-convergence.
    pub flow_mods: u64,
    /// Whether the event's post-state audit passed (withdrawn prefix fully
    /// gone / new prefix reachable everywhere / fail-over path restored).
    pub audit_ok: bool,
}

/// Hard deadline for a single convergence phase.
const PHASE_DEADLINE: SimDuration = SimDuration::from_secs(3600);

/// Build, bring up and drive one clique experiment, returning the outcome
/// together with the still-inspectable experiment (collector log, RIBs,
/// flow tables) — what log-analysis benches use.
///
/// Withdrawal and announcement events run on the full `n`-clique. The
/// fail-over event runs on the thesis' variant: ASes `1..n` form the
/// clique and the origin is dual-homed to AS 1 (primary) and AS 2
/// (backup); failing the primary link forces the whole network from
/// `… 1 0` paths onto `… 2 0` paths.
pub fn run_clique_full(
    scenario: &CliqueScenario,
    event: EventKind,
) -> (ScenarioOutcome, Experiment) {
    run_clique_instrumented(scenario, event, |_| {})
}

/// Extra knobs a clique run can carry beyond the [`CliqueScenario`]
/// parameters — what the campaign engine sweeps and injects per job.
#[derive(Debug, Clone, Default)]
pub struct CliqueRunOptions {
    /// A fault schedule (control- and/or data-plane) replayed after the
    /// routing event is injected (the convergence wait resumes once the
    /// schedule finishes).
    pub fault_plan: Option<FaultPlan>,
    /// Run the static data-plane verifier at experiment checkpoints.
    pub verification: bool,
    /// Override the speaker↔controller channel latency model.
    pub ctl_latency: Option<LatencyModel>,
    /// BGP hold time in seconds (0 keeps keepalive/hold off, the default).
    /// Must be non-zero whenever the fault plan contains router- or
    /// link-class faults — silent outages are only detectable by hold
    /// expiry.
    pub hold_secs: u16,
    /// RFC 4724 graceful-restart window in seconds (0 = GR off).
    pub graceful_restart_secs: u16,
    /// A note recorded in the trace at bring-up — campaigns use it to
    /// record why a fault class was dropped as inapplicable for this cell.
    pub fault_note: Option<String>,
    /// How many independent SDN clusters the members are split into.
    /// `0` or `1` keeps the classic single-cluster path (byte-identical
    /// artifacts to pre-multi-cluster runs).
    pub clusters: usize,
    /// Deployment strategy placing the clusters (see
    /// [`super::deploy::DeploymentStrategy::by_name`]). Empty or `"tail"`
    /// with a single cluster keeps the classic path.
    pub strategy: &'static str,
}

impl CliqueRunOptions {
    /// True when the options describe the classic single-cluster tail
    /// deployment — the path whose artifacts must stay byte-identical.
    pub fn default_deployment(&self) -> bool {
        self.clusters <= 1 && (self.strategy.is_empty() || self.strategy == "tail")
    }
}

/// [`run_clique_full`] with a caller-chosen instrumentation hook applied to
/// the simulator between build and bring-up — enable trace categories, turn
/// on profiling, resize the trace ring. Phases are closed on return, so the
/// experiment's `phase_snapshots()` is complete.
pub fn run_clique_instrumented(
    scenario: &CliqueScenario,
    event: EventKind,
    instrument: impl FnOnce(&mut super::network::Sim),
) -> (ScenarioOutcome, Experiment) {
    run_clique_with(scenario, event, &CliqueRunOptions::default(), instrument)
}

/// [`run_clique_instrumented`] plus per-run options: an optional fault
/// schedule, automatic verification checkpoints, and a control-channel
/// latency override. This is the campaign engine's job runner.
pub fn run_clique_with(
    scenario: &CliqueScenario,
    event: EventKind,
    opts: &CliqueRunOptions,
    instrument: impl FnOnce(&mut super::network::Sim),
) -> (ScenarioOutcome, Experiment) {
    let ag = match event {
        EventKind::Withdrawal | EventKind::Announcement => {
            AsGraph::all_peer(&gen::clique(scenario.n), 65000)
        }
        EventKind::Failover => {
            // Origin 0 is dual-homed: primary link straight into the clique
            // (AS 2), backup over a stub relay (AS 1), making the backup one
            // hop longer. Failing the primary leaves equal-length ghost
            // paths competing with the real backup — genuine fail-over
            // exploration.
            assert!(scenario.n >= 5, "fail-over needs n >= 5");
            let mut g = bgpsdn_topology::Graph::new(scenario.n);
            for i in 2..scenario.n {
                for j in (i + 1)..scenario.n {
                    g.add_edge(i, j);
                }
            }
            g.add_edge(0, 2); // primary
            g.add_edge(0, 1); // origin — relay
            g.add_edge(1, 3); // relay — backup entry
            AsGraph::all_peer(&g, 65000)
        }
    };
    let mut timing = TimingConfig::with_mrai(scenario.mrai);
    timing.hold_time_secs = opts.hold_secs;
    timing.graceful_restart_secs = opts.graceful_restart_secs;
    let tp = plan(ag, PolicyMode::AllPermit, timing).expect("address plan");
    // The classic single-cluster tail layout goes through with_sdn_members
    // exactly as before (byte-identical artifacts); any other deployment
    // resolves a strategy against the topology and seed.
    let deployment = (!opts.default_deployment() && scenario.sdn_count > 0).then(|| {
        let name = if opts.strategy.is_empty() {
            "tail"
        } else {
            opts.strategy
        };
        super::deploy::DeploymentStrategy::by_name(name, opts.clusters.max(1), scenario.sdn_count)
            .unwrap_or_else(|| panic!("unknown deployment strategy `{name}`"))
    });
    if let Some(fp) = &opts.fault_plan {
        // Pre-flight the schedule: indices, edges, and hold-timer
        // detectability (router/link faults are invisible with hold 0).
        let horizon = fp.horizon();
        let members = match &deployment {
            Some(strategy) => {
                let mut flat: Vec<usize> = strategy
                    .assign(&tp.as_graph, scenario.seed)
                    .unwrap_or_else(|e| panic!("invalid cluster deployment: {e}"))
                    .into_iter()
                    .flatten()
                    .collect();
                flat.sort_unstable();
                flat
            }
            None => scenario.members(),
        };
        let report = fp.preflight(&tp, &members, horizon, u64::from(opts.hold_secs));
        assert!(
            report.ok(),
            "fault plan failed pre-flight:\n{}",
            report.render()
        );
    }
    let mut builder = NetworkBuilder::new(tp, scenario.seed)
        .with_recompute_delay(scenario.recompute_delay)
        .with_control_loss(scenario.control_loss);
    builder = match deployment {
        Some(strategy) => builder.with_deployment(strategy),
        None => builder.with_sdn_members(scenario.members()),
    };
    if let Some(model) = &opts.ctl_latency {
        builder = builder.with_ctl_latency(model.clone());
    }
    if opts.verification {
        builder = builder.with_verification();
    }
    let net = builder.build();
    let mut exp = Experiment::new(net);
    instrument(&mut exp.net.sim);

    let up = exp.start(PHASE_DEADLINE);
    assert!(up.converged, "bring-up did not converge");
    if let Some(note) = &opts.fault_note {
        exp.note(note.clone());
    }

    let origin = 0usize;
    let origin_prefix = exp.net.ases[origin].prefix;

    exp.mark_named(event_phase_name(event));
    let (audit_prefix, expect_gone) = match event {
        EventKind::Withdrawal => {
            exp.withdraw(origin, None);
            (origin_prefix, true)
        }
        EventKind::Announcement => {
            // A fresh /17 inside the origin's block: unknown to everyone.
            let (lo, _) = origin_prefix.split();
            exp.announce(origin, Some(lo));
            (lo, false)
        }
        EventKind::Failover => {
            // Fail the dual-homed origin's primary link (into clique AS 2);
            // the network must converge onto the longer backup via the
            // relay, exploring equal-length ghost paths on the way.
            exp.fail_edge(origin, 2);
            (origin_prefix, false)
        }
    };
    if let Some(plan) = &opts.fault_plan {
        plan.apply(&mut exp);
    }
    let report = exp.wait_converged(PHASE_DEADLINE);

    let audit_ok = match event {
        EventKind::Withdrawal => exp.prefix_fully_gone(audit_prefix) == expect_gone,
        EventKind::Announcement => exp.prefix_reachable_from_all(audit_prefix, origin),
        EventKind::Failover => {
            // AS 1 must still reach the origin prefix (via some 2-hop path).
            exp.prefix_reachable_from_all(audit_prefix, origin)
        }
    };

    let outcome = ScenarioOutcome {
        converged: report.converged,
        convergence: report.duration,
        collector_convergence: exp.collector_convergence(),
        updates: exp.updates_sent(),
        flow_mods: exp.flows_installed(),
        audit_ok,
    };
    exp.finish();
    (outcome, exp)
}

/// The phase name a routing event runs under in trace artifacts.
pub fn event_phase_name(event: EventKind) -> &'static str {
    match event {
        EventKind::Withdrawal => "withdrawal",
        EventKind::Announcement => "announcement",
        EventKind::Failover => "failover",
    }
}

/// Build, bring up and drive one clique experiment.
pub fn run_clique(scenario: &CliqueScenario, event: EventKind) -> ScenarioOutcome {
    run_clique_full(scenario, event).0
}

/// [`run_clique_full`] with the telemetry layer switched on: every trace
/// category enabled, wall-clock profiling spans collected, and the
/// experiment's phases closed out so `phase_snapshots()` holds one
/// metrics snapshot per phase (`bring-up`, then the event phase). The
/// returned experiment's simulator trace buffer holds the typed event
/// stream — ready for JSONL export (`bgpsdn run --trace-out`).
pub fn run_clique_traced(
    scenario: &CliqueScenario,
    event: EventKind,
) -> (ScenarioOutcome, Experiment) {
    run_clique_instrumented(scenario, event, |sim| {
        sim.trace_mut().enable_all();
        sim.set_profiling(true);
    })
}

/// Run `runs` seeded repetitions and collect the convergence durations —
/// one boxplot point of Figure 2.
pub fn clique_sweep_point(base: &CliqueScenario, event: EventKind, runs: u64) -> Vec<SimDuration> {
    (0..runs)
        .map(|r| {
            let scenario = CliqueScenario {
                seed: base.seed.wrapping_add(r * 7919),
                ..base.clone()
            };
            let out = run_clique(&scenario, event);
            assert!(out.converged, "run {r} did not converge");
            assert!(out.audit_ok, "run {r} failed its post-event audit");
            out.convergence
        })
        .collect()
}

/// Convenience: the `SimTime` horizon scenarios run within.
pub fn phase_deadline() -> SimTime {
    SimTime::ZERO + PHASE_DEADLINE
}

// ----------------------------------------------------------------------
// Table S7: scale run on a CAIDA-like tiered topology
// ----------------------------------------------------------------------

/// Parameters of a scale experiment (Table S7): a CAIDA-derived tiered AS
/// topology with the SDN cluster at tier-1, seeded with hundreds of
/// prefixes, then hit with a single-prefix update — the workload that
/// separates the controller's incremental dirty-set recompute from the
/// full-table baseline.
#[derive(Debug, Clone)]
pub struct ScaleScenario {
    /// Tier-1 AS count (full peer mesh; the cluster is taken from these).
    pub tier1: usize,
    /// Mid-tier provider count.
    pub mid: usize,
    /// Stub AS count — each stub seeds extra sub-prefixes.
    pub stubs: usize,
    /// How many tier-1 ASes are cluster members (`<= tier1`).
    pub cluster_size: usize,
    /// Extra /24 sub-prefixes each stub announces during the seeding phase.
    pub prefixes_per_stub: usize,
    /// eBGP MRAI.
    pub mrai: SimDuration,
    /// Controller delayed-recomputation window.
    pub recompute_delay: SimDuration,
    /// `true` runs the dirty-set incremental recompute; `false` forces the
    /// full-table baseline on every trigger.
    pub incremental: bool,
    /// Experiment seed (drives both topology synthesis and the simulator).
    pub seed: u64,
}

impl ScaleScenario {
    /// The Table S7 configuration: ~64 ASes, the whole tier-1 mesh
    /// centralized, a few hundred prefixes, MRAI 0 to keep runs tight.
    pub fn tbl_s7(seed: u64) -> ScaleScenario {
        ScaleScenario {
            tier1: 4,
            mid: 12,
            stubs: 48,
            cluster_size: 4,
            prefixes_per_stub: 4,
            mrai: SimDuration::ZERO,
            recompute_delay: SimDuration::from_millis(100),
            incremental: true,
            seed,
        }
    }

    /// Total AS count.
    pub fn n(&self) -> usize {
        self.tier1 + self.mid + self.stubs
    }

    /// AS indices of the stub tier (the prefix seeders).
    pub fn stub_indices(&self) -> std::ops::Range<usize> {
        self.tier1 + self.mid..self.n()
    }

    /// Prefixes the run tracks once seeded: every AS's own /16 plus the
    /// stub sub-prefixes.
    pub fn expected_prefixes(&self) -> usize {
        self.n() + self.stubs * self.prefixes_per_stub
    }

    fn synthesis_params(&self) -> caida::SynthesisParams {
        caida::SynthesisParams {
            tier1: self.tier1,
            mid: self.mid,
            stubs: self.stubs,
            ..caida::SynthesisParams::default()
        }
    }

    /// The `j`-th /24 inside stub `i`'s /16 block — the sub-prefixes the
    /// seeding phase announces (`j < prefixes_per_stub`) and the one extra
    /// the single-update phase adds (`j == prefixes_per_stub`).
    fn sub_prefix(base: Prefix, j: usize) -> Prefix {
        assert!(j < 256, "sub-prefix index {j} does not fit a /16 block");
        Prefix::new(Ipv4Addr::from(base.network_u32() + ((j as u32) << 8)), 24)
            .expect("aligned /24 inside the /16")
    }
}

/// What a scale run produced.
#[derive(Debug, Clone)]
pub struct ScaleOutcome {
    /// Whether every phase converged within the deadline.
    pub converged: bool,
    /// Prefixes seeded beyond the per-AS /16s.
    pub seeded_prefixes: usize,
    /// Convergence time of the seeding burst.
    pub seed_convergence: SimDuration,
    /// Convergence time of the single-prefix update after steady state.
    pub update_convergence: SimDuration,
    /// The prefix the single-update phase announced.
    pub update_prefix: Prefix,
    /// Whether that prefix became reachable from every AS.
    pub audit_ok: bool,
}

/// The phase name the single-prefix update runs under in trace artifacts
/// (what `tblS7_scale` filters `ControllerRecompute` events by).
pub const SCALE_UPDATE_PHASE: &str = "single-update";

/// Build, bring up and drive one scale experiment: synthesize the tiered
/// topology, centralize `cluster_size` tier-1 ASes, seed the stub
/// sub-prefixes, reach steady state, then announce one more prefix from
/// the first stub. Returns the outcome plus the still-inspectable
/// experiment (trace buffer, metrics snapshots per phase).
pub fn run_scale_instrumented(
    scenario: &ScaleScenario,
    instrument: impl FnOnce(&mut super::network::Sim),
) -> (ScaleOutcome, Experiment) {
    assert!(
        scenario.cluster_size <= scenario.tier1,
        "cluster must fit inside tier-1"
    );
    let mut topo_rng = SimRng::seed_from_u64(scenario.seed);
    let ag = caida::synthesize(&scenario.synthesis_params(), &mut topo_rng);
    let tp = plan(
        ag,
        PolicyMode::GaoRexford,
        TimingConfig::with_mrai(scenario.mrai),
    )
    .expect("address plan");
    let mut builder = NetworkBuilder::new(tp, scenario.seed)
        .with_sdn_members((0..scenario.cluster_size).collect::<Vec<_>>())
        .with_recompute_delay(scenario.recompute_delay);
    if !scenario.incremental {
        builder = builder.with_full_recompute();
    }
    let net = builder.build();
    let mut exp = Experiment::new(net);
    instrument(&mut exp.net.sim);

    let up = exp.start(PHASE_DEADLINE);
    assert!(up.converged, "scale bring-up did not converge");

    // Seeding: every stub announces its sub-prefixes in one burst.
    exp.mark_named("seeding");
    let mut seeded = 0usize;
    for i in scenario.stub_indices() {
        let base = exp.net.ases[i].prefix;
        for j in 0..scenario.prefixes_per_stub {
            exp.announce(i, Some(ScaleScenario::sub_prefix(base, j)));
            seeded += 1;
        }
    }
    let seed_report = exp.wait_converged(PHASE_DEADLINE);

    // Steady state reached; now the probe: one new prefix from one stub.
    let origin = scenario.stub_indices().start;
    let update_prefix =
        ScaleScenario::sub_prefix(exp.net.ases[origin].prefix, scenario.prefixes_per_stub);
    exp.mark_named(SCALE_UPDATE_PHASE);
    exp.announce(origin, Some(update_prefix));
    let update_report = exp.wait_converged(PHASE_DEADLINE);

    let audit_ok = exp.prefix_reachable_from_all(update_prefix, origin);
    let outcome = ScaleOutcome {
        converged: up.converged && seed_report.converged && update_report.converged,
        seeded_prefixes: seeded,
        seed_convergence: seed_report.duration,
        update_convergence: update_report.duration,
        update_prefix,
        audit_ok,
    };
    exp.finish();
    (outcome, exp)
}

/// Build, bring up and drive one scale experiment.
pub fn run_scale(scenario: &ScaleScenario) -> ScaleOutcome {
    run_scale_instrumented(scenario, |_| {}).0
}
