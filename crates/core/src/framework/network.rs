//! The hybrid network builder.
//!
//! Takes a [`TopologyPlan`] (annotated AS graph + addresses + per-AS router
//! configs) and a set of SDN member indices, and assembles the complete
//! simulation the paper's Figure 1 shows: legacy BGP routers on the left,
//! the SDN cluster (switches, cluster BGP speaker, IDR controller) on the
//! right, a route collector peering with every legacy router, and all the
//! links and relay/control wiring in between. "The framework automatically
//! assigns IP addresses and configures network devices" — this module is
//! that configuration management.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use bgpsdn_bgp::{Asn, BgpRouter, DampingConfig, NeighborConfig, Prefix, RouterId};
use bgpsdn_collector::RouteCollector;
use bgpsdn_netsim::{LatencyModel, LinkId, NodeId, SimDuration, Simulator};
use bgpsdn_sdn::{AliasSessionConfig, ClusterMsg, ClusterSpeaker, SdnSwitch};
use bgpsdn_topology::TopologyPlan;

use crate::controller::{ControllerConfig, IdrController, MemberConfig, SessionConfig};

use super::deploy::{validate_clusters, DeploymentStrategy};

/// Concrete node types instantiated by the framework.
pub type Router = BgpRouter<ClusterMsg>;
/// The switch type used by the framework.
pub type Switch = SdnSwitch<ClusterMsg>;
/// The speaker type used by the framework.
pub type Speaker = ClusterSpeaker<ClusterMsg>;
/// The controller type used by the framework.
pub type Controller = IdrController<ClusterMsg>;
/// The collector type used by the framework.
pub type Collector = RouteCollector<ClusterMsg>;
/// The simulator type used by the framework.
pub type Sim = Simulator<ClusterMsg>;

/// The collector's private ASN.
pub const COLLECTOR_ASN: Asn = Asn(64512);

/// Whether an AS runs legacy BGP or is a cluster member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsKind {
    /// Standard BGP router.
    Legacy,
    /// SDN cluster member (switch; sessions terminated by the speaker).
    SdnMember,
}

/// One AS in the built network.
#[derive(Debug, Clone)]
pub struct AsHandle {
    /// Index in the topology plan.
    pub index: usize,
    /// The simulator node emulating this AS.
    pub node: NodeId,
    /// Legacy or member.
    pub kind: AsKind,
    /// The AS number.
    pub asn: Asn,
    /// The prefix this AS originates.
    pub prefix: Prefix,
    /// The AS device's identity address.
    pub router_ip: Ipv4Addr,
}

/// One deployed SDN cluster: its control-plane triple plus membership.
#[derive(Debug, Clone)]
pub struct ClusterHandle {
    /// This cluster's BGP speaker node.
    pub speaker: NodeId,
    /// This cluster's IDR controller node.
    pub controller: NodeId,
    /// This cluster's controller↔speaker control channel.
    pub speaker_link: LinkId,
    /// Member AS indices, sorted ascending; positions are the cluster-local
    /// member indices the controller and speaker use.
    pub members: Vec<usize>,
}

/// A fully wired hybrid network, ready to run.
pub struct HybridNetwork {
    /// The simulator.
    pub sim: Sim,
    /// Per-AS handles, aligned with the plan's vertex indices.
    pub ases: Vec<AsHandle>,
    /// Inter-AS links, aligned with the plan's edge indices.
    pub edge_links: Vec<LinkId>,
    /// The first cluster's BGP speaker (present when there are members).
    /// Single-cluster shorthand for `clusters[0].speaker`.
    pub speaker: Option<NodeId>,
    /// The first cluster's IDR controller (present when there are members).
    /// Single-cluster shorthand for `clusters[0].controller`.
    pub controller: Option<NodeId>,
    /// The route collector (when enabled).
    pub collector: Option<NodeId>,
    /// The first cluster's controller↔speaker control channel.
    /// This is the link fault-injection targets: partitioning it or giving
    /// it loss exercises the reliable control protocol.
    pub speaker_link: Option<LinkId>,
    /// Every deployed cluster, in deployment order. Empty for a pure
    /// legacy network.
    pub clusters: Vec<ClusterHandle>,
    /// The topology plan the network was built from.
    pub plan: TopologyPlan,
    /// AS index → global member index (cluster-major order) for cluster
    /// members. With one cluster this is the member's index in the
    /// controller's configuration.
    pub member_index: BTreeMap<usize, usize>,
    /// AS index → owning cluster index for cluster members.
    pub cluster_of: BTreeMap<usize, usize>,
    /// Auto-run the static verifier at experiment checkpoints (after
    /// convergence waits and after each fault-plan action).
    pub auto_verify: bool,
}

impl HybridNetwork {
    /// The link between two AS indices, if adjacent in the plan.
    pub fn link_between(&self, a: usize, b: usize) -> Option<LinkId> {
        self.plan
            .as_graph
            .edges
            .iter()
            .position(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
            .map(|k| self.edge_links[k])
    }

    /// Handles of all legacy ASes.
    pub fn legacy(&self) -> impl Iterator<Item = &AsHandle> {
        self.ases.iter().filter(|a| a.kind == AsKind::Legacy)
    }

    /// Handles of all cluster members.
    pub fn members(&self) -> impl Iterator<Item = &AsHandle> {
        self.ases.iter().filter(|a| a.kind == AsKind::SdnMember)
    }

    /// Number of deployed clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The cluster handle owning an AS index, if it is a member.
    pub fn cluster_for(&self, as_index: usize) -> Option<&ClusterHandle> {
        self.cluster_of.get(&as_index).map(|&c| &self.clusters[c])
    }
}

/// Builder with the framework's configuration-management defaults.
pub struct NetworkBuilder {
    plan: TopologyPlan,
    clusters: Vec<Vec<usize>>,
    deployment: Option<DeploymentStrategy>,
    seed: u64,
    data_latency: Option<LatencyModel>,
    ctl_latency: LatencyModel,
    with_collector: bool,
    recompute_delay: SimDuration,
    edge_latencies: Option<Vec<SimDuration>>,
    incremental: bool,
    control_loss: f64,
    data_loss: f64,
    auto_verify: bool,
    damping: Option<DampingConfig>,
    preflight: bool,
}

impl NetworkBuilder {
    /// Start from a plan and an experiment seed.
    pub fn new(plan: TopologyPlan, seed: u64) -> Self {
        NetworkBuilder {
            plan,
            clusters: Vec::new(),
            deployment: None,
            seed,
            data_latency: None,
            ctl_latency: LatencyModel::Fixed(SimDuration::from_millis(1)),
            with_collector: true,
            recompute_delay: SimDuration::from_millis(100),
            edge_latencies: None,
            incremental: true,
            control_loss: 0.0,
            data_loss: 0.0,
            auto_verify: false,
            damping: None,
            preflight: true,
        }
    }

    /// Skip the static pre-flight analysis in [`build`](Self::build).
    /// Intended for experiments that deliberately construct unsafe or
    /// partitioned configurations (e.g. to observe an oscillation the
    /// analyzer would reject).
    pub fn without_preflight(mut self) -> Self {
        self.preflight = false;
        self
    }

    /// The pre-flight report [`build`](Self::build) will gate on: static
    /// policy safety of the plan plus cluster-membership and timer
    /// consistency. Inspect it without building anything.
    pub fn preflight(&self) -> bgpsdn_analyze::AnalysisReport {
        match self.resolved_clusters() {
            Ok(clusters) => super::preflight::check_plan_clusters(&self.plan, &clusters),
            Err(e) => super::preflight::deployment_error_report(&e),
        }
    }

    /// The cluster membership this builder will deploy, with any
    /// [`DeploymentStrategy`] resolved against the plan's topology.
    ///
    /// # Errors
    ///
    /// Propagates the strategy's fail-fast validation (infeasible budget,
    /// out-of-range or overlapping members).
    pub fn resolved_clusters(&self) -> Result<Vec<Vec<usize>>, String> {
        match &self.deployment {
            Some(strategy) => strategy.assign(&self.plan.as_graph, self.seed),
            None => {
                validate_clusters(&self.clusters, self.plan.as_graph.len())?;
                Ok(self.clusters.clone())
            }
        }
    }

    /// Enable RFC 2439 route-flap damping on every legacy router (the
    /// distributed ablation baseline to the controller's delayed
    /// recomputation).
    pub fn with_damping(mut self, cfg: DampingConfig) -> Self {
        self.damping = Some(cfg);
        self
    }

    /// Run the static data-plane verifier automatically at experiment
    /// checkpoints (after `wait_converged` and after each fault action).
    /// Violations are emitted as `VerifyViolation` trace events and
    /// `verify.*` counters; they never panic.
    pub fn with_verification(mut self) -> Self {
        self.auto_verify = true;
        self
    }

    /// Put these AS indices under centralized control, as one cluster.
    pub fn with_sdn_members(mut self, members: impl IntoIterator<Item = usize>) -> Self {
        let mut members: Vec<usize> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        self.deployment = None;
        self.clusters = if members.is_empty() {
            Vec::new()
        } else {
            vec![members]
        };
        self
    }

    /// Deploy several independent SDN clusters, one membership list each.
    /// Every cluster gets its own speaker, controller and control channel;
    /// edges between clusters run ordinary eBGP between the two speakers
    /// (each impersonating its border member). Lists are sorted and
    /// deduplicated; overlap across clusters fails the build.
    pub fn with_clusters(mut self, clusters: impl IntoIterator<Item = Vec<usize>>) -> Self {
        self.deployment = None;
        self.clusters = clusters
            .into_iter()
            .map(|mut members| {
                members.sort_unstable();
                members.dedup();
                members
            })
            .collect();
        self
    }

    /// Choose cluster membership through a [`DeploymentStrategy`], resolved
    /// against the plan's AS graph (and the experiment seed, for the random
    /// strategy) when the network is built.
    pub fn with_deployment(mut self, strategy: DeploymentStrategy) -> Self {
        self.deployment = Some(strategy);
        self
    }

    /// Override the inter-AS link latency model (default: 5 ms + up to 5 ms
    /// jitter).
    pub fn with_data_latency(mut self, model: LatencyModel) -> Self {
        self.data_latency = Some(model);
        self
    }

    /// Per-edge fixed latencies (e.g. from an iPlane-derived topology),
    /// aligned with the plan's edge order. Overrides the latency model.
    pub fn with_edge_latencies(mut self, latencies: Vec<SimDuration>) -> Self {
        assert_eq!(latencies.len(), self.plan.as_graph.edges.len());
        self.edge_latencies = Some(latencies);
        self
    }

    /// Disable the route collector.
    pub fn without_collector(mut self) -> Self {
        self.with_collector = false;
        self
    }

    /// Override the control-plane link latency model (relay, OF control and
    /// speaker↔controller links; default: fixed 1 ms).
    pub fn with_ctl_latency(mut self, model: LatencyModel) -> Self {
        self.ctl_latency = model;
        self
    }

    /// Random per-message loss probability on the speaker↔controller
    /// channel. The reliable control protocol must mask this; it is the
    /// knob the controller-outage experiments turn.
    pub fn with_control_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss));
        self.control_loss = loss;
        self
    }

    /// Random per-message loss probability on every inter-AS link.
    pub fn with_data_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss));
        self.data_loss = loss;
        self
    }

    /// Set the controller's delayed-recomputation window.
    pub fn with_recompute_delay(mut self, d: SimDuration) -> Self {
        self.recompute_delay = d;
        self
    }

    /// Disable incremental recomputation: the controller re-derives every
    /// prefix on every trigger. Used as the correctness oracle and as the
    /// scaling baseline in benchmarks.
    pub fn with_full_recompute(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// Assemble the network.
    ///
    /// # Panics
    ///
    /// Unless [`without_preflight`](Self::without_preflight) was called,
    /// panics with the analyzer's rendered report if the static pre-flight
    /// check finds any error (out-of-range cluster member, policy-unsafe
    /// provider hierarchy, cluster boundary conflict, inconsistent timers).
    pub fn build(self) -> HybridNetwork {
        let clusters = self
            .resolved_clusters()
            .unwrap_or_else(|e| panic!("invalid cluster deployment: {e}"));
        if self.preflight {
            let report = super::preflight::check_plan_clusters(&self.plan, &clusters);
            assert!(
                report.ok(),
                "pre-flight check failed (use without_preflight() to override):\n{}",
                report.render()
            );
        }
        let plan = self.plan;
        let n = plan.as_graph.len();
        validate_clusters(&clusters, n)
            .unwrap_or_else(|e| panic!("invalid cluster deployment: {e}"));
        let k = clusters.len();
        // Membership maps: global member indices run cluster-major, so a
        // single cluster reproduces the historical ascending-AS numbering.
        let mut member_index: BTreeMap<usize, usize> = BTreeMap::new();
        let mut cluster_of: BTreeMap<usize, usize> = BTreeMap::new();
        let mut local_index: BTreeMap<usize, usize> = BTreeMap::new();
        for (c, members) in clusters.iter().enumerate() {
            for (mi, &asi) in members.iter().enumerate() {
                let global = member_index.len();
                member_index.insert(asi, global);
                cluster_of.insert(asi, c);
                local_index.insert(asi, mi);
            }
        }
        // Pre-size the event heap: steady state carries roughly one in-flight
        // event per link (delivery or timer) plus per-node timers, so nodes +
        // links is a good floor that avoids growth reallocations mid-dispatch.
        let n_edges = plan.as_graph.edges.len();
        let n_members = member_index.len();
        let approx_nodes = n + 2 * k + 1; // ASes + per-cluster speaker/controller + collector
        let approx_links = n_edges + 2 * n_members + k.max(1) + n;
        let mut sim = Sim::with_event_capacity(self.seed, 2 * (approx_nodes + approx_links));

        // 1. AS nodes.
        let mut ases: Vec<AsHandle> = Vec::with_capacity(n);
        for i in 0..n {
            let asn = plan.as_graph.asns[i];
            let prefix = plan.addresses.as_prefixes[i];
            let router_ip = plan.addresses.router_ips[i];
            let (node, kind) = if member_index.contains_key(&i) {
                let node = sim.add_node(format!("sw{}", asn.0), |id| Switch::new(id, asn.0 as u64));
                (node, AsKind::SdnMember)
            } else {
                let mut cfg = plan.routers[i].clone();
                cfg.damping = self.damping.clone();
                let node = sim.add_node(format!("as{}", asn.0), |id| Router::new(id, cfg));
                (node, AsKind::Legacy)
            };
            ases.push(AsHandle {
                index: i,
                node,
                kind,
                asn,
                prefix,
                router_ip,
            });
        }

        // One speaker/controller pair per cluster. With a single cluster the
        // historical node names are kept so traces stay byte-identical.
        let mut ctl_nodes: Vec<(NodeId, NodeId)> = Vec::with_capacity(k);
        for c in 0..k {
            let (sname, cname) = if k == 1 {
                ("speaker".to_string(), "controller".to_string())
            } else {
                (format!("speaker{c}"), format!("controller{c}"))
            };
            let sp = sim.add_node(sname, Speaker::new);
            let ct = sim.add_node(cname, |id| {
                Controller::new(id, ControllerConfig::new(vec![], vec![], vec![], LinkId(0)))
            });
            ctl_nodes.push((sp, ct));
        }
        let collector = self.with_collector.then(|| {
            sim.add_node("collector", |id| {
                Collector::new(id, COLLECTOR_ASN, RouterId(1))
            })
        });

        // 2. Inter-AS links.
        let default_latency = self.data_latency.unwrap_or(LatencyModel::Jittered {
            base: SimDuration::from_millis(5),
            jitter: SimDuration::from_millis(5),
        });
        let mut edge_links = Vec::with_capacity(plan.as_graph.edges.len());
        for (k, e) in plan.as_graph.edges.iter().enumerate() {
            let latency = match &self.edge_latencies {
                Some(l) => LatencyModel::Fixed(l[k]),
                None => default_latency.clone(),
            };
            let link = sim.add_link(ases[e.a].node, ases[e.b].node, latency);
            if self.data_loss > 0.0 {
                sim.set_link_loss(link, self.data_loss);
            }
            edge_links.push(link);
        }

        // 3. Cluster wiring: relay links, control links, control channels —
        // one independent triple per cluster.
        let mut relay_links: BTreeMap<usize, LinkId> = BTreeMap::new(); // AS idx → link
        let mut ctl_links: BTreeMap<usize, LinkId> = BTreeMap::new(); // AS idx → link
        let mut cluster_handles: Vec<ClusterHandle> = Vec::with_capacity(k);
        for (c, members) in clusters.iter().enumerate() {
            let (speaker_node, controller_node) = ctl_nodes[c];
            for &asi in members {
                let relay = sim.add_link(speaker_node, ases[asi].node, self.ctl_latency.clone());
                relay_links.insert(asi, relay);
                let ctl = sim.add_link(controller_node, ases[asi].node, self.ctl_latency.clone());
                ctl_links.insert(asi, ctl);
            }
            let speaker_link =
                sim.add_link(controller_node, speaker_node, self.ctl_latency.clone());
            if self.control_loss > 0.0 {
                sim.set_link_loss(speaker_link, self.control_loss);
            }
            cluster_handles.push(ClusterHandle {
                speaker: speaker_node,
                controller: controller_node,
                speaker_link,
                members: members.clone(),
            });
        }

        // 4. Per-edge configuration. Alias sessions exist for edges
        // crossing a cluster boundary — toward the legacy world, or toward
        // another cluster (where both speakers impersonate their border
        // member and the session runs speaker↔speaker over the two border
        // switches' relays).
        let mut sessions: Vec<Vec<SessionConfig>> = vec![Vec::new(); k];
        for (ei, e) in plan.as_graph.edges.iter().enumerate() {
            let link = edge_links[ei];
            let (a, b) = (e.a, e.b);
            let a_cluster = cluster_of.get(&a).copied();
            let b_cluster = cluster_of.get(&b).copied();
            match (a_cluster, b_cluster) {
                (None, None) => {
                    // Legacy ↔ legacy: ordinary eBGP both ways.
                    let rel_a = e.relationship_from(a);
                    let (na, nb) = (ases[a].node, ases[b].node);
                    let (asn_a, asn_b) = (ases[a].asn, ases[b].asn);
                    sim.with_node::<Router, _>(na, |r| {
                        r.add_neighbor(NeighborConfig::new(nb, link, asn_b, rel_a));
                    });
                    sim.with_node::<Router, _>(nb, |r| {
                        r.add_neighbor(NeighborConfig::new(na, link, asn_a, rel_a.inverse()));
                    });
                }
                (None, Some(mc)) | (Some(mc), None) => {
                    // Legacy ↔ member: alias session via the member's
                    // cluster speaker.
                    let (legacy_i, member_i) = if a_cluster.is_none() { (a, b) } else { (b, a) };
                    let rel_legacy = e.relationship_from(legacy_i);
                    let (ln, mn) = (ases[legacy_i].node, ases[member_i].node);
                    let member_asn = ases[member_i].asn;
                    sim.with_node::<Router, _>(ln, |r| {
                        r.add_neighbor(NeighborConfig::new(mn, link, member_asn, rel_legacy));
                    });
                    let relay = relay_links[&member_i];
                    sim.with_node::<Switch, _>(mn, |s| {
                        s.add_relay(mn, relay);
                        s.add_relay(ln, link);
                    });
                    let speaker_node = cluster_handles[mc].speaker;
                    let legacy_asn = ases[legacy_i].asn;
                    let alias_id = RouterId::from_ip(ases[member_i].router_ip);
                    let alias_nh = ases[member_i].router_ip;
                    let sess_idx = sim.with_node::<Speaker, _>(speaker_node, |s| {
                        s.add_session(AliasSessionConfig {
                            alias: mn,
                            alias_asn: member_asn,
                            alias_router_id: alias_id,
                            alias_next_hop: alias_nh,
                            ext_peer: ln,
                            remote_asn: legacy_asn,
                            via_link: relay,
                        })
                    });
                    assert_eq!(sess_idx, sessions[mc].len(), "session order must align");
                    sessions[mc].push(SessionConfig {
                        member: local_index[&member_i],
                        ext_peer: ln,
                        ext_asn: legacy_asn,
                        ext_link: link,
                    });
                }
                (Some(ca), Some(cb)) if ca == cb => {
                    // Member ↔ member inside one cluster: intra-cluster
                    // link, wired into the controller config below; no BGP.
                }
                (Some(ca), Some(cb)) => {
                    // Inter-cluster boundary: each side's speaker runs an
                    // alias session as its border member, peering with the
                    // remote border switch like an external router. The
                    // switches relay by envelope destination, so the
                    // speaker↔speaker session transits both borders.
                    for (this_i, other_i, tc) in [(a, b, ca), (b, a, cb)] {
                        let (tn, on) = (ases[this_i].node, ases[other_i].node);
                        let relay = relay_links[&this_i];
                        sim.with_node::<Switch, _>(tn, |s| {
                            s.add_relay(tn, relay);
                            s.add_relay(on, link);
                        });
                        let speaker_node = cluster_handles[tc].speaker;
                        let (this_asn, other_asn) = (ases[this_i].asn, ases[other_i].asn);
                        let sess_idx = sim.with_node::<Speaker, _>(speaker_node, |s| {
                            s.add_session(AliasSessionConfig {
                                alias: tn,
                                alias_asn: this_asn,
                                alias_router_id: RouterId::from_ip(ases[this_i].router_ip),
                                alias_next_hop: ases[this_i].router_ip,
                                ext_peer: on,
                                remote_asn: other_asn,
                                via_link: relay,
                            })
                        });
                        assert_eq!(sess_idx, sessions[tc].len(), "session order must align");
                        sessions[tc].push(SessionConfig {
                            member: local_index[&this_i],
                            ext_peer: on,
                            ext_asn: other_asn,
                            ext_link: link,
                        });
                    }
                }
            }
        }

        // 5. Finalize per-cluster configuration.
        for (c, members) in clusters.iter().enumerate() {
            let handle = &cluster_handles[c];
            let speaker_link = handle.speaker_link;
            sim.with_node::<Speaker, _>(handle.speaker, |s| {
                s.set_controller_link(speaker_link);
            });
            for &asi in members {
                let ctl = ctl_links[&asi];
                sim.with_node::<Switch, _>(ases[asi].node, |s| {
                    s.set_controller_link(ctl);
                });
            }
            let member_cfgs: Vec<MemberConfig> = members
                .iter()
                .map(|&asi| MemberConfig {
                    switch: ases[asi].node,
                    asn: ases[asi].asn,
                    prefix: ases[asi].prefix,
                    ctl_link: ctl_links[&asi],
                })
                .collect();
            let intra: Vec<(usize, usize, LinkId)> = plan
                .as_graph
                .edges
                .iter()
                .enumerate()
                .filter_map(|(ei, e)| {
                    let (ca, cb) = (cluster_of.get(&e.a)?, cluster_of.get(&e.b)?);
                    if *ca != c || *cb != c {
                        return None;
                    }
                    Some((local_index[&e.a], local_index[&e.b], edge_links[ei]))
                })
                .collect();
            let mut cfg = ControllerConfig::new(
                member_cfgs,
                intra,
                std::mem::take(&mut sessions[c]),
                speaker_link,
            );
            cfg.recompute_delay = self.recompute_delay;
            cfg.incremental = self.incremental;
            sim.with_node::<Controller, _>(handle.controller, |ctrl| ctrl.set_config(cfg));
        }

        // 6. Collector peering with every legacy router.
        if let Some(collector_node) = collector {
            let legacy: Vec<usize> = (0..n).filter(|i| !member_index.contains_key(i)).collect();
            sim.with_node::<Collector, _>(collector_node, |c| {
                c.reserve_peers(legacy.len());
            });
            for i in legacy {
                let link = sim.add_link(ases[i].node, collector_node, self.ctl_latency.clone());
                let rn = ases[i].node;
                sim.with_node::<Router, _>(rn, |r| {
                    r.add_neighbor(NeighborConfig::monitor(collector_node, link, COLLECTOR_ASN));
                });
                let asn = ases[i].asn;
                sim.with_node::<Collector, _>(collector_node, |c| {
                    c.add_monitored(rn, asn, link);
                });
            }
        }

        let first = cluster_handles.first();
        HybridNetwork {
            speaker: first.map(|h| h.speaker),
            controller: first.map(|h| h.controller),
            speaker_link: first.map(|h| h.speaker_link),
            sim,
            ases,
            edge_links,
            collector,
            clusters: cluster_handles,
            plan,
            member_index,
            cluster_of,
            auto_verify: self.auto_verify,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsdn_bgp::{PolicyMode, TimingConfig};
    use bgpsdn_topology::{gen, plan, AsGraph};

    fn clique_plan(n: usize) -> TopologyPlan {
        plan(
            AsGraph::all_peer(&gen::clique(n), 65000),
            PolicyMode::AllPermit,
            TimingConfig::with_mrai(SimDuration::ZERO),
        )
        .unwrap()
    }

    #[test]
    fn pure_legacy_network_has_no_cluster() {
        let net = NetworkBuilder::new(clique_plan(4), 1).build();
        assert!(net.speaker.is_none());
        assert!(net.controller.is_none());
        assert!(net.collector.is_some());
        assert_eq!(net.ases.len(), 4);
        assert_eq!(net.edge_links.len(), 6);
        assert_eq!(net.legacy().count(), 4);
        // 6 AS links + 4 collector links.
        assert_eq!(net.sim.link_count(), 10);
    }

    #[test]
    fn hybrid_network_wires_cluster() {
        let net = NetworkBuilder::new(clique_plan(4), 1)
            .with_sdn_members([2, 3])
            .build();
        assert!(net.speaker.is_some());
        assert!(net.controller.is_some());
        assert_eq!(net.members().count(), 2);
        assert_eq!(net.legacy().count(), 2);
        assert_eq!(net.member_index[&2], 0);
        assert_eq!(net.member_index[&3], 1);
        // Links: 6 AS + 2 relay + 2 ctl + 1 speaker-ctl + 2 collector = 13.
        assert_eq!(net.sim.link_count(), 13);
        assert!(net.link_between(0, 1).is_some());
        assert!(net.link_between(0, 0).is_none());
    }

    #[test]
    #[should_panic]
    fn member_out_of_range_panics() {
        let _ = NetworkBuilder::new(clique_plan(3), 1)
            .with_sdn_members([7])
            .build();
    }

    #[test]
    fn two_clusters_get_independent_control_planes() {
        let net = NetworkBuilder::new(clique_plan(6), 1)
            .with_clusters([vec![0, 1], vec![4, 5]])
            .build();
        assert_eq!(net.cluster_count(), 2);
        assert_eq!(net.members().count(), 4);
        assert_ne!(net.clusters[0].controller, net.clusters[1].controller);
        assert_ne!(net.clusters[0].speaker_link, net.clusters[1].speaker_link);
        // The single-cluster shorthands alias cluster 0.
        assert_eq!(net.speaker, Some(net.clusters[0].speaker));
        assert_eq!(net.controller, Some(net.clusters[0].controller));
        // Global member indices run cluster-major.
        assert_eq!(net.member_index[&0], 0);
        assert_eq!(net.member_index[&5], 3);
        assert_eq!(net.cluster_of[&4], 1);
        assert_eq!(net.cluster_for(4).unwrap().members, vec![4, 5]);
        // Links: 15 AS edges + 2 clusters x (2 relay + 2 ctl + 1 channel)
        // + 2 collector links for the two legacy ASes.
        assert_eq!(net.sim.link_count(), 15 + 10 + 2);
    }

    #[test]
    fn deployment_strategy_resolves_at_build() {
        let net = NetworkBuilder::new(clique_plan(8), 3)
            .with_deployment(DeploymentStrategy::Tail {
                clusters: 2,
                total: 4,
            })
            .build();
        assert_eq!(net.cluster_count(), 2);
        assert_eq!(net.clusters[0].members, vec![4, 5]);
        assert_eq!(net.clusters[1].members, vec![6, 7]);
    }

    #[test]
    #[should_panic(expected = "invalid cluster deployment")]
    fn overlapping_clusters_panic() {
        let _ = NetworkBuilder::new(clique_plan(6), 1)
            .with_clusters([vec![0, 1], vec![1, 2]])
            .build();
    }
}
