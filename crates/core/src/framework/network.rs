//! The hybrid network builder.
//!
//! Takes a [`TopologyPlan`] (annotated AS graph + addresses + per-AS router
//! configs) and a set of SDN member indices, and assembles the complete
//! simulation the paper's Figure 1 shows: legacy BGP routers on the left,
//! the SDN cluster (switches, cluster BGP speaker, IDR controller) on the
//! right, a route collector peering with every legacy router, and all the
//! links and relay/control wiring in between. "The framework automatically
//! assigns IP addresses and configures network devices" — this module is
//! that configuration management.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use bgpsdn_bgp::{Asn, BgpRouter, DampingConfig, NeighborConfig, Prefix, RouterId};
use bgpsdn_collector::RouteCollector;
use bgpsdn_netsim::{LatencyModel, LinkId, NodeId, SimDuration, Simulator};
use bgpsdn_sdn::{AliasSessionConfig, ClusterMsg, ClusterSpeaker, SdnSwitch};
use bgpsdn_topology::TopologyPlan;

use crate::controller::{ControllerConfig, IdrController, MemberConfig, SessionConfig};

/// Concrete node types instantiated by the framework.
pub type Router = BgpRouter<ClusterMsg>;
/// The switch type used by the framework.
pub type Switch = SdnSwitch<ClusterMsg>;
/// The speaker type used by the framework.
pub type Speaker = ClusterSpeaker<ClusterMsg>;
/// The controller type used by the framework.
pub type Controller = IdrController<ClusterMsg>;
/// The collector type used by the framework.
pub type Collector = RouteCollector<ClusterMsg>;
/// The simulator type used by the framework.
pub type Sim = Simulator<ClusterMsg>;

/// The collector's private ASN.
pub const COLLECTOR_ASN: Asn = Asn(64512);

/// Whether an AS runs legacy BGP or is a cluster member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsKind {
    /// Standard BGP router.
    Legacy,
    /// SDN cluster member (switch; sessions terminated by the speaker).
    SdnMember,
}

/// One AS in the built network.
#[derive(Debug, Clone)]
pub struct AsHandle {
    /// Index in the topology plan.
    pub index: usize,
    /// The simulator node emulating this AS.
    pub node: NodeId,
    /// Legacy or member.
    pub kind: AsKind,
    /// The AS number.
    pub asn: Asn,
    /// The prefix this AS originates.
    pub prefix: Prefix,
    /// The AS device's identity address.
    pub router_ip: Ipv4Addr,
}

/// A fully wired hybrid network, ready to run.
pub struct HybridNetwork {
    /// The simulator.
    pub sim: Sim,
    /// Per-AS handles, aligned with the plan's vertex indices.
    pub ases: Vec<AsHandle>,
    /// Inter-AS links, aligned with the plan's edge indices.
    pub edge_links: Vec<LinkId>,
    /// The cluster BGP speaker (present when there are members).
    pub speaker: Option<NodeId>,
    /// The IDR controller (present when there are members).
    pub controller: Option<NodeId>,
    /// The route collector (when enabled).
    pub collector: Option<NodeId>,
    /// The controller↔speaker control channel (present with a cluster).
    /// This is the link fault-injection targets: partitioning it or giving
    /// it loss exercises the reliable control protocol.
    pub speaker_link: Option<LinkId>,
    /// The topology plan the network was built from.
    pub plan: TopologyPlan,
    /// AS index → member index for cluster members.
    pub member_index: BTreeMap<usize, usize>,
    /// Auto-run the static verifier at experiment checkpoints (after
    /// convergence waits and after each fault-plan action).
    pub auto_verify: bool,
}

impl HybridNetwork {
    /// The link between two AS indices, if adjacent in the plan.
    pub fn link_between(&self, a: usize, b: usize) -> Option<LinkId> {
        self.plan
            .as_graph
            .edges
            .iter()
            .position(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
            .map(|k| self.edge_links[k])
    }

    /// Handles of all legacy ASes.
    pub fn legacy(&self) -> impl Iterator<Item = &AsHandle> {
        self.ases.iter().filter(|a| a.kind == AsKind::Legacy)
    }

    /// Handles of all cluster members.
    pub fn members(&self) -> impl Iterator<Item = &AsHandle> {
        self.ases.iter().filter(|a| a.kind == AsKind::SdnMember)
    }
}

/// Builder with the framework's configuration-management defaults.
pub struct NetworkBuilder {
    plan: TopologyPlan,
    sdn_members: Vec<usize>,
    seed: u64,
    data_latency: Option<LatencyModel>,
    ctl_latency: LatencyModel,
    with_collector: bool,
    recompute_delay: SimDuration,
    edge_latencies: Option<Vec<SimDuration>>,
    incremental: bool,
    control_loss: f64,
    data_loss: f64,
    auto_verify: bool,
    damping: Option<DampingConfig>,
    preflight: bool,
}

impl NetworkBuilder {
    /// Start from a plan and an experiment seed.
    pub fn new(plan: TopologyPlan, seed: u64) -> Self {
        NetworkBuilder {
            plan,
            sdn_members: Vec::new(),
            seed,
            data_latency: None,
            ctl_latency: LatencyModel::Fixed(SimDuration::from_millis(1)),
            with_collector: true,
            recompute_delay: SimDuration::from_millis(100),
            edge_latencies: None,
            incremental: true,
            control_loss: 0.0,
            data_loss: 0.0,
            auto_verify: false,
            damping: None,
            preflight: true,
        }
    }

    /// Skip the static pre-flight analysis in [`build`](Self::build).
    /// Intended for experiments that deliberately construct unsafe or
    /// partitioned configurations (e.g. to observe an oscillation the
    /// analyzer would reject).
    pub fn without_preflight(mut self) -> Self {
        self.preflight = false;
        self
    }

    /// The pre-flight report [`build`](Self::build) will gate on: static
    /// policy safety of the plan plus cluster-membership and timer
    /// consistency. Inspect it without building anything.
    pub fn preflight(&self) -> bgpsdn_analyze::AnalysisReport {
        super::preflight::check_plan(&self.plan, &self.sdn_members)
    }

    /// Enable RFC 2439 route-flap damping on every legacy router (the
    /// distributed ablation baseline to the controller's delayed
    /// recomputation).
    pub fn with_damping(mut self, cfg: DampingConfig) -> Self {
        self.damping = Some(cfg);
        self
    }

    /// Run the static data-plane verifier automatically at experiment
    /// checkpoints (after `wait_converged` and after each fault action).
    /// Violations are emitted as `VerifyViolation` trace events and
    /// `verify.*` counters; they never panic.
    pub fn with_verification(mut self) -> Self {
        self.auto_verify = true;
        self
    }

    /// Put these AS indices under centralized control.
    pub fn with_sdn_members(mut self, members: impl IntoIterator<Item = usize>) -> Self {
        self.sdn_members = members.into_iter().collect();
        self.sdn_members.sort_unstable();
        self.sdn_members.dedup();
        self
    }

    /// Override the inter-AS link latency model (default: 5 ms + up to 5 ms
    /// jitter).
    pub fn with_data_latency(mut self, model: LatencyModel) -> Self {
        self.data_latency = Some(model);
        self
    }

    /// Per-edge fixed latencies (e.g. from an iPlane-derived topology),
    /// aligned with the plan's edge order. Overrides the latency model.
    pub fn with_edge_latencies(mut self, latencies: Vec<SimDuration>) -> Self {
        assert_eq!(latencies.len(), self.plan.as_graph.edges.len());
        self.edge_latencies = Some(latencies);
        self
    }

    /// Disable the route collector.
    pub fn without_collector(mut self) -> Self {
        self.with_collector = false;
        self
    }

    /// Override the control-plane link latency model (relay, OF control and
    /// speaker↔controller links; default: fixed 1 ms).
    pub fn with_ctl_latency(mut self, model: LatencyModel) -> Self {
        self.ctl_latency = model;
        self
    }

    /// Random per-message loss probability on the speaker↔controller
    /// channel. The reliable control protocol must mask this; it is the
    /// knob the controller-outage experiments turn.
    pub fn with_control_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss));
        self.control_loss = loss;
        self
    }

    /// Random per-message loss probability on every inter-AS link.
    pub fn with_data_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss));
        self.data_loss = loss;
        self
    }

    /// Set the controller's delayed-recomputation window.
    pub fn with_recompute_delay(mut self, d: SimDuration) -> Self {
        self.recompute_delay = d;
        self
    }

    /// Disable incremental recomputation: the controller re-derives every
    /// prefix on every trigger. Used as the correctness oracle and as the
    /// scaling baseline in benchmarks.
    pub fn with_full_recompute(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// Assemble the network.
    ///
    /// # Panics
    ///
    /// Unless [`without_preflight`](Self::without_preflight) was called,
    /// panics with the analyzer's rendered report if the static pre-flight
    /// check finds any error (out-of-range cluster member, policy-unsafe
    /// provider hierarchy, cluster boundary conflict, inconsistent timers).
    pub fn build(self) -> HybridNetwork {
        if self.preflight {
            let report = self.preflight();
            assert!(
                report.ok(),
                "pre-flight check failed (use without_preflight() to override):\n{}",
                report.render()
            );
        }
        let plan = self.plan;
        let n = plan.as_graph.len();
        for &m in &self.sdn_members {
            assert!(m < n, "SDN member index {m} out of range");
        }
        // Pre-size the event heap: steady state carries roughly one in-flight
        // event per link (delivery or timer) plus per-node timers, so nodes +
        // links is a good floor that avoids growth reallocations mid-dispatch.
        let n_edges = plan.as_graph.edges.len();
        let n_members = self.sdn_members.len();
        let approx_nodes = n + 3; // ASes + speaker + controller + collector
        let approx_links = n_edges + 2 * n_members + 1 + n;
        let mut sim = Sim::with_event_capacity(self.seed, 2 * (approx_nodes + approx_links));
        let member_index: BTreeMap<usize, usize> = self
            .sdn_members
            .iter()
            .enumerate()
            .map(|(mi, &asi)| (asi, mi))
            .collect();

        // 1. AS nodes.
        let mut ases: Vec<AsHandle> = Vec::with_capacity(n);
        for i in 0..n {
            let asn = plan.as_graph.asns[i];
            let prefix = plan.addresses.as_prefixes[i];
            let router_ip = plan.addresses.router_ips[i];
            let (node, kind) = if member_index.contains_key(&i) {
                let node = sim.add_node(format!("sw{}", asn.0), |id| Switch::new(id, asn.0 as u64));
                (node, AsKind::SdnMember)
            } else {
                let mut cfg = plan.routers[i].clone();
                cfg.damping = self.damping.clone();
                let node = sim.add_node(format!("as{}", asn.0), |id| Router::new(id, cfg));
                (node, AsKind::Legacy)
            };
            ases.push(AsHandle {
                index: i,
                node,
                kind,
                asn,
                prefix,
                router_ip,
            });
        }

        let have_cluster = !self.sdn_members.is_empty();
        let speaker = have_cluster.then(|| sim.add_node("speaker", Speaker::new));
        let controller = have_cluster.then(|| {
            sim.add_node("controller", |id| {
                Controller::new(id, ControllerConfig::new(vec![], vec![], vec![], LinkId(0)))
            })
        });
        let collector = self.with_collector.then(|| {
            sim.add_node("collector", |id| {
                Collector::new(id, COLLECTOR_ASN, RouterId(1))
            })
        });

        // 2. Inter-AS links.
        let default_latency = self.data_latency.unwrap_or(LatencyModel::Jittered {
            base: SimDuration::from_millis(5),
            jitter: SimDuration::from_millis(5),
        });
        let mut edge_links = Vec::with_capacity(plan.as_graph.edges.len());
        for (k, e) in plan.as_graph.edges.iter().enumerate() {
            let latency = match &self.edge_latencies {
                Some(l) => LatencyModel::Fixed(l[k]),
                None => default_latency.clone(),
            };
            let link = sim.add_link(ases[e.a].node, ases[e.b].node, latency);
            if self.data_loss > 0.0 {
                sim.set_link_loss(link, self.data_loss);
            }
            edge_links.push(link);
        }

        // 3. Cluster wiring: relay links, control links, sessions.
        let mut relay_links: BTreeMap<usize, LinkId> = BTreeMap::new(); // member idx → link
        let mut ctl_links: BTreeMap<usize, LinkId> = BTreeMap::new();
        let mut speaker_link = LinkId(0);
        if let (Some(speaker_node), Some(controller_node)) = (speaker, controller) {
            for (&asi, &mi) in &member_index {
                let relay = sim.add_link(speaker_node, ases[asi].node, self.ctl_latency.clone());
                relay_links.insert(mi, relay);
                let ctl = sim.add_link(controller_node, ases[asi].node, self.ctl_latency.clone());
                ctl_links.insert(mi, ctl);
            }
            speaker_link = sim.add_link(controller_node, speaker_node, self.ctl_latency.clone());
            if self.control_loss > 0.0 {
                sim.set_link_loss(speaker_link, self.control_loss);
            }
        }

        // 4. Per-edge configuration. Alias sessions exist only for edges
        // crossing the cluster boundary; count them so the vector is built
        // in one allocation.
        let crossing = plan
            .as_graph
            .edges
            .iter()
            .filter(|e| member_index.contains_key(&e.a) != member_index.contains_key(&e.b))
            .count();
        let mut sessions: Vec<SessionConfig> = Vec::with_capacity(crossing);
        for (k, e) in plan.as_graph.edges.iter().enumerate() {
            let link = edge_links[k];
            let (a, b) = (e.a, e.b);
            let a_member = member_index.get(&a).copied();
            let b_member = member_index.get(&b).copied();
            match (a_member, b_member) {
                (None, None) => {
                    // Legacy ↔ legacy: ordinary eBGP both ways.
                    let rel_a = e.relationship_from(a);
                    let (na, nb) = (ases[a].node, ases[b].node);
                    let (asn_a, asn_b) = (ases[a].asn, ases[b].asn);
                    sim.with_node::<Router, _>(na, |r| {
                        r.add_neighbor(NeighborConfig::new(nb, link, asn_b, rel_a));
                    });
                    sim.with_node::<Router, _>(nb, |r| {
                        r.add_neighbor(NeighborConfig::new(na, link, asn_a, rel_a.inverse()));
                    });
                }
                (None, Some(mb)) | (Some(mb), None) => {
                    // Legacy ↔ member: alias session via the speaker.
                    let (legacy_i, member_i, member_mi) = if a_member.is_none() {
                        (a, b, mb)
                    } else {
                        (b, a, mb)
                    };
                    let rel_legacy = e.relationship_from(legacy_i);
                    let (ln, mn) = (ases[legacy_i].node, ases[member_i].node);
                    let member_asn = ases[member_i].asn;
                    sim.with_node::<Router, _>(ln, |r| {
                        r.add_neighbor(NeighborConfig::new(mn, link, member_asn, rel_legacy));
                    });
                    let relay = relay_links[&member_mi];
                    sim.with_node::<Switch, _>(mn, |s| {
                        s.add_relay(mn, relay);
                        s.add_relay(ln, link);
                    });
                    let speaker_node = speaker.expect("members imply a speaker");
                    let legacy_asn = ases[legacy_i].asn;
                    let alias_id = RouterId::from_ip(ases[member_i].router_ip);
                    let alias_nh = ases[member_i].router_ip;
                    let sess_idx = sim.with_node::<Speaker, _>(speaker_node, |s| {
                        s.add_session(AliasSessionConfig {
                            alias: mn,
                            alias_asn: member_asn,
                            alias_router_id: alias_id,
                            alias_next_hop: alias_nh,
                            ext_peer: ln,
                            remote_asn: legacy_asn,
                            via_link: relay,
                        })
                    });
                    assert_eq!(sess_idx, sessions.len(), "session order must align");
                    sessions.push(SessionConfig {
                        member: member_mi,
                        ext_peer: ln,
                        ext_asn: legacy_asn,
                        ext_link: link,
                    });
                }
                (Some(_), Some(_)) => {
                    // Member ↔ member: intra-cluster link, wired into the
                    // controller config below; no BGP.
                }
            }
        }

        // 5. Finalize cluster configuration.
        if let (Some(speaker_node), Some(controller_node)) = (speaker, controller) {
            sim.with_node::<Speaker, _>(speaker_node, |s| {
                s.set_controller_link(speaker_link);
            });
            for (&asi, &mi) in &member_index {
                let ctl = ctl_links[&mi];
                sim.with_node::<Switch, _>(ases[asi].node, |s| {
                    s.set_controller_link(ctl);
                });
            }
            let members: Vec<MemberConfig> = self
                .sdn_members
                .iter()
                .enumerate()
                .map(|(mi, &asi)| MemberConfig {
                    switch: ases[asi].node,
                    asn: ases[asi].asn,
                    prefix: ases[asi].prefix,
                    ctl_link: ctl_links[&mi],
                })
                .collect();
            let intra: Vec<(usize, usize, LinkId)> = plan
                .as_graph
                .edges
                .iter()
                .enumerate()
                .filter_map(|(k, e)| {
                    let ma = member_index.get(&e.a)?;
                    let mb = member_index.get(&e.b)?;
                    Some((*ma, *mb, edge_links[k]))
                })
                .collect();
            let mut cfg = ControllerConfig::new(members, intra, sessions, speaker_link);
            cfg.recompute_delay = self.recompute_delay;
            cfg.incremental = self.incremental;
            sim.with_node::<Controller, _>(controller_node, |c| c.set_config(cfg));
        }

        // 6. Collector peering with every legacy router.
        if let Some(collector_node) = collector {
            let legacy: Vec<usize> = (0..n).filter(|i| !member_index.contains_key(i)).collect();
            sim.with_node::<Collector, _>(collector_node, |c| {
                c.reserve_peers(legacy.len());
            });
            for i in legacy {
                let link = sim.add_link(ases[i].node, collector_node, self.ctl_latency.clone());
                let rn = ases[i].node;
                sim.with_node::<Router, _>(rn, |r| {
                    r.add_neighbor(NeighborConfig::monitor(collector_node, link, COLLECTOR_ASN));
                });
                let asn = ases[i].asn;
                sim.with_node::<Collector, _>(collector_node, |c| {
                    c.add_monitored(rn, asn, link);
                });
            }
        }

        HybridNetwork {
            sim,
            ases,
            edge_links,
            speaker,
            controller,
            collector,
            speaker_link: have_cluster.then_some(speaker_link),
            plan,
            member_index,
            auto_verify: self.auto_verify,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsdn_bgp::{PolicyMode, TimingConfig};
    use bgpsdn_topology::{gen, plan, AsGraph};

    fn clique_plan(n: usize) -> TopologyPlan {
        plan(
            AsGraph::all_peer(&gen::clique(n), 65000),
            PolicyMode::AllPermit,
            TimingConfig::with_mrai(SimDuration::ZERO),
        )
        .unwrap()
    }

    #[test]
    fn pure_legacy_network_has_no_cluster() {
        let net = NetworkBuilder::new(clique_plan(4), 1).build();
        assert!(net.speaker.is_none());
        assert!(net.controller.is_none());
        assert!(net.collector.is_some());
        assert_eq!(net.ases.len(), 4);
        assert_eq!(net.edge_links.len(), 6);
        assert_eq!(net.legacy().count(), 4);
        // 6 AS links + 4 collector links.
        assert_eq!(net.sim.link_count(), 10);
    }

    #[test]
    fn hybrid_network_wires_cluster() {
        let net = NetworkBuilder::new(clique_plan(4), 1)
            .with_sdn_members([2, 3])
            .build();
        assert!(net.speaker.is_some());
        assert!(net.controller.is_some());
        assert_eq!(net.members().count(), 2);
        assert_eq!(net.legacy().count(), 2);
        assert_eq!(net.member_index[&2], 0);
        assert_eq!(net.member_index[&3], 1);
        // Links: 6 AS + 2 relay + 2 ctl + 1 speaker-ctl + 2 collector = 13.
        assert_eq!(net.sim.link_count(), 13);
        assert!(net.link_between(0, 1).is_some());
        assert!(net.link_between(0, 0).is_none());
    }

    #[test]
    #[should_panic]
    fn member_out_of_range_panics() {
        let _ = NetworkBuilder::new(clique_plan(3), 1)
            .with_sdn_members([7])
            .build();
    }
}
