//! Seeded chaos schedules for the control plane.
//!
//! A [`FaultPlan`] is a time-ordered list of control-plane faults —
//! controller crashes/restarts and control-channel partitions/heals — that
//! replays deterministically against an [`Experiment`]. The
//! [`FaultPlan::chaos`] constructor derives a random-looking but fully
//! seeded schedule, so robustness tests and benchmarks can explore many
//! outage patterns while staying reproducible event-for-event.

use bgpsdn_netsim::{SimDuration, SimTime};

use super::experiment::Experiment;

/// One injectable control-plane fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash the IDR controller.
    CrashController,
    /// Restart a crashed controller.
    RestoreController,
    /// Partition the speaker↔controller channel.
    PartitionControlChannel,
    /// Heal a control-channel partition.
    HealControlChannel,
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::CrashController => write!(f, "crash controller"),
            FaultAction::RestoreController => write!(f, "restore controller"),
            FaultAction::PartitionControlChannel => write!(f, "partition control channel"),
            FaultAction::HealControlChannel => write!(f, "heal control channel"),
        }
    }
}

/// A deterministic schedule of control-plane faults, with offsets relative
/// to the moment [`FaultPlan::apply`] is called.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(offset, fault)` pairs; applied in offset order.
    pub events: Vec<(SimDuration, FaultAction)>,
}

impl FaultPlan {
    /// Empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add a fault at an offset from the plan's application time.
    pub fn at(mut self, offset: SimDuration, action: FaultAction) -> Self {
        self.events.push((offset, action));
        self
    }

    /// A seeded chaos schedule: `outages` paired down/up faults placed
    /// within `horizon`. Each outage independently picks its start, a
    /// duration between 5% and 25% of the horizon, and whether it is a
    /// controller crash or a channel partition. The same seed always yields
    /// the same schedule; outages may overlap (the underlying admin
    /// operations are idempotent).
    pub fn chaos(seed: u64, horizon: SimDuration, outages: usize) -> FaultPlan {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let span = horizon.as_nanos().max(1);
        let mut events = Vec::with_capacity(outages * 2);
        for _ in 0..outages {
            let start = next() % span;
            let dur = span / 20 + next() % (span / 5).max(1);
            let (down, up) = if next() & 1 == 1 {
                (
                    FaultAction::PartitionControlChannel,
                    FaultAction::HealControlChannel,
                )
            } else {
                (FaultAction::CrashController, FaultAction::RestoreController)
            };
            events.push((SimDuration::from_nanos(start), down));
            events.push((SimDuration::from_nanos(start.saturating_add(dur)), up));
        }
        events.sort_by_key(|(at, _)| *at);
        FaultPlan { events }
    }

    /// The offset of the last event, i.e. the schedule's length.
    pub fn horizon(&self) -> SimDuration {
        self.events
            .iter()
            .map(|(at, _)| *at)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Replay the plan: advance the simulation to each fault's time (in
    /// offset order, relative to now) and inject it. Returns the absolute
    /// time of the last fault.
    pub fn apply(&self, exp: &mut Experiment) -> SimTime {
        let mut events = self.events.clone();
        events.sort_by_key(|(at, _)| *at);
        let base = exp.net.sim.now();
        for (offset, action) in events {
            let target = base + offset;
            if target > exp.net.sim.now() {
                exp.net.sim.run_until(target);
            }
            match action {
                FaultAction::CrashController => exp.crash_controller(),
                FaultAction::RestoreController => exp.restore_controller(),
                FaultAction::PartitionControlChannel => exp.partition_control_channel(),
                FaultAction::HealControlChannel => exp.heal_control_channel(),
            }
            exp.auto_verify_checkpoint();
        }
        base + self.horizon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_is_deterministic_and_paired() {
        let a = FaultPlan::chaos(42, SimDuration::from_secs(60), 4);
        let b = FaultPlan::chaos(42, SimDuration::from_secs(60), 4);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.events.len(), 8, "each outage is a down/up pair");
        let downs = a
            .events
            .iter()
            .filter(|(_, f)| {
                matches!(
                    f,
                    FaultAction::CrashController | FaultAction::PartitionControlChannel
                )
            })
            .count();
        assert_eq!(downs, 4);
        assert!(a.events.windows(2).all(|w| w[0].0 <= w[1].0), "sorted");

        let c = FaultPlan::chaos(43, SimDuration::from_secs(60), 4);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn builder_orders_by_offset_at_apply_time() {
        let plan = FaultPlan::new()
            .at(SimDuration::from_secs(9), FaultAction::RestoreController)
            .at(SimDuration::from_secs(3), FaultAction::CrashController);
        assert_eq!(plan.horizon(), SimDuration::from_secs(9));
        assert_eq!(plan.events.len(), 2);
    }
}
