//! Seeded chaos schedules for the control plane and the data plane.
//!
//! A [`FaultPlan`] is a time-ordered list of faults — controller
//! crashes/restarts, control-channel partitions/heals, router
//! crashes/restarts, data-link flaps and keepalive-loss windows — that
//! replays deterministically against an [`Experiment`]. The
//! [`FaultPlan::chaos`] constructor derives a control-plane-only schedule
//! (unchanged since PR 5, so existing seeds stay byte-identical);
//! [`FaultPlan::chaos_mixed`] extends it with router and link fault
//! classes so *every* campaign cell, including the pure-BGP baseline,
//! runs under chaos.

use bgpsdn_netsim::{SimDuration, SimTime};

use super::experiment::Experiment;

/// One injectable fault. AS arguments are topology indices (the same
/// indices `CliqueScenario`/`ScaleScenario` use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash the IDR controller.
    CrashController,
    /// Restart a crashed controller.
    RestoreController,
    /// Partition the speaker↔controller channel.
    PartitionControlChannel,
    /// Heal a control-channel partition.
    HealControlChannel,
    /// Crash the router device of one AS (it stops processing; peers'
    /// hold timers expire).
    CrashRouter(usize),
    /// Restore a crashed router (cold start + full re-advertisement).
    RestoreRouter(usize),
    /// Take the data link between two ASes down.
    FailEdge(usize, usize),
    /// Bring a failed data link back up.
    RestoreEdge(usize, usize),
    /// Silently drop all traffic on the link between two ASes (100% loss:
    /// keepalives die but the link stays administratively up, so only the
    /// hold timer can notice).
    DropEdgeTraffic(usize, usize),
    /// End a traffic-drop window (loss back to 0).
    RestoreEdgeTraffic(usize, usize),
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::CrashController => write!(f, "crash controller"),
            FaultAction::RestoreController => write!(f, "restore controller"),
            FaultAction::PartitionControlChannel => write!(f, "partition control channel"),
            FaultAction::HealControlChannel => write!(f, "heal control channel"),
            FaultAction::CrashRouter(i) => write!(f, "crash router AS{i}"),
            FaultAction::RestoreRouter(i) => write!(f, "restore router AS{i}"),
            FaultAction::FailEdge(a, b) => write!(f, "fail edge AS{a}-AS{b}"),
            FaultAction::RestoreEdge(a, b) => write!(f, "restore edge AS{a}-AS{b}"),
            FaultAction::DropEdgeTraffic(a, b) => write!(f, "drop traffic AS{a}-AS{b}"),
            FaultAction::RestoreEdgeTraffic(a, b) => write!(f, "restore traffic AS{a}-AS{b}"),
        }
    }
}

/// Which fault classes a chaos schedule may draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultClasses {
    /// Controller crashes and control-channel partitions.
    pub control: bool,
    /// Router (AS device) crashes.
    pub router: bool,
    /// Data-link flaps and keepalive-loss windows.
    pub link: bool,
}

impl FaultClasses {
    /// Everything enabled.
    pub const ALL: FaultClasses = FaultClasses {
        control: true,
        router: true,
        link: true,
    };
    /// Control-plane faults only (the pre-PR-8 behaviour).
    pub const CONTROL_ONLY: FaultClasses = FaultClasses {
        control: true,
        router: false,
        link: false,
    };
    /// Router and link faults only — what a pure-BGP cell (no SDN cluster)
    /// can meaningfully run.
    pub const DATA_PLANE: FaultClasses = FaultClasses {
        control: false,
        router: true,
        link: true,
    };
}

/// A deterministic schedule of control-plane faults, with offsets relative
/// to the moment [`FaultPlan::apply`] is called.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(offset, fault)` pairs; applied in offset order.
    pub events: Vec<(SimDuration, FaultAction)>,
}

impl FaultPlan {
    /// Empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add a fault at an offset from the plan's application time.
    pub fn at(mut self, offset: SimDuration, action: FaultAction) -> Self {
        self.events.push((offset, action));
        self
    }

    /// A seeded chaos schedule: `outages` paired down/up faults placed
    /// within `horizon`. Each outage independently picks its start, a
    /// duration between 5% and 25% of the horizon, and whether it is a
    /// controller crash or a channel partition. The same seed always yields
    /// the same schedule; outages may overlap (the underlying admin
    /// operations are idempotent).
    pub fn chaos(seed: u64, horizon: SimDuration, outages: usize) -> FaultPlan {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let span = horizon.as_nanos().max(1);
        let mut events = Vec::with_capacity(outages * 2);
        for _ in 0..outages {
            let start = next() % span;
            let dur = span / 20 + next() % (span / 5).max(1);
            let (down, up) = if next() & 1 == 1 {
                (
                    FaultAction::PartitionControlChannel,
                    FaultAction::HealControlChannel,
                )
            } else {
                (FaultAction::CrashController, FaultAction::RestoreController)
            };
            events.push((SimDuration::from_nanos(start), down));
            events.push((SimDuration::from_nanos(start.saturating_add(dur)), up));
        }
        events.sort_by_key(|(at, _)| *at);
        FaultPlan { events }
    }

    /// A seeded chaos schedule mixing control-, router- and link-class
    /// faults. `n` is the topology size and `legacy` the number of
    /// classic-BGP ASes (indices `0..legacy`); router and link faults
    /// target only legacy ASes `1..legacy` so the origin (AS 0) and SDN
    /// cluster members stay up, and they require `legacy >= 2` — when a
    /// class has no applicable target it is silently excluded from the
    /// draw (callers that care should check [`FaultClasses`] against
    /// `legacy` themselves and record a note).
    ///
    /// Router crashes and keepalive-loss windows are clamped to 12–20 s:
    /// long enough that a 9 s hold timer expires inside the window (the
    /// only way a silent fault is detectable), short enough that the
    /// reconnect backoff outlives it. Callers scheduling router or link
    /// faults must therefore run with hold timers enabled (hold ≤ 9 s);
    /// with `hold_secs == 0` a traffic-drop window would silently eat
    /// UPDATEs forever. Control-plane outages and edge flaps keep the
    /// 5–25%-of-horizon durations that [`FaultPlan::chaos`] uses, and
    /// that constructor's schedules remain byte-identical to PR 5.
    pub fn chaos_mixed(
        seed: u64,
        horizon: SimDuration,
        outages: usize,
        classes: FaultClasses,
        legacy: usize,
    ) -> FaultPlan {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let mut applicable = Vec::new();
        if classes.control {
            applicable.push(0u8);
        }
        if classes.router && legacy >= 2 {
            applicable.push(1);
        }
        if classes.link && legacy >= 2 {
            applicable.push(2);
        }
        if applicable.is_empty() {
            return FaultPlan::default();
        }
        let span = horizon.as_nanos().max(1);
        const CLAMP_MIN: u64 = 12_000_000_000;
        const CLAMP_JITTER: u64 = 8_000_000_000;
        let mut events = Vec::with_capacity(outages * 2);
        for _ in 0..outages {
            let start = next() % span;
            let class = applicable[(next() % applicable.len() as u64) as usize];
            let (down, up, dur) = match class {
                0 => {
                    let dur = span / 20 + next() % (span / 5).max(1);
                    if next() & 1 == 1 {
                        (
                            FaultAction::PartitionControlChannel,
                            FaultAction::HealControlChannel,
                            dur,
                        )
                    } else {
                        (
                            FaultAction::CrashController,
                            FaultAction::RestoreController,
                            dur,
                        )
                    }
                }
                1 => {
                    let target = 1 + (next() % (legacy as u64 - 1)) as usize;
                    let dur = CLAMP_MIN + next() % CLAMP_JITTER;
                    (
                        FaultAction::CrashRouter(target),
                        FaultAction::RestoreRouter(target),
                        dur,
                    )
                }
                _ => {
                    let a = 1 + (next() % (legacy as u64 - 1)) as usize;
                    let mut b = (next() % legacy as u64) as usize;
                    if b == a {
                        b = if a == legacy - 1 { 0 } else { legacy - 1 };
                    }
                    if next() & 1 == 1 {
                        let dur = span / 20 + next() % (span / 5).max(1);
                        (
                            FaultAction::FailEdge(a, b),
                            FaultAction::RestoreEdge(a, b),
                            dur,
                        )
                    } else {
                        let dur = CLAMP_MIN + next() % CLAMP_JITTER;
                        (
                            FaultAction::DropEdgeTraffic(a, b),
                            FaultAction::RestoreEdgeTraffic(a, b),
                            dur,
                        )
                    }
                }
            };
            events.push((SimDuration::from_nanos(start), down));
            events.push((SimDuration::from_nanos(start.saturating_add(dur)), up));
        }
        events.sort_by_key(|(at, _)| *at);
        FaultPlan { events }
    }

    /// True if any event in the plan is a router- or link-class fault —
    /// i.e. the run needs hold timers enabled to detect silent failures.
    pub fn needs_hold_timers(&self) -> bool {
        self.events.iter().any(|(_, f)| {
            !matches!(
                f,
                FaultAction::CrashController
                    | FaultAction::RestoreController
                    | FaultAction::PartitionControlChannel
                    | FaultAction::HealControlChannel
            )
        })
    }

    /// The offset of the last event, i.e. the schedule's length.
    pub fn horizon(&self) -> SimDuration {
        self.events
            .iter()
            .map(|(at, _)| *at)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Replay the plan: advance the simulation to each fault's time (in
    /// offset order, relative to now) and inject it. Returns the absolute
    /// time of the last fault.
    pub fn apply(&self, exp: &mut Experiment) -> SimTime {
        let mut events = self.events.clone();
        events.sort_by_key(|(at, _)| *at);
        let base = exp.net.sim.now();
        for (offset, action) in events {
            let target = base + offset;
            if target > exp.net.sim.now() {
                exp.net.sim.run_until(target);
            }
            match action {
                FaultAction::CrashController => exp.crash_controller(),
                FaultAction::RestoreController => exp.restore_controller(),
                FaultAction::PartitionControlChannel => exp.partition_control_channel(),
                FaultAction::HealControlChannel => exp.heal_control_channel(),
                FaultAction::CrashRouter(i) => exp.crash_router(i),
                FaultAction::RestoreRouter(i) => exp.restore_router(i),
                FaultAction::FailEdge(a, b) => exp.fail_edge(a, b),
                FaultAction::RestoreEdge(a, b) => exp.restore_edge(a, b),
                FaultAction::DropEdgeTraffic(a, b) => exp.drop_edge_traffic(a, b),
                FaultAction::RestoreEdgeTraffic(a, b) => exp.restore_edge_traffic(a, b),
            }
            exp.auto_verify_checkpoint();
        }
        base + self.horizon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_is_deterministic_and_paired() {
        let a = FaultPlan::chaos(42, SimDuration::from_secs(60), 4);
        let b = FaultPlan::chaos(42, SimDuration::from_secs(60), 4);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.events.len(), 8, "each outage is a down/up pair");
        let downs = a
            .events
            .iter()
            .filter(|(_, f)| {
                matches!(
                    f,
                    FaultAction::CrashController | FaultAction::PartitionControlChannel
                )
            })
            .count();
        assert_eq!(downs, 4);
        assert!(a.events.windows(2).all(|w| w[0].0 <= w[1].0), "sorted");

        let c = FaultPlan::chaos(43, SimDuration::from_secs(60), 4);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn chaos_mixed_is_deterministic_and_respects_classes() {
        let a = FaultPlan::chaos_mixed(7, SimDuration::from_secs(120), 6, FaultClasses::ALL, 8);
        let b = FaultPlan::chaos_mixed(7, SimDuration::from_secs(120), 6, FaultClasses::ALL, 8);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.events.len(), 12, "each outage is a down/up pair");
        assert!(a.events.windows(2).all(|w| w[0].0 <= w[1].0), "sorted");

        let data = FaultPlan::chaos_mixed(
            7,
            SimDuration::from_secs(120),
            6,
            FaultClasses::DATA_PLANE,
            8,
        );
        assert!(
            data.events.iter().all(|(_, f)| !matches!(
                f,
                FaultAction::CrashController
                    | FaultAction::RestoreController
                    | FaultAction::PartitionControlChannel
                    | FaultAction::HealControlChannel
            )),
            "data-plane plan contains no control faults"
        );
        assert!(data.needs_hold_timers());

        let ctl = FaultPlan::chaos_mixed(
            7,
            SimDuration::from_secs(120),
            6,
            FaultClasses::CONTROL_ONLY,
            8,
        );
        assert!(!ctl.needs_hold_timers());
    }

    #[test]
    fn chaos_mixed_targets_stay_in_legacy_range_and_avoid_origin() {
        for seed in 0..32u64 {
            let plan = FaultPlan::chaos_mixed(
                seed,
                SimDuration::from_secs(240),
                8,
                FaultClasses::DATA_PLANE,
                5,
            );
            for (_, f) in &plan.events {
                match *f {
                    FaultAction::CrashRouter(i) | FaultAction::RestoreRouter(i) => {
                        assert!((1..5).contains(&i), "crash target {i} out of range");
                    }
                    FaultAction::FailEdge(a, b)
                    | FaultAction::RestoreEdge(a, b)
                    | FaultAction::DropEdgeTraffic(a, b)
                    | FaultAction::RestoreEdgeTraffic(a, b) => {
                        assert!(a < 5 && b < 5 && a != b, "bad edge AS{a}-AS{b}");
                        assert!(a != 0, "edge faults keep one endpoint off the origin");
                    }
                    _ => panic!("control fault in data-plane plan"),
                }
            }
        }
    }

    #[test]
    fn chaos_mixed_with_no_applicable_class_is_empty() {
        // Full-SDN cell (legacy < 2) asked for data-plane faults only:
        // nothing applies, the plan is empty rather than panicking.
        let plan = FaultPlan::chaos_mixed(
            9,
            SimDuration::from_secs(60),
            4,
            FaultClasses::DATA_PLANE,
            1,
        );
        assert!(plan.events.is_empty());
    }

    #[test]
    fn builder_orders_by_offset_at_apply_time() {
        let plan = FaultPlan::new()
            .at(SimDuration::from_secs(9), FaultAction::RestoreController)
            .at(SimDuration::from_secs(3), FaultAction::CrashController);
        assert_eq!(plan.horizon(), SimDuration::from_secs(9));
        assert_eq!(plan.events.len(), 2);
    }
}
