//! Cluster deployment strategies: *where* to place SDN clusters.
//!
//! The paper evaluates one contiguous cluster in a 16-AS clique; the
//! follow-up studies (Sermpezis & Dimitropoulos 2016/2017) show that the
//! interesting regime is **multiple independent clusters** and the choice
//! of which ASes to centralize — random picks, the highest-degree cores,
//! the densest k-core, or one cluster per hierarchy tier. A
//! [`DeploymentStrategy`] turns an [`AsGraph`] plus a deployment budget
//! into `k` disjoint membership sets, one per cluster, with fail-fast
//! validation; [`super::NetworkBuilder::with_deployment`] consumes the
//! result.

use bgpsdn_bgp::Relationship;
use bgpsdn_netsim::SimRng;
use bgpsdn_topology::AsGraph;

/// How SDN cluster membership is chosen over a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeploymentStrategy {
    /// Explicit membership lists, one per cluster.
    Explicit(Vec<Vec<usize>>),
    /// The legacy layout: the `total` highest AS indices, split into
    /// `clusters` contiguous groups. With `clusters == 1` this is exactly
    /// the single-cluster `(n - total..n)` placement the paper's clique
    /// experiments use.
    Tail {
        /// Number of independent clusters.
        clusters: usize,
        /// Total ASes under centralized control, across all clusters.
        total: usize,
    },
    /// `total` ASes drawn uniformly at random (seeded), split evenly.
    RandomK {
        /// Number of independent clusters.
        clusters: usize,
        /// Total ASes under centralized control, across all clusters.
        total: usize,
    },
    /// The `total` highest-degree ASes, split evenly in degree order.
    HighestDegree {
        /// Number of independent clusters.
        clusters: usize,
        /// Total ASes under centralized control, across all clusters.
        total: usize,
    },
    /// The `total` ASes of highest coreness (innermost k-core first),
    /// split evenly in peeling order.
    KCore {
        /// Number of independent clusters.
        clusters: usize,
        /// Total ASes under centralized control, across all clusters.
        total: usize,
    },
    /// One cluster per hierarchy tier (provider depth 0 = tier-1 clique),
    /// highest-degree ASes first within each tier; deeper tiers absorb any
    /// overflow when a tier is smaller than its share.
    PerTier {
        /// Number of independent clusters.
        clusters: usize,
        /// Total ASes under centralized control, across all clusters.
        total: usize,
    },
}

impl DeploymentStrategy {
    /// The strategy's stable name, as used by `bgpsdn sweep --strategy`
    /// and recorded in campaign artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            DeploymentStrategy::Explicit(_) => "explicit",
            DeploymentStrategy::Tail { .. } => "tail",
            DeploymentStrategy::RandomK { .. } => "random",
            DeploymentStrategy::HighestDegree { .. } => "degree",
            DeploymentStrategy::KCore { .. } => "kcore",
            DeploymentStrategy::PerTier { .. } => "tier",
        }
    }

    /// Build a named strategy with a cluster count and deployment budget.
    /// `explicit` is not constructible by name (it carries lists).
    pub fn by_name(name: &str, clusters: usize, total: usize) -> Option<DeploymentStrategy> {
        Some(match name {
            "tail" => DeploymentStrategy::Tail { clusters, total },
            "random" => DeploymentStrategy::RandomK { clusters, total },
            "degree" => DeploymentStrategy::HighestDegree { clusters, total },
            "kcore" => DeploymentStrategy::KCore { clusters, total },
            "tier" => DeploymentStrategy::PerTier { clusters, total },
            _ => return None,
        })
    }

    /// Resolve the strategy against a topology: returns `clusters` disjoint,
    /// individually sorted, non-empty membership sets. `seed` feeds the
    /// random strategy only, so every other strategy is
    /// placement-deterministic.
    ///
    /// # Errors
    ///
    /// Fails fast on an infeasible deployment: zero clusters with a
    /// non-zero budget, a budget smaller than the cluster count or larger
    /// than the topology, out-of-range or duplicated explicit members.
    pub fn assign(&self, graph: &AsGraph, seed: u64) -> Result<Vec<Vec<usize>>, String> {
        let n = graph.len();
        let resolved = match self {
            DeploymentStrategy::Explicit(lists) => {
                let mut lists = lists.clone();
                for members in &mut lists {
                    members.sort_unstable();
                }
                lists
            }
            DeploymentStrategy::Tail { clusters, total } => {
                check_budget(n, *clusters, *total)?;
                chunk_even((n - total..n).collect(), *clusters)
            }
            DeploymentStrategy::RandomK { clusters, total } => {
                check_budget(n, *clusters, *total)?;
                let mut rng = SimRng::seed_from_u64(seed);
                let mut picked = rng.sample_indices(n, *total);
                picked.sort_unstable();
                chunk_even(picked, *clusters)
            }
            DeploymentStrategy::HighestDegree { clusters, total } => {
                check_budget(n, *clusters, *total)?;
                let deg = degrees(graph);
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&v| (std::cmp::Reverse(deg[v]), v));
                order.truncate(*total);
                chunk_even(order, *clusters)
            }
            DeploymentStrategy::KCore { clusters, total } => {
                check_budget(n, *clusters, *total)?;
                let core = coreness(graph);
                let deg = degrees(graph);
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&v| (std::cmp::Reverse(core[v]), std::cmp::Reverse(deg[v]), v));
                order.truncate(*total);
                chunk_even(order, *clusters)
            }
            DeploymentStrategy::PerTier { clusters, total } => {
                check_budget(n, *clusters, *total)?;
                let tier = tiers(graph);
                let deg = degrees(graph);
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&v| (tier[v], std::cmp::Reverse(deg[v]), v));
                order.truncate(*total);
                chunk_even(order, *clusters)
            }
        };
        validate_clusters(&resolved, n)?;
        Ok(resolved)
    }
}

/// Fail-fast check that `clusters` lists are a legal deployment over `n`
/// ASes: every cluster non-empty, every index in range, no AS in two
/// clusters. An empty outer list (no SDN at all) is legal.
pub fn validate_clusters(clusters: &[Vec<usize>], n: usize) -> Result<(), String> {
    let mut seen = vec![false; n];
    for (c, members) in clusters.iter().enumerate() {
        if members.is_empty() {
            return Err(format!("cluster {c} is empty"));
        }
        for &m in members {
            if m >= n {
                return Err(format!(
                    "cluster {c} member index {m} out of range (n = {n})"
                ));
            }
            if seen[m] {
                return Err(format!("AS {m} assigned to more than one cluster"));
            }
            seen[m] = true;
        }
    }
    Ok(())
}

fn check_budget(n: usize, clusters: usize, total: usize) -> Result<(), String> {
    if clusters == 0 {
        return Err("deployment needs at least one cluster".into());
    }
    if total < clusters {
        return Err(format!(
            "budget of {total} ASes cannot populate {clusters} clusters"
        ));
    }
    if total > n {
        return Err(format!("budget {total} exceeds topology size {n}"));
    }
    Ok(())
}

/// Split an ordered selection into `k` groups whose sizes differ by at
/// most one (earlier groups take the remainder), each sorted ascending.
fn chunk_even(selection: Vec<usize>, k: usize) -> Vec<Vec<usize>> {
    let total = selection.len();
    let (base, extra) = (total / k, total % k);
    let mut out = Vec::with_capacity(k);
    let mut it = selection.into_iter();
    for c in 0..k {
        let take = base + usize::from(c < extra);
        let mut members: Vec<usize> = it.by_ref().take(take).collect();
        members.sort_unstable();
        out.push(members);
    }
    out
}

fn degrees(graph: &AsGraph) -> Vec<usize> {
    let mut deg = vec![0usize; graph.len()];
    for e in &graph.edges {
        deg[e.a] += 1;
        deg[e.b] += 1;
    }
    deg
}

/// Classic k-core decomposition by iterative min-degree peeling; returns
/// each vertex's coreness.
fn coreness(graph: &AsGraph) -> Vec<usize> {
    let n = graph.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &graph.edges {
        adj[e.a].push(e.b);
        adj[e.b].push(e.a);
    }
    let mut deg: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    // The core number is the running maximum of the minimum residual
    // degree along the peeling order.
    let mut shell = 0usize;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| (deg[v], v))
            .expect("vertex remains");
        shell = shell.max(deg[v]);
        core[v] = shell;
        removed[v] = true;
        for &w in &adj[v] {
            if !removed[w] {
                deg[w] -= 1;
            }
        }
    }
    core
}

/// Provider depth per AS: 0 for provider-free ASes (the tier-1 mesh),
/// otherwise one more than the deepest provider above. The CAIDA-style
/// hierarchy is acyclic by construction; cyclic inputs saturate instead of
/// looping.
fn tiers(graph: &AsGraph) -> Vec<usize> {
    let n = graph.len();
    let mut providers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &graph.edges {
        // `relationship_from(x)` names what the *other* end is to `x`.
        if e.relationship_from(e.b) == Relationship::Provider {
            providers[e.b].push(e.a);
        } else if e.relationship_from(e.a) == Relationship::Provider {
            providers[e.a].push(e.b);
        }
    }
    let mut tier = vec![0usize; n];
    // Relax at most n rounds: enough for any acyclic hierarchy.
    for _ in 0..n {
        let mut changed = false;
        for v in 0..n {
            for &p in &providers[v] {
                if tier[v] < tier[p] + 1 {
                    tier[v] = tier[p] + 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    tier
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsdn_topology::gen;

    fn clique(n: usize) -> AsGraph {
        AsGraph::all_peer(&gen::clique(n), 65000)
    }

    #[test]
    fn tail_single_cluster_matches_legacy_layout() {
        let g = clique(16);
        let strat = DeploymentStrategy::Tail {
            clusters: 1,
            total: 8,
        };
        assert_eq!(
            strat.assign(&g, 1).unwrap(),
            vec![(8..16).collect::<Vec<_>>()]
        );
    }

    #[test]
    fn tail_splits_contiguously() {
        let g = clique(16);
        let strat = DeploymentStrategy::Tail {
            clusters: 2,
            total: 8,
        };
        assert_eq!(
            strat.assign(&g, 1).unwrap(),
            vec![vec![8, 9, 10, 11], vec![12, 13, 14, 15]]
        );
    }

    #[test]
    fn uneven_budget_spreads_remainder_forward() {
        let g = clique(16);
        let strat = DeploymentStrategy::Tail {
            clusters: 3,
            total: 8,
        };
        let got = strat.assign(&g, 1).unwrap();
        assert_eq!(got.iter().map(Vec::len).collect::<Vec<_>>(), vec![3, 3, 2]);
    }

    #[test]
    fn random_is_seed_deterministic_and_disjoint() {
        let g = clique(16);
        let strat = DeploymentStrategy::RandomK {
            clusters: 4,
            total: 8,
        };
        let a = strat.assign(&g, 42).unwrap();
        let b = strat.assign(&g, 42).unwrap();
        assert_eq!(a, b, "same seed, same placement");
        assert!(validate_clusters(&a, 16).is_ok());
        let c = strat.assign(&g, 43).unwrap();
        assert_ne!(a, c, "different seed should move the placement");
    }

    #[test]
    fn degree_prefers_the_core_of_a_star() {
        // Star: vertex 0 is the hub.
        let g = AsGraph::all_peer(&gen::star(9), 65000);
        let strat = DeploymentStrategy::HighestDegree {
            clusters: 1,
            total: 1,
        };
        assert_eq!(strat.assign(&g, 1).unwrap(), vec![vec![0]]);
    }

    #[test]
    fn kcore_ranks_clique_over_pendant() {
        // A 4-clique with a pendant vertex 4 attached to vertex 0.
        let mut raw = gen::clique(4);
        raw.add_node();
        raw.add_edge(0, 4);
        let g = AsGraph::all_peer(&raw, 65000);
        let strat = DeploymentStrategy::KCore {
            clusters: 1,
            total: 4,
        };
        assert_eq!(strat.assign(&g, 1).unwrap(), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn per_tier_selects_tier1_first() {
        use bgpsdn_netsim::SimRng;
        use bgpsdn_topology::caida;
        let mut rng = SimRng::seed_from_u64(7);
        let g = caida::synthesize(&caida::SynthesisParams::default(), &mut rng);
        let strat = DeploymentStrategy::PerTier {
            clusters: 2,
            total: 6,
        };
        let got = strat.assign(&g, 7).unwrap();
        // Tier-1 ASes are the first `tier1` indices in the synthesized
        // graph; the first cluster must come from them.
        assert!(
            got[0].iter().all(|&v| v < 4),
            "cluster 0 sits in tier-1: {got:?}"
        );
    }

    #[test]
    fn infeasible_budgets_fail_fast() {
        let g = clique(8);
        for strat in [
            DeploymentStrategy::Tail {
                clusters: 0,
                total: 4,
            },
            DeploymentStrategy::Tail {
                clusters: 5,
                total: 4,
            },
            DeploymentStrategy::Tail {
                clusters: 1,
                total: 9,
            },
            DeploymentStrategy::Explicit(vec![vec![1], vec![]]),
            DeploymentStrategy::Explicit(vec![vec![1], vec![1]]),
            DeploymentStrategy::Explicit(vec![vec![99]]),
        ] {
            assert!(strat.assign(&g, 1).is_err(), "{strat:?} must be rejected");
        }
    }

    #[test]
    fn names_round_trip() {
        for name in ["tail", "random", "degree", "kcore", "tier"] {
            let s = DeploymentStrategy::by_name(name, 2, 4).expect("known name");
            assert_eq!(s.name(), name);
        }
        assert!(DeploymentStrategy::by_name("bogus", 1, 1).is_none());
    }
}
