//! Data-plane traffic probes — the framework's "monitoring end-to-end
//! connectivity with tools like ping" and loss measurement.
//!
//! [`Experiment::ping_stream`] drives a periodic echo stream between two
//! ASes through the *real* simulated data plane (legacy FIBs, flow tables,
//! relays) while the caller injects scenario events mid-stream, and reports
//! delivery, loss and outage statistics — what the paper's video demo shows
//! visually.

use std::net::Ipv4Addr;

use bgpsdn_netsim::{DataPacket, SimDuration};
use bgpsdn_sdn::ClusterMsg;

use super::experiment::Experiment;
use super::network::{AsKind, Router, Switch};

/// Outcome of a probe stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReport {
    /// Echo requests sent.
    pub sent: u64,
    /// Echo replies received back at the source.
    pub received: u64,
    /// `1 - received/sent`.
    pub loss_ratio: f64,
    /// Number of probe intervals with no reply (excluding the very first,
    /// which races the first probe's RTT).
    pub outage_intervals: u64,
    /// Longest run of reply-less intervals, as a duration.
    pub longest_outage: SimDuration,
    /// Reply timeline, one flag per interval.
    pub timeline: Vec<bool>,
}

impl Experiment {
    /// Replies delivered so far at the source AS device.
    fn replies_at(&self, src: usize) -> u64 {
        let a = &self.net.ases[src];
        match a.kind {
            AsKind::Legacy => {
                self.net
                    .sim
                    .node_ref::<Router>(a.node)
                    .stats()
                    .data_delivered
            }
            AsKind::SdnMember => {
                self.net
                    .sim
                    .node_ref::<Switch>(a.node)
                    .stats()
                    .packets_delivered
            }
        }
    }

    /// Run a periodic echo stream from AS `src` to `dst_addr` for `count`
    /// intervals of `interval` each. `on_tick(exp, tick)` runs before each
    /// interval and is where the scenario injects failures/recoveries.
    pub fn ping_stream(
        &mut self,
        src: usize,
        dst_addr: Ipv4Addr,
        interval: SimDuration,
        count: u64,
        mut on_tick: impl FnMut(&mut Experiment, u64),
    ) -> ProbeReport {
        let src_ip = self.net.ases[src].router_ip;
        let src_node = self.net.ases[src].node;
        let mut last_seen = self.replies_at(src);
        let mut timeline = Vec::with_capacity(count as usize);
        let mut sent = 0u64;
        let mut received = 0u64;
        let t0 = self.net.sim.now();

        for tick in 0..count {
            on_tick(self, tick);
            sent += 1;
            self.net.sim.inject(
                src_node,
                ClusterMsg::Data(DataPacket::echo_request(src_ip, dst_addr, tick)),
            );
            let deadline = t0 + interval.saturating_mul(tick + 1);
            self.net.sim.run_until(deadline);
            let now_seen = self.replies_at(src);
            let got = now_seen > last_seen;
            received += now_seen - last_seen;
            last_seen = now_seen;
            timeline.push(got);
        }

        // Outage accounting: consecutive reply-less intervals after the
        // stream has warmed up.
        let mut outage_intervals = 0u64;
        let mut longest_run = 0u64;
        let mut run = 0u64;
        for &got in timeline.iter().skip(1) {
            if got {
                run = 0;
            } else {
                run += 1;
                outage_intervals += 1;
                longest_run = longest_run.max(run);
            }
        }
        ProbeReport {
            sent,
            received,
            loss_ratio: if sent == 0 {
                0.0
            } else {
                1.0 - received as f64 / sent as f64
            },
            outage_intervals,
            longest_outage: interval.saturating_mul(longest_run),
            timeline,
        }
    }
}
